//! # VAER — Cost-effective Variational Active Entity Resolution
//!
//! A pure-Rust reproduction of *"Cost-effective Variational Active Entity
//! Resolution"* (Bogatu et al., ICDE 2021).
//!
//! This facade crate re-exports every member of the workspace so that
//! downstream users (and the bundled examples) can depend on a single
//! `vaer` crate:
//!
//! - [`linalg`] — dense `f32` matrices, randomized SVD, Jacobi eigensolver.
//! - [`nn`] — reverse-mode autodiff tape, dense layers, Adam/SGD.
//! - [`text`] — tokenisation, vocabularies, TF-IDF, corpora from tables.
//! - [`stats`] — diagonal Gaussians, 2-Wasserstein, KDE, entropy, metrics.
//! - [`index`] — p-stable Euclidean LSH, brute-force kNN, blocking.
//! - [`embed`] — the four intermediate-representation generators
//!   (LSA, word2vec skip-gram, BERT-style contextual, EmbDI).
//! - [`data`] — the table/tuple model and the nine benchmark domains.
//! - [`core`] — the paper's contribution: VAE representation learning,
//!   Siamese matching, transfer, and active learning.
//! - [`baselines`] — DeepER-, DeepMatcher-, and DITTO-style comparators.
//! - [`obs`] — zero-dependency tracing spans, metrics, and JSONL export
//!   (`VAER_OBS=off|summary|trace`).
//! - [`fault`] — deterministic, env-driven failpoints
//!   (`VAER_FAILPOINTS=name=action@N`) for crash/corruption testing.
//!
//! ## Quickstart
//!
//! ```
//! use vaer::core::pipeline::{Pipeline, PipelineConfig};
//! use vaer::data::domains::{Domain, DomainSpec, Scale};
//!
//! // Generate a small benchmark dataset and run end-to-end ER.
//! let dataset = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(7);
//! let mut config = PipelineConfig::fast();
//! config.seed = 7;
//! let pipeline = Pipeline::fit(&dataset, &config).unwrap();
//! let report = pipeline.evaluate(&dataset.test_pairs);
//! assert!(report.f1 > 0.5, "F1 = {}", report.f1);
//! ```

pub use vaer_baselines as baselines;
pub use vaer_core as core;
pub use vaer_data as data;
pub use vaer_embed as embed;
pub use vaer_fault as fault;
pub use vaer_index as index;
pub use vaer_linalg as linalg;
pub use vaer_nn as nn;
pub use vaer_obs as obs;
pub use vaer_stats as stats;
pub use vaer_text as text;
