//! Sparse TF-IDF document vectors — the front-end of the LSA IR generator.

use crate::corpus::Corpus;

/// A sparse vector of `(dimension, weight)` pairs, sorted by dimension.
pub type SparseVector = Vec<(u32, f32)>;

/// Fitted TF-IDF statistics, reusable for out-of-corpus documents.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    /// `idf[t] = ln((1 + N) / (1 + df_t)) + 1` (smoothed, as in scikit-learn).
    idf: Vec<f32>,
}

impl TfIdfModel {
    /// Fits IDF weights on `corpus`.
    pub fn fit(corpus: &Corpus) -> Self {
        let n_docs = corpus.len();
        let n_terms = corpus.vocab().len();
        let mut df = vec![0u32; n_terms];
        let mut seen = vec![u32::MAX; n_terms];
        for (doc_id, sent) in corpus.sentences().iter().enumerate() {
            for &t in sent {
                let t = t as usize;
                if seen[t] != doc_id as u32 {
                    seen[t] = doc_id as u32;
                    df[t] += 1;
                }
            }
        }
        let idf = df
            .iter()
            .map(|&d| ((1.0 + n_docs as f32) / (1.0 + d as f32)).ln() + 1.0)
            .collect();
        Self { idf }
    }

    /// Number of dimensions (vocabulary size).
    pub fn dims(&self) -> usize {
        self.idf.len()
    }

    /// Transforms one token-id sentence into an L2-normalised sparse
    /// TF-IDF vector.
    pub fn transform(&self, sentence: &[u32]) -> SparseVector {
        let mut counts: Vec<(u32, f32)> = Vec::with_capacity(sentence.len());
        let mut sorted = sentence.to_vec();
        sorted.sort_unstable();
        for &t in &sorted {
            match counts.last_mut() {
                Some((last, c)) if *last == t => *c += 1.0,
                _ => counts.push((t, 1.0)),
            }
        }
        let total: f32 = counts.iter().map(|&(_, c)| c).sum();
        if total == 0.0 {
            return Vec::new();
        }
        let mut vec: SparseVector = counts
            .into_iter()
            .map(|(t, c)| (t, (c / total) * self.idf[t as usize]))
            .collect();
        let norm: f32 = vec.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
        if norm > f32::EPSILON {
            for (_, w) in &mut vec {
                *w /= norm;
            }
        }
        vec
    }
}

/// Fits a [`TfIdfModel`] and transforms every corpus sentence.
pub fn tfidf(corpus: &Corpus) -> (TfIdfModel, Vec<SparseVector>) {
    let model = TfIdfModel::fit(corpus);
    let vectors = corpus
        .sentences()
        .iter()
        .map(|s| model.transform(s))
        .collect();
    (model, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rare_terms_weigh_more() {
        // "common" in every doc, "rare" only in one.
        let corpus = Corpus::build(&["common rare", "common x", "common y"], 1);
        let (model, vecs) = tfidf(&corpus);
        let common_id = corpus.vocab().get("common").unwrap();
        let rare_id = corpus.vocab().get("rare").unwrap();
        let doc0 = &vecs[0];
        let w_common = doc0.iter().find(|&&(t, _)| t == common_id).unwrap().1;
        let w_rare = doc0.iter().find(|&&(t, _)| t == rare_id).unwrap().1;
        assert!(w_rare > w_common, "rare {w_rare} vs common {w_common}");
        assert_eq!(model.dims(), corpus.vocab().len());
    }

    #[test]
    fn vectors_are_unit_norm() {
        let corpus = Corpus::build(&["a b c", "a a b"], 1);
        let (_, vecs) = tfidf(&corpus);
        for v in &vecs {
            let n: f32 = v.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5, "norm {n}");
        }
    }

    #[test]
    fn empty_sentence_gives_empty_vector() {
        let corpus = Corpus::build(&["...", "word"], 1);
        let (_, vecs) = tfidf(&corpus);
        assert!(vecs[0].is_empty());
        assert_eq!(vecs[1].len(), 1);
    }

    #[test]
    fn repeated_tokens_accumulate_tf() {
        let corpus = Corpus::build(&["a a a b"], 1);
        let (model, _) = tfidf(&corpus);
        let v = model.transform(&corpus.sentences()[0]);
        let a = corpus.vocab().get("a").unwrap();
        let b = corpus.vocab().get("b").unwrap();
        let wa = v.iter().find(|&&(t, _)| t == a).unwrap().1;
        let wb = v.iter().find(|&&(t, _)| t == b).unwrap().1;
        assert!(wa > wb);
    }

    #[test]
    fn transform_unseen_ids_sorted_output() {
        let corpus = Corpus::build(&["q w e r t y"], 1);
        let (model, _) = tfidf(&corpus);
        let v = model.transform(&[5, 0, 3, 0]);
        let dims: Vec<u32> = v.iter().map(|&(t, _)| t).collect();
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        assert_eq!(dims, sorted);
    }
}
