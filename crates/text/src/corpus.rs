//! A tokenised corpus over a shared vocabulary.

use crate::normalize::tokenize;
use crate::vocab::Vocab;

/// A corpus of sentences encoded as token ids over one [`Vocab`].
///
/// In VAER, the corpus is "every attribute value of every tuple, one
/// sentence each" (paper §III-B). Tokens below `min_count` are dropped
/// from sentences (they keep no id), mirroring standard word2vec/LSA
/// preprocessing.
#[derive(Debug, Clone)]
pub struct Corpus {
    vocab: Vocab,
    sentences: Vec<Vec<u32>>,
}

impl Corpus {
    /// Tokenises `raw_sentences` and builds the vocabulary in one pass.
    pub fn build<S: AsRef<str>>(raw_sentences: &[S], min_count: u64) -> Self {
        let tokenised: Vec<Vec<String>> =
            raw_sentences.iter().map(|s| tokenize(s.as_ref())).collect();
        let vocab = Vocab::build(
            tokenised.iter().map(|s| s.iter().map(String::as_str)),
            min_count,
        );
        let sentences = tokenised
            .iter()
            .map(|s| s.iter().filter_map(|t| vocab.get(t)).collect())
            .collect();
        Self { vocab, sentences }
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Encoded sentences.
    pub fn sentences(&self) -> &[Vec<u32>] {
        &self.sentences
    }

    /// Number of sentences (including ones that became empty).
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// Whether the corpus has no sentences.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// Total number of (kept) token occurrences.
    pub fn num_tokens(&self) -> usize {
        self.sentences.iter().map(Vec::len).sum()
    }

    /// Encodes a new sentence against the existing vocabulary
    /// (out-of-vocabulary tokens are dropped).
    pub fn encode(&self, raw: &str) -> Vec<u32> {
        tokenize(raw)
            .iter()
            .filter_map(|t| self.vocab.get(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_encode() {
        let corpus = Corpus::build(&["Hello world", "hello there"], 1);
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.vocab().len(), 3);
        assert_eq!(corpus.num_tokens(), 4);
        let enc = corpus.encode("WORLD hello unseen");
        assert_eq!(enc.len(), 2); // "unseen" dropped
    }

    #[test]
    fn min_count_filters_sentences() {
        let corpus = Corpus::build(&["a a b", "a c"], 2);
        // Only "a" survives (count 3).
        assert_eq!(corpus.vocab().len(), 1);
        assert_eq!(corpus.sentences()[0], vec![0, 0]);
        assert_eq!(corpus.sentences()[1], vec![0]);
    }

    #[test]
    fn empty_corpus() {
        let corpus = Corpus::build::<&str>(&[], 1);
        assert!(corpus.is_empty());
        assert_eq!(corpus.num_tokens(), 0);
    }

    #[test]
    fn punctuation_only_sentence_is_kept_but_empty() {
        let corpus = Corpus::build(&["!!!", "real words"], 1);
        assert_eq!(corpus.len(), 2);
        assert!(corpus.sentences()[0].is_empty());
        assert_eq!(corpus.sentences()[1].len(), 2);
    }
}
