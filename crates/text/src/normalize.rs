//! Text canonicalisation and word tokenisation.

/// Normalises a raw attribute value: lower-cases, maps punctuation to
/// spaces (keeping alphanumerics and the decimal point inside numbers),
/// and collapses runs of whitespace.
///
/// # Examples
///
/// ```
/// assert_eq!(vaer_text::normalize("  Héllo,   WORLD!! "), "héllo world");
/// assert_eq!(vaer_text::normalize("v1.2-beta"), "v1.2 beta");
/// ```
pub fn normalize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let chars: Vec<char> = raw.chars().collect();
    let mut last_was_space = true;
    for (i, &c) in chars.iter().enumerate() {
        let keep = c.is_alphanumeric()
            || (c == '.'
                && i > 0
                && i + 1 < chars.len()
                && chars[i - 1].is_ascii_digit()
                && chars[i + 1].is_ascii_digit());
        if keep {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_was_space = false;
        } else if !last_was_space {
            out.push(' ');
            last_was_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Splits normalised text into word tokens.
///
/// Applies [`normalize`] first, so it is safe to call on raw values.
///
/// # Examples
///
/// ```
/// assert_eq!(vaer_text::tokenize("The Beatles - Abbey Road (1969)"),
///            vec!["the", "beatles", "abbey", "road", "1969"]);
/// ```
pub fn tokenize(raw: &str) -> Vec<String> {
    normalize(raw)
        .split_whitespace()
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basic() {
        assert_eq!(normalize("Hello, World!"), "hello world");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   "), "");
        assert_eq!(normalize("a  b\tc\nd"), "a b c d");
    }

    #[test]
    fn normalize_preserves_decimal_points() {
        assert_eq!(normalize("$12.99"), "12.99");
        assert_eq!(normalize("3.5mm jack."), "3.5mm jack");
        // A trailing dot is punctuation, not a decimal point.
        assert_eq!(normalize("end."), "end");
    }

    #[test]
    fn normalize_unicode() {
        assert_eq!(normalize("Café MÜNCHEN"), "café münchen");
    }

    #[test]
    fn tokenize_splits_words() {
        assert_eq!(tokenize("foo-bar baz"), vec!["foo", "bar", "baz"]);
        assert!(tokenize("!!!").is_empty());
    }

    #[test]
    fn tokenize_numbers_kept_whole() {
        assert_eq!(tokenize("version 2.1"), vec!["version", "2.1"]);
    }
}
