//! Text preprocessing for VAER's intermediate representations.
//!
//! The paper treats every attribute value of a table as a "sentence"
//! (§III-B) and builds intermediate representations (IRs) over the corpus of
//! all such sentences. This crate supplies the pieces shared by all four IR
//! generators:
//!
//! - [`normalize`] — canonical lower-cased, punctuation-stripped text,
//! - [`tokenize`] / [`char_ngrams`] — word and character-n-gram tokenisers,
//! - [`Vocab`] — token interning with frequency-based pruning,
//! - [`Corpus`] — token-id sentences over a shared vocabulary,
//! - [`tfidf`] — sparse TF-IDF document vectors (the LSA front-end),
//! - [`strsim`] — classical string similarities (Levenshtein, Jaccard,
//!   Jaro–Winkler) for the non-deep baseline.
//!
//! It is dependency-free so it can sit at the bottom of the workspace DAG.

mod corpus;
mod ngram;
mod normalize;
pub mod strsim;
mod tfidf;
mod vocab;

pub use corpus::Corpus;
pub use ngram::char_ngrams;
pub use normalize::{normalize, tokenize};
pub use tfidf::{tfidf, SparseVector, TfIdfModel};
pub use vocab::Vocab;
