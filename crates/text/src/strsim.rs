//! String similarity measures — the classical ER feature family.
//!
//! Used by the Magellan-style non-deep baseline and available as
//! hand-crafted features anywhere. All similarities are in `[0, 1]` with
//! 1 meaning identical.

use std::collections::BTreeSet;

/// Levenshtein edit distance (insertions, deletions, substitutions).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // One-row DP.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein similarity: `1 - dist / max_len`; 1 for two empty strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f32 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f32 / max_len as f32
}

/// Jaccard similarity over whitespace tokens; 1 for two empty strings.
pub fn jaccard_tokens(a: &str, b: &str) -> f32 {
    let sa: BTreeSet<&str> = a.split_whitespace().collect();
    let sb: BTreeSet<&str> = b.split_whitespace().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f32 / union.max(1) as f32
}

/// Jaro similarity (basis for Jaro–Winkler).
pub fn jaro(a: &str, b: &str) -> f32 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .enumerate()
        .filter(|&(j, _)| b_used[j])
        .map(|(_, &c)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f32;
    (m / a.len() as f32 + m / b.len() as f32 + (m - transpositions as f32) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale `p = 0.1` and
/// a maximum common-prefix length of 4.
pub fn jaro_winkler(a: &str, b: &str) -> f32 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f32;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

/// Exact-match indicator after trimming.
pub fn exact(a: &str, b: &str) -> f32 {
    if a.trim() == b.trim() {
        1.0
    } else {
        0.0
    }
}

/// Relative numeric similarity when both strings parse as numbers:
/// `1 - |x - y| / max(|x|, |y|)`, else `None`.
pub fn numeric_similarity(a: &str, b: &str) -> Option<f32> {
    let x: f64 = a.trim().trim_end_matches('%').parse().ok()?;
    let y: f64 = b.trim().trim_end_matches('%').parse().ok()?;
    let denom = x.abs().max(y.abs());
    if denom == 0.0 {
        return Some(1.0);
    }
    Some((1.0 - ((x - y).abs() / denom)).max(0.0) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("a", "a"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("restaurant", "restarant");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn jaccard_behaviour() {
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a b c", "a b c"), 1.0);
        assert_eq!(jaccard_tokens("a b", "c d"), 0.0);
        assert!((jaccard_tokens("a b c", "b c d") - 0.5).abs() < 1e-6);
    }

    #[test]
    fn jaro_winkler_known_behaviour() {
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        // Shared prefix boosts JW above Jaro.
        let j = jaro("martha", "marhta");
        let jw = jaro_winkler("martha", "marhta");
        assert!(jw > j);
        assert!((j - 0.944).abs() < 0.01, "jaro {j}");
    }

    #[test]
    fn exact_and_numeric() {
        assert_eq!(exact(" x ", "x"), 1.0);
        assert_eq!(exact("x", "y"), 0.0);
        assert_eq!(numeric_similarity("100", "100"), Some(1.0));
        let s = numeric_similarity("100", "90").unwrap();
        assert!((s - 0.9).abs() < 1e-6);
        assert_eq!(numeric_similarity("abc", "1"), None);
        assert_eq!(numeric_similarity("5.5%", "5.5%"), Some(1.0));
        assert_eq!(numeric_similarity("0", "0"), Some(1.0));
    }

    #[test]
    fn similarities_bounded() {
        let pairs = [("hello", "world"), ("a", ""), ("abc def", "abc xyz")];
        for (a, b) in pairs {
            for s in [
                levenshtein_similarity(a, b),
                jaccard_tokens(a, b),
                jaro_winkler(a, b),
            ] {
                assert!((0.0..=1.0).contains(&s), "{a} vs {b}: {s}");
            }
        }
    }
}
