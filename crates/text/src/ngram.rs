//! Character n-grams for subword features.

/// Character n-grams of a token, padded with `^`/`$` boundary markers.
///
/// These are the subword features used by the BERT-style IR generator to
/// stay robust to typos: `"hello"` and `"helo"` share most of their
/// trigrams even though they differ as whole words.
///
/// Returns an empty vector for an empty token. If the padded token is
/// shorter than `n`, a single n-gram containing the whole padded token is
/// returned.
///
/// # Examples
///
/// ```
/// assert_eq!(vaer_text::char_ngrams("ab", 3), vec!["^ab", "ab$"]);
/// assert_eq!(vaer_text::char_ngrams("a", 3), vec!["^a$"]);
/// ```
///
/// # Panics
/// Panics when `n < 2`.
pub fn char_ngrams(token: &str, n: usize) -> Vec<String> {
    assert!(n >= 2, "char_ngrams requires n >= 2");
    if token.is_empty() {
        return Vec::new();
    }
    let padded: Vec<char> = std::iter::once('^')
        .chain(token.chars())
        .chain(std::iter::once('$'))
        .collect();
    if padded.len() <= n {
        return vec![padded.iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_coverage() {
        let grams = char_ngrams("hello", 3);
        assert_eq!(grams, vec!["^he", "hel", "ell", "llo", "lo$"]);
    }

    #[test]
    fn short_tokens() {
        assert_eq!(char_ngrams("a", 3), vec!["^a$"]);
        assert_eq!(char_ngrams("ab", 4), vec!["^ab$"]);
        assert!(char_ngrams("", 3).is_empty());
    }

    #[test]
    fn typo_overlap() {
        let a = char_ngrams("restaurant", 3);
        let b = char_ngrams("restarant", 3); // missing 'u'
        let shared = a.iter().filter(|g| b.contains(g)).count();
        assert!(shared >= a.len() / 2, "only {shared}/{} shared", a.len());
    }

    #[test]
    fn unicode_tokens() {
        let grams = char_ngrams("café", 3);
        assert!(grams.iter().any(|g| g.contains('é')));
    }

    #[test]
    #[should_panic]
    fn n_below_two_panics() {
        char_ngrams("x", 1);
    }
}
