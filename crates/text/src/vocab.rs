//! Token interning with frequency statistics.

use std::collections::HashMap;

/// A vocabulary mapping tokens to dense `u32` ids.
///
/// Ids are assigned in first-seen order, so a vocabulary built from the
/// same corpus is always identical — important for reproducibility of the
/// embedding models trained on top.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    // vaer-lint: allow(det-hash-iter) -- lookup-only interning table; all iteration goes through the id-ordered `tokens` vec
    index: HashMap<String, u32>,
    tokens: Vec<String>,
    counts: Vec<u64>,
}

impl Vocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vocabulary from token streams, keeping tokens that occur at
    /// least `min_count` times.
    pub fn build<'a, I, S>(sentences: I, min_count: u64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = &'a str>,
    {
        let mut raw: Vec<(String, u64)> = Vec::new();
        // vaer-lint: allow(det-hash-iter) -- lookup-only; `raw` preserves first-seen order and is the only thing iterated
        let mut pos: HashMap<String, usize> = HashMap::new();
        for sentence in sentences {
            for tok in sentence {
                match pos.get(tok) {
                    Some(&i) => raw[i].1 += 1,
                    None => {
                        pos.insert(tok.to_owned(), raw.len());
                        raw.push((tok.to_owned(), 1));
                    }
                }
            }
        }
        let mut v = Vocab::new();
        for (tok, count) in raw {
            if count >= min_count {
                v.insert_with_count(tok, count);
            }
        }
        v
    }

    fn insert_with_count(&mut self, token: String, count: u64) -> u32 {
        match self.index.get(&token) {
            Some(&id) => {
                self.counts[id as usize] += count;
                id
            }
            None => {
                let id = self.tokens.len() as u32;
                self.index.insert(token.clone(), id);
                self.tokens.push(token);
                self.counts.push(count);
                id
            }
        }
    }

    /// Interns `token`, creating a new id if unseen, and bumps its count.
    pub fn add(&mut self, token: &str) -> u32 {
        match self.index.get(token) {
            Some(&id) => {
                self.counts[id as usize] += 1;
                id
            }
            None => self.insert_with_count(token.to_owned(), 1),
        }
    }

    /// Id of `token`, if present.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Token string for `id`.
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Occurrence count of `id`.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Total number of token occurrences recorded.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterator over `(id, token, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str, u64)> {
        self.tokens
            .iter()
            .zip(self.counts.iter())
            .enumerate()
            .map(|(i, (t, &c))| (i as u32, t.as_str(), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut v = Vocab::new();
        let a = v.add("apple");
        let b = v.add("banana");
        let a2 = v.add("apple");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.get("apple"), Some(a));
        assert_eq!(v.get("cherry"), None);
        assert_eq!(v.token(b), "banana");
        assert_eq!(v.count(a), 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.total_count(), 3);
    }

    #[test]
    fn build_respects_min_count() {
        let sents = [vec!["a", "b", "a"], vec!["a", "c"]];
        let v = Vocab::build(sents.iter().map(|s| s.iter().copied()), 2);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get("a"), Some(0));
        assert_eq!(v.count(0), 3);
        assert_eq!(v.get("b"), None);
    }

    #[test]
    fn ids_are_first_seen_order() {
        let sents = [vec!["z", "y", "x"]];
        let v = Vocab::build(sents.iter().map(|s| s.iter().copied()), 1);
        assert_eq!(v.get("z"), Some(0));
        assert_eq!(v.get("y"), Some(1));
        assert_eq!(v.get("x"), Some(2));
    }

    #[test]
    fn iteration_order_stable() {
        let mut v = Vocab::new();
        v.add("one");
        v.add("two");
        let items: Vec<_> = v.iter().map(|(id, t, _)| (id, t.to_owned())).collect();
        assert_eq!(items, vec![(0, "one".to_owned()), (1, "two".to_owned())]);
    }
}
