//! Nearest-neighbour search for VAER: p-stable Euclidean LSH and exact
//! brute-force baselines.
//!
//! Algorithm 1 of the paper builds its unlabeled candidate pool with
//! "nearest-neighbour search, e.g., using Locality Sensitive Hashing with
//! Euclidean distance" — that index lives here ([`E2Lsh`]), together with
//! an exact [`BruteForceKnn`] used both as a correctness oracle in tests
//! and as the small-input fallback, plus the [`knn_join`]/[`self_knn_join`]
//! helpers that produce candidate tuple pairs for blocking (§VI-B) and
//! active-learning bootstrapping (§V-A).

mod brute;
mod join;
mod lsh;

pub use brute::BruteForceKnn;
pub use join::{knn_join, self_knn_join, CandidatePair, JoinCache, Neighbor};
pub use lsh::{E2Lsh, E2LshConfig};

/// Common interface for top-K Euclidean search over a fixed point set.
pub trait KnnIndex {
    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` indexed points closest to `query` (ascending distance).
    /// May return fewer than `k` when the index is small (or, for LSH,
    /// when few candidates collide).
    fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor>;
}
