//! kNN joins: candidate tuple-pair generation for blocking and
//! active-learning bootstrapping.

use crate::KnnIndex;

/// One retrieved neighbour: the indexed point's position and its exact
/// Euclidean distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the point inside the index it came from.
    pub index: usize,
    /// Euclidean distance to the query.
    pub distance: f32,
}

/// A candidate pair produced by a join: `(left, right, distance)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePair {
    /// Row in the left (query) collection.
    pub left: usize,
    /// Row in the right (indexed) collection.
    pub right: usize,
    /// Euclidean distance between the two vectors.
    pub distance: f32,
}

/// Joins every query vector against an index, keeping the top-`k`
/// neighbours of each. This is the blocking step of §VI-B: pairs that
/// never meet in a top-K list are never compared by the matcher.
pub fn knn_join(queries: &[Vec<f32>], index: &dyn KnnIndex, k: usize) -> Vec<CandidatePair> {
    let mut out = Vec::with_capacity(queries.len() * k);
    for (qi, q) in queries.iter().enumerate() {
        for n in index.knn(q, k) {
            out.push(CandidatePair {
                left: qi,
                right: n.index,
                distance: n.distance,
            });
        }
    }
    out
}

/// Self-join over one collection (Algorithm 1, lines 3–10): each point is
/// paired with its top-`k` neighbours, excluding itself; symmetric
/// duplicates `(i, j)` / `(j, i)` are merged with `i < j`.
pub fn self_knn_join(index: &dyn KnnIndex, points: &[Vec<f32>], k: usize) -> Vec<CandidatePair> {
    let mut out: Vec<CandidatePair> = Vec::with_capacity(points.len() * k);
    for (qi, q) in points.iter().enumerate() {
        // k+1 because the query collides with itself at distance 0.
        for n in index.knn(q, k + 1) {
            if n.index == qi {
                continue;
            }
            let (a, b) = if qi < n.index {
                (qi, n.index)
            } else {
                (n.index, qi)
            };
            out.push(CandidatePair {
                left: a,
                right: b,
                distance: n.distance,
            });
        }
    }
    out.sort_by_key(|p| (p.left, p.right));
    out.dedup_by(|a, b| a.left == b.left && a.right == b.right);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceKnn;

    #[test]
    fn knn_join_pairs_each_query() {
        let right = BruteForceKnn::build(vec![vec![0.0], vec![10.0], vec![20.0]]);
        let queries = vec![vec![1.0], vec![19.0]];
        let pairs = knn_join(&queries, &right, 1);
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].left, pairs[0].right), (0, 0));
        assert_eq!((pairs[1].left, pairs[1].right), (1, 2));
    }

    #[test]
    fn self_join_excludes_self_and_dedups() {
        let points = vec![vec![0.0], vec![0.1], vec![5.0]];
        let idx = BruteForceKnn::build(points.clone());
        let pairs = self_knn_join(&idx, &points, 1);
        // 0↔1 are mutual nearest neighbours → one merged pair; 2's nearest
        // is 1 → pair (1,2).
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].left, pairs[0].right), (0, 1));
        assert_eq!((pairs[1].left, pairs[1].right), (1, 2));
        assert!(pairs.iter().all(|p| p.left < p.right));
    }

    #[test]
    fn self_join_empty() {
        let idx = BruteForceKnn::build(Vec::new());
        assert!(self_knn_join(&idx, &[], 3).is_empty());
    }

    #[test]
    fn distances_are_exact() {
        let right = BruteForceKnn::build(vec![vec![3.0, 4.0]]);
        let pairs = knn_join(&[vec![0.0, 0.0]], &right, 1);
        assert!((pairs[0].distance - 5.0).abs() < 1e-6);
    }
}
