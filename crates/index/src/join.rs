//! kNN joins: candidate tuple-pair generation for blocking and
//! active-learning bootstrapping.

use crate::KnnIndex;
use std::collections::BTreeMap;

/// One retrieved neighbour: the indexed point's position and its exact
/// Euclidean distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the point inside the index it came from.
    pub index: usize,
    /// Euclidean distance to the query.
    pub distance: f32,
}

/// A candidate pair produced by a join: `(left, right, distance)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePair {
    /// Row in the left (query) collection.
    pub left: usize,
    /// Row in the right (indexed) collection.
    pub right: usize,
    /// Euclidean distance between the two vectors.
    pub distance: f32,
}

/// Joins every query vector against an index, keeping the top-`k`
/// neighbours of each. This is the blocking step of §VI-B: pairs that
/// never meet in a top-K list are never compared by the matcher.
pub fn knn_join(queries: &[Vec<f32>], index: &dyn KnnIndex, k: usize) -> Vec<CandidatePair> {
    let mut probe = || false;
    knn_join_probed(queries, index, k, &mut probe).unwrap_or_default()
}

/// [`knn_join`] with a cooperative stop probe, called once per query
/// row. Returning `true` from `probe` abandons the join and yields
/// `None` (callers map this to their own cancellation/deadline error) —
/// the partial candidate list is dropped, never returned.
pub fn knn_join_probed(
    queries: &[Vec<f32>],
    index: &dyn KnnIndex,
    k: usize,
    probe: &mut dyn FnMut() -> bool,
) -> Option<Vec<CandidatePair>> {
    let mut out = Vec::with_capacity(queries.len() * k);
    for (qi, q) in queries.iter().enumerate() {
        if probe() {
            return None;
        }
        for n in index.knn(q, k) {
            out.push(CandidatePair {
                left: qi,
                right: n.index,
                distance: n.distance,
            });
        }
    }
    Some(out)
}

/// Memoises [`knn_join`] results per `k` over one immutable index.
///
/// Blocking is re-run whenever a resolution plan is asked for a new
/// candidate budget; the index and query set never change between those
/// calls, so the join output is a pure function of `k`. The cache borrows
/// both sides and stores each distinct `k`'s candidate list the first
/// time it is requested.
pub struct JoinCache<'a> {
    queries: &'a [Vec<f32>],
    index: &'a dyn KnnIndex,
    per_k: BTreeMap<usize, Vec<CandidatePair>>,
}

impl<'a> JoinCache<'a> {
    /// An empty cache over `queries` joined against `index`.
    pub fn new(queries: &'a [Vec<f32>], index: &'a dyn KnnIndex) -> Self {
        Self {
            queries,
            index,
            per_k: BTreeMap::new(),
        }
    }

    /// Top-`k` candidates for every query — computed on first request,
    /// served from the memo afterwards.
    pub fn candidates(&mut self, k: usize) -> &[CandidatePair] {
        self.per_k
            .entry(k)
            .or_insert_with(|| knn_join(self.queries, self.index, k))
    }

    /// [`candidates`](Self::candidates) with a cooperative stop probe
    /// (see [`knn_join_probed`]). A memoised `k` is returned without
    /// probing; on an abandoned join nothing is memoised and `None` is
    /// returned.
    pub fn candidates_probed(
        &mut self,
        k: usize,
        probe: &mut dyn FnMut() -> bool,
    ) -> Option<&[CandidatePair]> {
        if !self.per_k.contains_key(&k) {
            let joined = knn_join_probed(self.queries, self.index, k, probe)?;
            self.per_k.insert(k, joined);
        }
        Some(&self.per_k[&k])
    }

    /// Seeds the memo for `k` with an externally recovered candidate list
    /// (e.g. a checkpointed blocking artifact), avoiding a recompute.
    pub fn insert(&mut self, k: usize, pairs: Vec<CandidatePair>) {
        self.per_k.insert(k, pairs);
    }

    /// Drops the memo for `k` (degradation path: a poisoned plan memo is
    /// rebuilt cold rather than trusted).
    pub fn invalidate(&mut self, k: usize) {
        self.per_k.remove(&k);
    }

    /// Whether `k`'s join is already memoised.
    pub fn contains(&self, k: usize) -> bool {
        self.per_k.contains_key(&k)
    }

    /// Number of distinct `k` values memoised so far.
    pub fn len(&self) -> usize {
        self.per_k.len()
    }

    /// Whether nothing has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.per_k.is_empty()
    }
}

/// Self-join over one collection (Algorithm 1, lines 3–10): each point is
/// paired with its top-`k` neighbours, excluding itself; symmetric
/// duplicates `(i, j)` / `(j, i)` are merged with `i < j`.
pub fn self_knn_join(index: &dyn KnnIndex, points: &[Vec<f32>], k: usize) -> Vec<CandidatePair> {
    let mut out: Vec<CandidatePair> = Vec::with_capacity(points.len() * k);
    for (qi, q) in points.iter().enumerate() {
        // k+1 because the query collides with itself at distance 0.
        for n in index.knn(q, k + 1) {
            if n.index == qi {
                continue;
            }
            let (a, b) = if qi < n.index {
                (qi, n.index)
            } else {
                (n.index, qi)
            };
            out.push(CandidatePair {
                left: a,
                right: b,
                distance: n.distance,
            });
        }
    }
    out.sort_by_key(|p| (p.left, p.right));
    out.dedup_by(|a, b| a.left == b.left && a.right == b.right);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceKnn;

    #[test]
    fn knn_join_pairs_each_query() {
        let right = BruteForceKnn::build(vec![vec![0.0], vec![10.0], vec![20.0]]);
        let queries = vec![vec![1.0], vec![19.0]];
        let pairs = knn_join(&queries, &right, 1);
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].left, pairs[0].right), (0, 0));
        assert_eq!((pairs[1].left, pairs[1].right), (1, 2));
    }

    #[test]
    fn self_join_excludes_self_and_dedups() {
        let points = vec![vec![0.0], vec![0.1], vec![5.0]];
        let idx = BruteForceKnn::build(points.clone());
        let pairs = self_knn_join(&idx, &points, 1);
        // 0↔1 are mutual nearest neighbours → one merged pair; 2's nearest
        // is 1 → pair (1,2).
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].left, pairs[0].right), (0, 1));
        assert_eq!((pairs[1].left, pairs[1].right), (1, 2));
        assert!(pairs.iter().all(|p| p.left < p.right));
    }

    #[test]
    fn self_join_empty() {
        let idx = BruteForceKnn::build(Vec::new());
        assert!(self_knn_join(&idx, &[], 3).is_empty());
    }

    #[test]
    fn join_cache_memoises_per_k_and_accepts_seeds() {
        let points = vec![vec![0.0], vec![10.0], vec![20.0]];
        let idx = BruteForceKnn::build(points);
        let queries = vec![vec![1.0], vec![19.0]];
        let mut cache = JoinCache::new(&queries, &idx);
        assert!(cache.is_empty());
        let direct = knn_join(&queries, &idx, 2);
        assert_eq!(cache.candidates(2), &direct[..]);
        assert_eq!(cache.candidates(2), &direct[..], "memo changed on reread");
        assert!(cache.contains(2) && !cache.contains(1));
        assert_eq!(cache.len(), 1);
        // A seeded entry short-circuits the join entirely.
        let fake = vec![CandidatePair {
            left: 7,
            right: 7,
            distance: 0.0,
        }];
        cache.insert(1, fake.clone());
        assert_eq!(cache.candidates(1), &fake[..]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn probed_join_stops_cooperatively_and_memoises_nothing() {
        let points = vec![vec![0.0], vec![10.0], vec![20.0]];
        let idx = BruteForceKnn::build(points);
        let queries = vec![vec![1.0], vec![19.0], vec![21.0]];
        // A probe that trips on the third query abandons the join.
        let mut calls = 0;
        let mut probe = || {
            calls += 1;
            calls > 2
        };
        assert_eq!(knn_join_probed(&queries, &idx, 1, &mut probe), None);
        assert_eq!(calls, 3, "probe must run once per query until tripped");
        // Through the cache: nothing is memoised on abandonment…
        let mut cache = JoinCache::new(&queries, &idx);
        let mut stop = || true;
        assert!(cache.candidates_probed(1, &mut stop).is_none());
        assert!(cache.is_empty());
        // …and a memoised k is served without consulting the probe.
        let mut go = || false;
        assert!(cache.candidates_probed(1, &mut go).is_some());
        assert!(cache.candidates_probed(1, &mut stop).is_some());
        // invalidate() really drops the memo.
        cache.invalidate(1);
        assert!(cache.is_empty());
    }

    #[test]
    fn distances_are_exact() {
        let right = BruteForceKnn::build(vec![vec![3.0, 4.0]]);
        let pairs = knn_join(&[vec![0.0, 0.0]], &right, 1);
        assert!((pairs[0].distance - 5.0).abs() < 1e-6);
    }
}
