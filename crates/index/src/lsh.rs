//! p-stable Euclidean LSH (E2LSH; Datar et al., SoCG 2004).
//!
//! Each of `num_tables` tables hashes a vector with `hashes_per_table`
//! independent functions `h(v) = ⌊(a·v + b) / w⌋` where `a ~ N(0, I)` and
//! `b ~ U[0, w)`. Points colliding on the full concatenated key in at
//! least one table become candidates; candidates are re-ranked by exact
//! Euclidean distance.

use crate::brute::sq_dist;
use crate::join::Neighbor;
use crate::KnnIndex;
use rand::{Rng, RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Tuning knobs for [`E2Lsh`].
#[derive(Debug, Clone)]
pub struct E2LshConfig {
    /// Number of hash tables (more tables → higher recall, more memory).
    pub num_tables: usize,
    /// Concatenated hash functions per table (more → higher precision).
    pub hashes_per_table: usize,
    /// Quantisation bucket width `w`. Should be on the order of typical
    /// nearest-neighbour distances.
    pub bucket_width: f32,
    /// Multi-probe level: in addition to the query's own bucket, probe
    /// buckets whose key differs by ±1 in up to this many coordinates
    /// (0 disables multi-probing). Multi-probing trades a few extra
    /// lookups for recall, letting `num_tables` stay small (Lv et al.,
    /// VLDB 2007).
    pub multiprobe: usize,
    /// RNG seed for the projection vectors.
    pub seed: u64,
}

impl Default for E2LshConfig {
    fn default() -> Self {
        Self {
            num_tables: 8,
            hashes_per_table: 4,
            bucket_width: 1.0,
            multiprobe: 1,
            seed: 0x5A5A,
        }
    }
}

impl E2LshConfig {
    /// A configuration whose bucket width is calibrated from a data sample:
    /// the mean distance between a few hundred random point pairs.
    pub fn calibrated(points: &[Vec<f32>], seed: u64) -> Self {
        let mut cfg = Self {
            seed,
            ..Self::default()
        };
        let n = points.len();
        if n >= 2 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            let samples = 256.min(n * (n - 1) / 2);
            let mut total = 0.0f64;
            // vaer-lint: allow(cancel-probe-coverage) -- width calibration capped at 256 sampled distances
            for _ in 0..samples {
                let i = rng.random_range(0..n);
                let mut j = rng.random_range(0..n);
                while j == i {
                    j = rng.random_range(0..n);
                }
                total += (sq_dist(&points[i], &points[j]) as f64).sqrt();
            }
            let mean = (total / samples as f64) as f32;
            if mean > 1e-6 {
                // A bucket of roughly half the typical inter-point distance
                // keeps near pairs colliding and far pairs apart.
                cfg.bucket_width = mean * 0.5;
            }
        }
        cfg
    }
}

#[derive(Debug, Clone)]
struct HashTable {
    /// `hashes_per_table` projection vectors, each of dimension `dims`.
    projections: Vec<Vec<f32>>,
    offsets: Vec<f32>,
    buckets: BTreeMap<Vec<i32>, Vec<u32>>,
}

impl HashTable {
    fn key(&self, v: &[f32], w: f32) -> Vec<i32> {
        self.projections
            .iter()
            .zip(self.offsets.iter())
            .map(|(a, &b)| {
                let dot: f32 = a.iter().zip(v.iter()).map(|(&x, &y)| x * y).sum();
                ((dot + b) / w).floor() as i32
            })
            .collect()
    }
}

/// The p-stable Euclidean LSH index.
#[derive(Debug, Clone)]
pub struct E2Lsh {
    config: E2LshConfig,
    tables: Vec<HashTable>,
    points: Vec<Vec<f32>>,
    dims: usize,
}

impl E2Lsh {
    /// Builds an index over `points` with the given configuration.
    ///
    /// # Panics
    /// Panics on inconsistent point dimensions or a non-positive bucket
    /// width.
    pub fn build(points: Vec<Vec<f32>>, config: E2LshConfig) -> Self {
        let mut probe = || false;
        Self::build_probed(points, config, &mut probe)
            .expect("an always-false probe never abandons the build") // vaer-lint: allow(panic) -- infallible by construction
    }

    /// [`build`](Self::build) with a cooperative stop probe, called once
    /// per hash table and once per 64 point insertions. Returning `true`
    /// abandons the build and yields `None` — the partially built index
    /// is dropped, never returned.
    ///
    /// # Panics
    /// Panics on inconsistent point dimensions or a non-positive bucket
    /// width.
    pub fn build_probed(
        points: Vec<Vec<f32>>,
        config: E2LshConfig,
        probe: &mut dyn FnMut() -> bool,
    ) -> Option<Self> {
        assert!(config.bucket_width > 0.0, "bucket_width must be positive");
        assert!(config.num_tables > 0 && config.hashes_per_table > 0);
        let dims = points.first().map_or(0, Vec::len);
        // vaer-lint: allow(cancel-probe-coverage) -- dimension check pass bounded by point count at build time
        for (i, p) in points.iter().enumerate() {
            assert_eq!(
                p.len(),
                dims,
                "point {i} has {} dims, expected {dims}",
                p.len()
            );
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut tables = Vec::with_capacity(config.num_tables);
        for _ in 0..config.num_tables {
            if probe() {
                return None;
            }
            let projections = (0..config.hashes_per_table)
                .map(|_| (0..dims).map(|_| gaussian(&mut rng)).collect())
                .collect();
            let offsets = (0..config.hashes_per_table)
                .map(|_| rng.random_range(0.0..config.bucket_width))
                .collect();
            let mut table = HashTable {
                projections,
                offsets,
                buckets: BTreeMap::new(),
            };
            for (i, p) in points.iter().enumerate() {
                if i % 64 == 0 && probe() {
                    return None;
                }
                let key = table.key(p, config.bucket_width);
                table.buckets.entry(key).or_default().push(i as u32);
            }
            tables.push(table);
        }
        Some(Self {
            config,
            tables,
            points,
            dims,
        })
    }

    /// Builds with a data-calibrated bucket width.
    pub fn build_calibrated(points: Vec<Vec<f32>>, seed: u64) -> Self {
        let config = E2LshConfig::calibrated(&points, seed);
        Self::build(points, config)
    }

    /// [`build_calibrated`](Self::build_calibrated) with a cooperative
    /// stop probe (see [`build_probed`](Self::build_probed)).
    pub fn build_calibrated_probed(
        points: Vec<Vec<f32>>,
        seed: u64,
        probe: &mut dyn FnMut() -> bool,
    ) -> Option<Self> {
        let config = E2LshConfig::calibrated(&points, seed);
        Self::build_probed(points, config, probe)
    }

    /// Dimensionality of the indexed points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The configuration in use.
    pub fn config(&self) -> &E2LshConfig {
        &self.config
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec<f32>] {
        &self.points
    }

    /// All candidate point indices colliding with `query` in any table
    /// (deduplicated, unordered), including multi-probe buckets when
    /// configured.
    ///
    /// # Panics
    /// Panics when `query`'s dimensionality differs from the index.
    pub fn candidates(&self, query: &[f32]) -> Vec<usize> {
        assert_eq!(query.len(), self.dims, "query dims mismatch");
        let mut seen = vec![false; self.points.len()];
        let mut out = Vec::new();
        let collect = |bucket: Option<&Vec<u32>>, seen: &mut Vec<bool>, out: &mut Vec<usize>| {
            if let Some(bucket) = bucket {
                for &i in bucket {
                    let i = i as usize;
                    if !seen[i] {
                        seen[i] = true;
                        out.push(i);
                    }
                }
            }
        };
        // vaer-lint: allow(cancel-probe-coverage) -- bucket lookup bounded by num_tables x first-ring perturbations from config
        for table in &self.tables {
            let key = table.key(query, self.config.bucket_width);
            collect(table.buckets.get(&key), &mut seen, &mut out);
            if self.config.multiprobe > 0 {
                // One-coordinate ±1 perturbations (the first ring of the
                // query-directed probing sequence).
                for coord in 0..key.len() {
                    for delta in [-1i32, 1] {
                        let mut probe = key.clone();
                        probe[coord] += delta;
                        collect(table.buckets.get(&probe), &mut seen, &mut out);
                    }
                }
            }
        }
        out
    }
}

impl KnnIndex for E2Lsh {
    fn len(&self) -> usize {
        self.points.len()
    }

    /// Top-K among hash candidates, re-ranked by exact distance. Falls
    /// back to a full scan when the candidate pool is smaller than `k`
    /// (correctness first; the scan is still cheap at VAER's scales).
    fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let mut cand = self.candidates(query);
        if cand.len() < k {
            cand = (0..self.points.len()).collect();
        }
        let mut scored: Vec<Neighbor> = cand
            .into_iter()
            .map(|i| Neighbor {
                index: i,
                distance: sq_dist(query, &self.points[i]).sqrt(),
            })
            .collect();
        scored.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        scored.truncate(k);
        scored
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    // Box–Muller.
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceKnn;

    fn clustered_points(seed: u64, clusters: usize, per_cluster: usize) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut points = Vec::new();
        for c in 0..clusters {
            let center: Vec<f32> = (0..8).map(|d| (c * 7 + d) as f32).collect();
            for _ in 0..per_cluster {
                points.push(
                    center
                        .iter()
                        .map(|&x| x + rng.random_range(-0.05f32..0.05))
                        .collect(),
                );
            }
        }
        points
    }

    #[test]
    fn lsh_recovers_cluster_neighbours() {
        let points = clustered_points(1, 10, 10);
        let lsh = E2Lsh::build_calibrated(points.clone(), 42);
        let brute = BruteForceKnn::build(points.clone());
        let mut recall_hits = 0;
        let mut recall_total = 0;
        for (qi, q) in points.iter().enumerate().step_by(3) {
            let truth: Vec<usize> = brute.knn(q, 5).iter().map(|n| n.index).collect();
            let got: Vec<usize> = lsh.knn(q, 5).iter().map(|n| n.index).collect();
            recall_total += truth.len();
            recall_hits += truth.iter().filter(|t| got.contains(t)).count();
            assert!(got.contains(&qi), "query point should be its own neighbour");
        }
        let recall = recall_hits as f32 / recall_total as f32;
        assert!(recall > 0.9, "LSH recall vs brute force = {recall}");
    }

    #[test]
    fn candidates_are_deduplicated() {
        let points = clustered_points(2, 3, 5);
        let lsh = E2Lsh::build_calibrated(points.clone(), 7);
        let cand = lsh.candidates(&points[0]);
        let mut sorted = cand.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(cand.len(), sorted.len());
    }

    #[test]
    fn knn_falls_back_when_sparse() {
        // A huge bucket width would lump everything; a tiny one isolates
        // points — either way knn must still return k results.
        let points = clustered_points(3, 4, 4);
        let cfg = E2LshConfig {
            bucket_width: 1e-4,
            ..E2LshConfig::default()
        };
        let lsh = E2Lsh::build(points.clone(), cfg);
        let nn = lsh.knn(&points[0], 6);
        assert_eq!(nn.len(), 6);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let points = clustered_points(4, 3, 4);
        let a = E2Lsh::build_calibrated(points.clone(), 9);
        let b = E2Lsh::build_calibrated(points.clone(), 9);
        for q in points.iter().take(4) {
            assert_eq!(
                a.knn(q, 3).iter().map(|n| n.index).collect::<Vec<_>>(),
                b.knn(q, 3).iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn multiprobe_extends_candidates() {
        let points = clustered_points(8, 6, 8);
        let base = E2LshConfig {
            num_tables: 2,
            hashes_per_table: 4,
            bucket_width: 0.5,
            multiprobe: 0,
            seed: 77,
        };
        let without = E2Lsh::build(points.clone(), base.clone());
        let with = E2Lsh::build(
            points.clone(),
            E2LshConfig {
                multiprobe: 1,
                ..base
            },
        );
        let mut total_without = 0;
        let mut total_with = 0;
        for q in points.iter().step_by(5) {
            total_without += without.candidates(q).len();
            total_with += with.candidates(q).len();
        }
        assert!(
            total_with >= total_without,
            "multiprobe shrank candidates: {total_with} < {total_without}"
        );
    }

    #[test]
    fn empty_index_is_fine() {
        let lsh = E2Lsh::build(Vec::new(), E2LshConfig::default());
        assert!(lsh.is_empty());
        assert!(lsh.knn(&[], 3).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_bucket_width_panics() {
        E2Lsh::build(
            vec![vec![1.0]],
            E2LshConfig {
                bucket_width: 0.0,
                ..Default::default()
            },
        );
    }
}
