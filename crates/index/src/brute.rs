//! Exact k-nearest-neighbour search by linear scan.

use crate::join::Neighbor;
use crate::KnnIndex;

/// Exact Euclidean top-K search over an owned point set.
///
/// O(n·d) per query; used as the correctness oracle for [`E2Lsh`]
/// (crate::E2Lsh) and as the index of choice for small collections where
/// hashing overhead isn't worth it.
#[derive(Debug, Clone)]
pub struct BruteForceKnn {
    points: Vec<Vec<f32>>,
    dims: usize,
}

impl BruteForceKnn {
    /// Builds the index. All points must share one dimensionality.
    ///
    /// # Panics
    /// Panics if points have inconsistent dimensions.
    pub fn build(points: Vec<Vec<f32>>) -> Self {
        let dims = points.first().map_or(0, Vec::len);
        // vaer-lint: allow(cancel-probe-coverage) -- dimension check pass bounded by point count at build time
        for (i, p) in points.iter().enumerate() {
            assert_eq!(
                p.len(),
                dims,
                "point {i} has {} dims, expected {dims}",
                p.len()
            );
        }
        Self { points, dims }
    }

    /// Dimensionality of the indexed points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec<f32>] {
        &self.points
    }
}

impl KnnIndex for BruteForceKnn {
    fn len(&self) -> usize {
        self.points.len()
    }

    ///
    /// # Panics
    /// Panics when `query`'s dimensionality differs from the indexed points.
    fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.dims,
            "query dims {} != index dims {}",
            query.len(),
            self.dims
        );
        let mut all: Vec<Neighbor> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| Neighbor {
                index: i,
                distance: sq_dist(query, p).sqrt(),
            })
            .collect();
        all.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        all.truncate(k);
        all
    }
}

#[inline]
pub(crate) fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_neighbours() {
        let idx = BruteForceKnn::build(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![5.0, 5.0],
            vec![0.1, 0.1],
        ]);
        let nn = idx.knn(&[0.0, 0.0], 2);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].index, 0);
        assert_eq!(nn[1].index, 3);
        assert!(nn[0].distance <= nn[1].distance);
    }

    #[test]
    fn k_larger_than_n() {
        let idx = BruteForceKnn::build(vec![vec![1.0], vec![2.0]]);
        let nn = idx.knn(&[0.0], 10);
        assert_eq!(nn.len(), 2);
    }

    #[test]
    fn empty_index() {
        let idx = BruteForceKnn::build(Vec::new());
        assert!(idx.is_empty());
        assert!(idx.knn(&[], 3).is_empty());
    }

    #[test]
    #[should_panic]
    fn inconsistent_dims_panic() {
        BruteForceKnn::build(vec![vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic]
    fn query_dim_mismatch_panics() {
        let idx = BruteForceKnn::build(vec![vec![1.0, 2.0]]);
        idx.knn(&[1.0], 1);
    }
}
