//! Mutation tests for the semantic safety contracts: the workspace as
//! checked in passes, and deleting any `is_x86_feature_detected!`
//! guard or any `UNSAFE_LEDGER.md` row makes the lint fail.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use vaer_lint::{all_rules, Context, Engine, FileKind, Finding, Rule, SourceFile};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn rule(id: &str) -> Box<dyn Rule> {
    all_rules()
        .into_iter()
        .find(|r| r.id() == id)
        .unwrap_or_else(|| panic!("rule `{id}` exists"))
}

fn parse(rel: &str, src: &str) -> SourceFile {
    SourceFile::parse(PathBuf::from(rel), rel.to_string(), FileKind::Lib, src)
}

/// Context with `feature_fns` collected from the given file, the way
/// the engine does it workspace-wide.
fn guard_ctx(file: &SourceFile) -> Context {
    let mut feature_fns: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for f in &file.tree.fns {
        if !f.features.is_empty() {
            feature_fns.insert(f.name.clone(), f.features.clone());
        }
    }
    Context {
        feature_fns,
        ..Context::default()
    }
}

fn guard_findings(rel: &str, src: &str) -> Vec<Finding> {
    let file = parse(rel, src);
    let ctx = guard_ctx(&file);
    let mut out = Vec::new();
    rule("feature-guard-dominance").check(&file, &ctx, &mut out);
    out
}

const MACRO: &str = "is_x86_feature_detected!";

/// Byte offsets of real (non-comment) `is_x86_feature_detected!`
/// invocations — SAFETY comments quote the macro too.
fn guard_offsets(src: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = src[start..].find(MACRO) {
        let off = start + pos;
        let line_start = src[..off].rfind('\n').map_or(0, |p| p + 1);
        if !src[line_start..off].contains("//") {
            out.push(off);
        }
        start = off + MACRO.len();
    }
    out
}

/// Replaces the invocation at byte offset `off` with `true`,
/// simulating a deleted guard.
fn delete_guard(src: &str, off: usize) -> String {
    let paren = src[off..].find('(').expect("macro has args") + off;
    let close = src[paren..].find(')').expect("macro args close") + paren;
    format!("{}true{}", &src[..off], &src[close + 1..])
}

/// Every `is_x86_feature_detected!` guard in the SIMD dispatch code is
/// load-bearing: the unmutated files produce zero findings, and
/// deleting any single guard produces at least one.
#[test]
fn deleting_any_feature_guard_fails_the_lint() {
    let dir = workspace_root().join("crates/linalg/src");
    let mut guards_seen = 0usize;
    for entry in std::fs::read_dir(&dir).expect("linalg src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable source");
        let offsets = guard_offsets(&src);
        let rel = format!(
            "crates/linalg/src/{}",
            path.file_name().unwrap().to_str().unwrap()
        );
        // Only dispatch files count: obs.rs reports feature availability
        // into a gauge, where the macro guards nothing.
        if offsets.is_empty() || guard_ctx(&parse(&rel, &src)).feature_fns.is_empty() {
            continue;
        }
        assert!(
            guard_findings(&rel, &src).is_empty(),
            "{rel}: the checked-in dispatch code must be fully guarded"
        );
        for off in offsets {
            let mutated = delete_guard(&src, off);
            assert!(
                !guard_findings(&rel, &mutated).is_empty(),
                "{rel}: deleting the guard at byte {off} must produce a feature-guard-dominance finding"
            );
            guards_seen += 1;
        }
    }
    assert!(
        guards_seen >= 4,
        "expected several real guards in crates/linalg/src, found {guards_seen}"
    );
}

/// A throwaway two-file workspace whose ledger has exactly one row per
/// unsafe file, so every row is individually load-bearing.
struct MiniWs {
    root: PathBuf,
}

const LEDGER_HEADER: &str =
    "# Unsafe ledger\n\n| File | Construct | Invariant |\n|------|-----------|-----------|\n";
const ROW_A: &str =
    "| `crates/demo/src/a.rs` | `unsafe` block in `read` | Caller passes a non-empty slice. |\n";
const ROW_B: &str = "| `crates/demo/src/b.rs` | `#[target_feature]` fn `kern` | Only called behind a runtime check. |\n";

impl MiniWs {
    fn create(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("vaer-lint-semantic-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/demo/src")).expect("temp workspace dir");
        std::fs::write(root.join("lints.toml"), "").expect("write lints.toml");
        std::fs::write(
            root.join("crates/demo/src/a.rs"),
            "//! A.\npub fn read(x: &[u8]) -> u8 {\n    // SAFETY: callers pass non-empty slices.\n    unsafe { *x.get_unchecked(0) }\n}\n",
        )
        .expect("write a.rs");
        std::fs::write(
            root.join("crates/demo/src/b.rs"),
            "//! B.\n// SAFETY: only called behind an avx2 runtime check.\n#[target_feature(enable = \"avx2\")]\npub fn kern(x: &mut [f32]) {\n    let _ = x;\n}\n",
        )
        .expect("write b.rs");
        let ws = Self { root };
        ws.write_ledger(&format!("{LEDGER_HEADER}{ROW_A}{ROW_B}"));
        ws
    }

    fn write_ledger(&self, content: &str) {
        std::fs::write(self.root.join("UNSAFE_LEDGER.md"), content).expect("write ledger");
    }

    fn ledger_findings(&self) -> Vec<Finding> {
        Engine::new(self.root.clone())
            .expect("mini workspace config parses")
            .run()
            .expect("mini workspace scans")
            .findings
            .into_iter()
            .filter(|f| f.rule == "unsafe-ledger-sync")
            .collect()
    }
}

impl Drop for MiniWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Deleting any single ledger row — or the whole ledger — fails the
/// lint for the file whose coverage the row provided.
#[test]
fn deleting_any_ledger_row_fails_the_lint() {
    let ws = MiniWs::create("rows");
    assert!(
        ws.ledger_findings().is_empty(),
        "complete ledger must be clean"
    );

    for (dropped, kept, victim) in [(ROW_A, ROW_B, "a.rs"), (ROW_B, ROW_A, "b.rs")] {
        let _ = dropped;
        ws.write_ledger(&format!("{LEDGER_HEADER}{kept}"));
        let findings = ws.ledger_findings();
        assert!(
            findings.iter().any(|f| f.file.ends_with(victim)),
            "dropping the {victim} row must flag {victim}; got {findings:?}"
        );
    }

    std::fs::remove_file(ws.root.join("UNSAFE_LEDGER.md")).expect("remove ledger");
    let findings = ws.ledger_findings();
    assert!(
        findings
            .iter()
            .any(|f| f.file == "UNSAFE_LEDGER.md" && f.message.contains("no UNSAFE_LEDGER.md")),
        "deleting the ledger outright must fail; got {findings:?}"
    );
}

/// A row whose backticked construct no longer appears in its file is a
/// stale claim and must fail, even though the file still has a row.
#[test]
fn renaming_a_construct_stales_its_ledger_row() {
    let ws = MiniWs::create("constructs");
    let stale_row =
        "| `crates/demo/src/a.rs` | `unsafe` block in `read_renamed` | Row predates a rename. |\n";
    ws.write_ledger(&format!("{LEDGER_HEADER}{stale_row}{ROW_B}"));
    let findings = ws.ledger_findings();
    assert!(
        findings
            .iter()
            .any(|f| f.file == "UNSAFE_LEDGER.md" && f.message.contains("read_renamed")),
        "stale construct must be flagged on its ledger row; got {findings:?}"
    );
}

/// The real workspace ledger stays in lockstep with the real unsafe
/// surface: the same engine pass CI runs reports nothing.
#[test]
fn workspace_ledger_is_in_sync() {
    let report = Engine::new(workspace_root())
        .expect("workspace config parses")
        .run()
        .expect("workspace scans");
    let ledger: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "unsafe-ledger-sync")
        .collect();
    assert!(ledger.is_empty(), "ledger out of sync: {ledger:?}");
}
