//! Fixture-based golden tests: one violating file per rule lives under
//! `fixtures/ws/`, and the engine's findings are compared against the
//! checked-in `expected.txt` snapshot. A final self-check runs the
//! engine over this repository itself and requires it to be clean.

use std::path::{Path, PathBuf};
use vaer_lint::{Engine, Level};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn run_fixture() -> vaer_lint::Report {
    Engine::new(fixture_root())
        .expect("fixture lints.toml parses")
        .run()
        .expect("fixture workspace scans")
}

/// Every rule must fire exactly where `expected.txt` says, and nowhere
/// else — additions, removals, and moved lines all fail this test.
#[test]
fn golden_findings_snapshot() {
    let report = run_fixture();
    let got: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            let level = match f.level {
                Level::Deny => "deny",
                Level::Warn => "warn",
                Level::Off => "off",
            };
            format!("{level} {} {}:{}", f.rule, f.file, f.line)
        })
        .collect();
    let expected_path = fixture_root().join("expected.txt");
    let expected: Vec<String> = std::fs::read_to_string(&expected_path)
        .expect("expected.txt exists")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(
        got, expected,
        "fixture findings diverged from expected.txt; if the change is \
         intentional, regenerate the snapshot"
    );
}

/// Every rule — token-level and semantic — plus both engine
/// pseudo-rules is exercised by at least one fixture finding.
#[test]
fn every_rule_has_a_fixture() {
    let report = run_fixture();
    for rule in vaer_lint::known_rule_ids() {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "rule `{rule}` has no fixture finding"
        );
    }
}

/// A marker with a reason suppresses its line; a reasonless one does not
/// (and is itself reported as `bare-allow`).
#[test]
fn allow_markers() {
    let report = run_fixture();
    // hash_iter.rs:12 carries `allow(det-hash-iter) -- …` → suppressed.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.ends_with("hash_iter.rs") && f.line == 12),
        "reasoned marker failed to suppress"
    );
    // panics.rs:22 carries a reasonless marker → both the original
    // finding and a bare-allow complaint.
    let at_22: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file.ends_with("panics.rs") && f.line == 22)
        .map(|f| f.rule)
        .collect();
    assert!(
        at_22.contains(&"panic"),
        "reasonless marker must not suppress"
    );
    assert!(
        at_22.contains(&"bare-allow"),
        "reasonless marker must be flagged"
    );
}

/// lints.toml overrides: `det-wallclock` is downgraded to warn, and the
/// exempted path produces nothing at all.
#[test]
fn config_overrides() {
    let report = run_fixture();
    let wallclock: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "det-wallclock")
        .collect();
    assert_eq!(wallclock.len(), 1);
    assert_eq!(wallclock[0].level, Level::Warn);
    assert!(
        !report.denials().any(|f| f.rule == "det-wallclock"),
        "warn-level findings must not gate --deny"
    );
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.ends_with("exempted.rs")),
        "exempt path prefix must silence the whole file"
    );
}

/// `# Panics` documentation and test files both silence the panic rule.
#[test]
fn panic_rule_escapes() {
    let report = run_fixture();
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.ends_with("panics.rs") && (13..=15).contains(&f.line)),
        "`# Panics`-documented fn must not be flagged"
    );
    assert!(
        !report.findings.iter().any(|f| f.file.contains("/tests/")),
        "test files are exempt from lib-only rules"
    );
}

/// The JSON export is valid line-delimited output with one meta line and
/// one line per finding, and is byte-stable across runs.
#[test]
fn jsonl_export_is_stable() {
    let a = run_fixture().jsonl();
    let b = run_fixture().jsonl();
    assert_eq!(a, b, "jsonl export must be deterministic");
    let lines: Vec<&str> = a.lines().collect();
    assert_eq!(lines.len(), 1 + run_fixture().findings.len());
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
}

/// The repository must hold itself to its own rules: zero deny-level
/// findings over the real workspace. This is the same gate CI runs via
/// `cargo run -p vaer-lint -- --deny`.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = Engine::new(root)
        .expect("workspace lints.toml parses")
        .run()
        .expect("workspace scans");
    let denials: Vec<String> = report
        .denials()
        .map(|f| format!("{} {}:{} {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        denials.is_empty(),
        "workspace has deny-level lint findings:\n{}",
        denials.join("\n")
    );
}
