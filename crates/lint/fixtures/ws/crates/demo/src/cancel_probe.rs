//! `cancel-probe-coverage`: `GoodStage` probes its loop through a
//! helper; `BadStage` spins with no probe on any path.

pub struct GoodStage;
pub struct BadStage;
pub struct Budget;

impl Budget {
    pub fn probe(&self) -> bool {
        true
    }
}

pub fn probed_helper(b: &Budget) {
    b.probe();
}

impl Stage for GoodStage {
    fn run(&self, b: &Budget) {
        for i in 0..1000 {
            let _ = i;
            probed_helper(b);
            let _ = i;
            let _ = i;
        }
    }
}

impl Stage for BadStage {
    fn run(&self, b: &Budget) {
        let _ = b;
        for i in 0..1000 {
            let _ = i;
            let _ = i;
            let _ = i;
            let _ = i;
        }
    }
}
