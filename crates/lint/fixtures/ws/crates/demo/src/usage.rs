//! failpoint-registry + obs-registry: one registered use of each, one
//! unregistered use of each.

pub fn failpoints() {
    vaer_fault::check("known.site");
    vaer_fault::check("unregistered.site");
}

pub fn metrics() {
    let c = counter("demo.widgets");
    let d = counter("undeclared.widgets");
    let _ = (c, d);
}

fn counter(name: &str) -> &str {
    name
}
