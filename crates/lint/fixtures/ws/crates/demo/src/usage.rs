//! failpoint-registry + obs-registry + degradation-registry: one
//! registered use of each kind (failpoint site, metric name, env knob,
//! degradation name), one unregistered use of each.

pub fn failpoints() {
    vaer_fault::check("known.site");
    vaer_fault::check("unregistered.site");
}

pub fn metrics() {
    let c = counter("demo.widgets");
    let d = counter("undeclared.widgets");
    let _ = (c, d);
}

pub fn knobs() {
    let registered = std::env::var("VAER_DEMO");
    let rogue = std::env::var("VAER_ROGUE");
    let _ = (registered, rogue);
}

fn counter(name: &str) -> &str {
    name
}

pub fn degradations() {
    let ok = degrade("degrade.used");
    let rogue = degrade("degrade.rogue");
    let _ = (ok, rogue);
}

fn degrade(name: &str) -> &str {
    name
}
