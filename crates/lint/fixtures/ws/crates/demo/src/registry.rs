//! Registries for the fixture workspace. `never.used` and `ghost` are
//! stale on purpose.

pub const FAILPOINTS: &[&str] = &["known.site", "never.used"];

pub const NAME_PREFIXES: &[&str] = &["demo", "ghost"];
