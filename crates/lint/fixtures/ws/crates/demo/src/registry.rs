//! Registries for the fixture workspace. `never.used`, `ghost`,
//! `VAER_PHANTOM`, and `degrade.stale` are stale on purpose.

pub const FAILPOINTS: &[&str] = &["known.site", "never.used"];

pub const NAME_PREFIXES: &[&str] = &["demo", "ghost"];

pub const ENV_KNOBS: &[&str] = &["VAER_DEMO", "VAER_PHANTOM"];

pub const DEGRADATIONS: &[&str] = &["degrade.stale", "degrade.used"];
