//! det-thread-spawn: raw spawn outside the shared runtime.

pub fn rogue() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}
