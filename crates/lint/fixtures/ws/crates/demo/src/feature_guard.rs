//! `feature-guard-dominance`: one call dominated by the detection
//! macro, one un-guarded call on the fallback path.

// SAFETY: compiled for avx2; every caller must detect the feature.
#[target_feature(enable = "avx2")]
pub unsafe fn kernel_avx2(x: u32) -> u32 {
    x + 1
}

pub fn dispatch(x: u32) -> u32 {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: avx2 detected on the line above.
        unsafe { kernel_avx2(x) }
    } else {
        // SAFETY: (wrong) nothing proves avx2 exists on this path.
        unsafe { kernel_avx2(x) }
    }
}
