//! `atomic-ordering-policy`: no `[atomics."..."]` section covers this
//! file, so even Relaxed is an undeclared-policy finding.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn count(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
