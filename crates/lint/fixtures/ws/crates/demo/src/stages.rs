//! `stage-registry` fixtures: `demo.stage` lives in a registered obs
//! namespace but has no failpoint; `rogue.stage` is in neither registry.
//! A fully registered stage list would be silent.

pub const STAGES: &[&str] = &["demo.stage", "rogue.stage"];
