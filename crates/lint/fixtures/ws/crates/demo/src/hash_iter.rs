//! det-hash-iter: one violation, one allowed site, one test-only site.

use std::collections::HashMap;

pub fn violating() -> Vec<(u32, u32)> {
    let m: HashMap<u32, u32> = HashMap::new();
    m.into_iter().collect()
}

pub fn allowed() -> usize {
    // vaer-lint: allow(det-hash-iter) -- lookup-only table, never iterated
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_side_sets_are_fine() {
        let s: HashSet<u32> = HashSet::new();
        assert!(s.is_empty());
    }
}
