//! safety-comment: SAFETY comment present and file listed in the ledger.

pub fn read_first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty()); // vaer-lint: allow(panic) -- caller contract, checked here
    // SAFETY: bounds checked on the line above; the pointer is derived
    // from a live slice.
    unsafe { *xs.as_ptr() }
}
