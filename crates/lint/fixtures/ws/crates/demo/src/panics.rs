//! panic: one violation, a `# Panics`-documented fn, an allowed site,
//! a reasonless marker (bare-allow), and a marker naming a bogus rule.

pub fn violating(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Divides.
///
/// # Panics
/// Panics when `b == 0`.
pub fn documented(a: u32, b: u32) -> u32 {
    assert!(b != 0, "division by zero");
    a / b
}

pub fn allowed(x: Option<u32>) -> u32 {
    x.unwrap() // vaer-lint: allow(panic) -- fixture invariant: caller always passes Some
}

pub fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap() // vaer-lint: allow(panic)
}

pub fn bogus_rule() -> u32 {
    // vaer-lint: allow(made-up-rule) -- this rule does not exist
    7
}
