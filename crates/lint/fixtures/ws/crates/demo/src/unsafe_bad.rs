//! safety-comment + no-static-mut: uncommented unsafe, mutable static.

static mut GLOBAL: u32 = 0;

pub fn naked_unsafe(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
