//! Exempted via lints.toml: the violation below must not be reported.

use std::collections::HashMap;

pub fn silenced_by_config() -> Vec<(u32, u32)> {
    let m: HashMap<u32, u32> = HashMap::new();
    m.into_iter().collect()
}
