//! det-wallclock: downgraded to warn by the fixture lints.toml.

pub fn timed() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
