//! `atomic-ordering-policy`: this file's declared policy allows only
//! Relaxed, so the SeqCst store violates it.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn seal(c: &AtomicU64) {
    c.store(1, Ordering::SeqCst);
}
