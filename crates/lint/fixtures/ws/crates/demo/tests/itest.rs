//! Test files are exempt from the panic and determinism rules.

use std::collections::HashMap;

#[test]
fn unwrap_is_fine_in_tests() {
    let m: HashMap<u32, u32> = HashMap::new();
    assert_eq!(m.get(&0).copied().unwrap_or(0), 0);
    let v: Option<u32> = Some(3);
    assert_eq!(v.unwrap(), 3);
}
