//! Item-tree parser on top of the token scanner.
//!
//! The semantic rules (feature-guard dominance, cancel-probe coverage,
//! ledger sync) need more structure than a flat token stream: which fn
//! a call sits in, which `#[target_feature]` set a fn enables, which
//! `if is_x86_feature_detected!(...)` block dominates a line, where a
//! loop body starts and ends. This module recovers exactly that much
//! structure — fn/impl nesting, attributes (including `#[cfg_attr]`-
//! wrapped and multi-line forms), call expressions, loop spans, and
//! feature-guard regions — in a single linear pass over the non-comment
//! tokens. It is deliberately not a full parser: unbalanced or exotic
//! input degrades to fewer facts, never to a panic.

use crate::scanner::{Tok, TokKind};

/// One parsed function item (including nested fns and trait default
/// methods with bodies; bodyless trait declarations are skipped).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing `}`.
    pub end_line: u32,
    /// Features from `#[target_feature(enable = "...")]`, split on `,`.
    /// `#[cfg_attr(..., target_feature(enable = "..."))]` counts too.
    pub features: Vec<String>,
    /// Whether the fn sits directly in an `impl <...> Stage for ...`
    /// block — the staged executor's entry points when named `run`.
    pub in_stage_impl: bool,
    /// Call expressions in the body: every `name(...)` / `.name(...)`.
    pub calls: Vec<Call>,
    /// `for`/`while`/`loop` body spans in the body (nested included).
    pub loops: Vec<LoopSpan>,
}

/// A call expression site (callee name only — resolution is the call
/// graph's job).
#[derive(Clone, Debug)]
pub struct Call {
    /// Last path segment of the callee (`foo` for `a::b::foo(...)`).
    pub name: String,
    /// 1-based line of the callee token.
    pub line: u32,
}

/// One loop body span.
#[derive(Clone, Debug)]
pub struct LoopSpan {
    /// Line of the loop keyword.
    pub line: u32,
    /// Line of the body's closing `}`.
    pub end_line: u32,
}

/// A region dominated by an `if` whose condition checks CPU features:
/// code between the braces runs only when every listed feature was
/// detected at runtime.
#[derive(Clone, Debug)]
pub struct GuardRegion {
    /// Features named by `is_x86_feature_detected!("...")` calls in the
    /// condition (several checks `&&`-ed together all apply).
    pub features: Vec<String>,
    /// First line of the guarded block (the `if` line).
    pub start: u32,
    /// Line of the block's closing `}`.
    pub end: u32,
}

/// The per-file item tree.
#[derive(Clone, Debug, Default)]
pub struct ItemTree {
    /// Every fn with a body, in source order.
    pub fns: Vec<FnItem>,
    /// Lines carrying an `unsafe` token (blocks, fns, impls).
    pub unsafe_lines: Vec<u32>,
    /// Lines of `#[target_feature]` attributes (direct or `cfg_attr`).
    pub target_feature_lines: Vec<u32>,
    /// Feature-guarded block spans.
    pub guards: Vec<GuardRegion>,
}

impl ItemTree {
    /// Whether the file contains any unsafe construct the ledger must
    /// list: an `unsafe` token or a `#[target_feature]` attribute.
    pub fn has_unsafe_surface(&self) -> bool {
        !self.unsafe_lines.is_empty() || !self.target_feature_lines.is_empty()
    }

    /// Union of guard features dominating `line`.
    pub fn guard_features_at(&self, line: u32) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for g in &self.guards {
            if g.start <= line && line <= g.end {
                for f in &g.features {
                    if !out.contains(&f.as_str()) {
                        out.push(f);
                    }
                }
            }
        }
        out
    }
}

/// Keywords that look like `ident (` but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "loop", "match", "return", "fn", "unsafe", "move", "in", "as", "let",
    "else", "impl", "pub", "use", "mod", "struct", "enum", "trait", "where", "break", "continue",
    "ref", "mut", "dyn", "box", "await", "async", "const", "static", "type", "crate", "super",
];

/// Qualifier idents that may sit between an attribute and its `fn`.
const FN_QUALIFIERS: &[&str] = &["pub", "crate", "unsafe", "const", "async", "extern", "in"];

#[derive(Clone, Copy, Debug, PartialEq)]
enum PendingKind {
    Impl { is_stage: bool, saw_for: bool },
    Fn { fn_idx: usize },
    Loop { line: u32 },
    If { has_features: bool },
}

#[derive(Debug)]
struct Pending {
    kind: PendingKind,
    /// `(`/`[` depth at which the opener appeared; the body `{` is the
    /// first one seen back at this depth (closure braces inside header
    /// call arguments sit at a deeper paren depth).
    paren_depth: i32,
    /// Features collected from the condition (If only).
    features: Vec<String>,
}

#[derive(Debug)]
enum Frame {
    /// Plain `{ ... }` (blocks, structs, matches, closures, modules).
    Block,
    /// An `impl` block; `is_stage` when the header read `... Stage for ...`.
    Impl { is_stage: bool },
    /// A fn body; index into `ItemTree::fns`.
    Fn { fn_idx: usize },
    /// A loop body; `(fn_idx, loop_idx)` into the owning fn's loops.
    Loop { fn_idx: usize, loop_idx: usize },
    /// A feature-guarded `if` body; index into `ItemTree::guards`.
    Guard { guard_idx: usize },
}

/// Parses the token stream into an item tree. Comments are skipped;
/// strings/chars are opaque (an `unsafe` inside `r#"..."#` is data, not
/// a site).
pub fn parse(toks: &[Tok]) -> ItemTree {
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let mut tree = ItemTree::default();
    let mut stack: Vec<Frame> = Vec::new();
    let mut fn_stack: Vec<usize> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut pending_attrs: Vec<Vec<&Tok>> = Vec::new();
    let mut paren_depth: i32 = 0;
    let mut last_line = 0u32;

    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        last_line = t.line;

        // Attributes: consume `#[ ... ]` / `#![ ... ]` wholesale.
        if t.is_punct("#") && code.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let mut j = i + 2;
            let mut depth = 1i32;
            let start = j;
            while j < code.len() && depth > 0 {
                if code[j].is_punct("[") {
                    depth += 1;
                } else if code[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            let attr: Vec<&Tok> = code[start..j.saturating_sub(1)].to_vec();
            if attr_target_features(&attr).is_some() {
                tree.target_feature_lines.push(t.line);
            }
            pending_attrs.push(attr);
            i = j;
            continue;
        }
        if t.is_punct("#")
            && code.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && code.get(i + 2).is_some_and(|n| n.is_punct("["))
        {
            // Inner attribute `#![...]`: skip, attaches to nothing here.
            let mut j = i + 3;
            let mut depth = 1i32;
            while j < code.len() && depth > 0 {
                if code[j].is_punct("[") {
                    depth += 1;
                } else if code[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            i = j;
            continue;
        }

        // Track paren depth for pending-header resolution.
        match t.text.as_str() {
            "(" | "[" if t.kind == TokKind::Punct => paren_depth += 1,
            ")" | "]" if t.kind == TokKind::Punct => paren_depth -= 1,
            _ => {}
        }

        // Feed header-state machines while a header is pending.
        if let Some(p) = pending.as_mut() {
            match &mut p.kind {
                PendingKind::Impl { is_stage, saw_for } => {
                    if t.is_ident("for") {
                        *saw_for = true;
                    } else if t.is_ident("Stage") && !*saw_for {
                        *is_stage = true;
                    }
                }
                PendingKind::If { has_features }
                    if t.kind == TokKind::Str
                        && i >= 3
                        && code[i - 1].is_punct("(")
                        && code[i - 2].is_punct("!")
                        && code[i - 3].is_ident("is_x86_feature_detected") =>
                {
                    p.features.push(t.text.clone());
                    *has_features = true;
                }
                _ => {}
            }
            // A `;` at header depth aborts the pending item (trait fn
            // declarations, stray openers).
            if t.is_punct(";") && paren_depth <= p.paren_depth {
                if let PendingKind::Fn { fn_idx } = p.kind {
                    // Bodyless declaration: keep the item with an empty
                    // span so name-level facts (features) survive.
                    tree.fns[fn_idx].end_line = t.line;
                }
                pending = None;
                i += 1;
                continue;
            }
        }

        match t.kind {
            TokKind::Ident => {
                match t.text.as_str() {
                    "unsafe" => tree.unsafe_lines.push(t.line),
                    "impl" if pending.is_none() => {
                        pending = Some(Pending {
                            kind: PendingKind::Impl {
                                is_stage: false,
                                saw_for: false,
                            },
                            paren_depth,
                            features: Vec::new(),
                        });
                    }
                    "fn" if pending.is_none() => {
                        if let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                            let features = pending_attrs
                                .iter()
                                .filter_map(|a| attr_target_features(a))
                                .flatten()
                                .collect();
                            let in_stage_impl = stack
                                .iter()
                                .rev()
                                .find_map(|f| match f {
                                    Frame::Impl { is_stage } => Some(*is_stage),
                                    _ => None,
                                })
                                .unwrap_or(false);
                            tree.fns.push(FnItem {
                                name: name.text.clone(),
                                line: t.line,
                                end_line: t.line,
                                features,
                                in_stage_impl,
                                calls: Vec::new(),
                                loops: Vec::new(),
                            });
                            pending = Some(Pending {
                                kind: PendingKind::Fn {
                                    fn_idx: tree.fns.len() - 1,
                                },
                                paren_depth,
                                features: Vec::new(),
                            });
                        }
                    }
                    "for" | "while" | "loop"
                        if pending.is_none()
                            && !fn_stack.is_empty()
                            // `for<'a>` in types is not a loop.
                            && !(t.text == "for"
                                && code.get(i + 1).is_some_and(|n| n.is_punct("<"))) =>
                    {
                        pending = Some(Pending {
                            kind: PendingKind::Loop { line: t.line },
                            paren_depth,
                            features: Vec::new(),
                        });
                    }
                    "if" if pending.is_none() => {
                        pending = Some(Pending {
                            kind: PendingKind::If {
                                has_features: false,
                            },
                            paren_depth,
                            features: Vec::new(),
                        });
                    }
                    name => {
                        // Call expression: `ident (` that isn't a keyword
                        // or a definition. Macros (`ident !(`) are not
                        // graph edges.
                        if code.get(i + 1).is_some_and(|n| n.is_punct("("))
                            && !NON_CALL_KEYWORDS.contains(&name)
                            && !(i >= 1 && code[i - 1].is_ident("fn"))
                        {
                            if let Some(&fn_idx) = fn_stack.last() {
                                tree.fns[fn_idx].calls.push(Call {
                                    name: name.to_string(),
                                    line: t.line,
                                });
                            }
                        }
                    }
                }
                // Any ident other than a qualifier detaches pending
                // attributes from a later `fn`.
                if !FN_QUALIFIERS.contains(&t.text.as_str()) && t.text != "fn" && pending.is_none()
                {
                    pending_attrs.clear();
                }
            }
            TokKind::Punct if t.text == "{" => {
                let frame = match pending.take() {
                    Some(p) if paren_depth <= p.paren_depth => match p.kind {
                        PendingKind::Impl { is_stage, .. } => {
                            pending_attrs.clear();
                            Frame::Impl { is_stage }
                        }
                        PendingKind::Fn { fn_idx } => {
                            fn_stack.push(fn_idx);
                            pending_attrs.clear();
                            Frame::Fn { fn_idx }
                        }
                        PendingKind::Loop { line } => {
                            let fn_idx = *fn_stack.last().unwrap_or(&0);
                            tree.fns[fn_idx].loops.push(LoopSpan {
                                line,
                                end_line: line,
                            });
                            Frame::Loop {
                                fn_idx,
                                loop_idx: tree.fns[fn_idx].loops.len() - 1,
                            }
                        }
                        PendingKind::If { has_features } => {
                            if has_features {
                                tree.guards.push(GuardRegion {
                                    features: p.features,
                                    start: t.line,
                                    end: t.line,
                                });
                                Frame::Guard {
                                    guard_idx: tree.guards.len() - 1,
                                }
                            } else {
                                Frame::Block
                            }
                        }
                    },
                    Some(p) => {
                        // Closure brace inside header args; keep waiting.
                        pending = Some(p);
                        Frame::Block
                    }
                    None => Frame::Block,
                };
                stack.push(frame);
            }
            TokKind::Punct if t.text == "}" => match stack.pop() {
                Some(Frame::Fn { fn_idx }) => {
                    tree.fns[fn_idx].end_line = t.line;
                    fn_stack.pop();
                }
                Some(Frame::Loop { fn_idx, loop_idx }) => {
                    tree.fns[fn_idx].loops[loop_idx].end_line = t.line;
                }
                Some(Frame::Guard { guard_idx }) => {
                    tree.guards[guard_idx].end = t.line;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }

    // Unbalanced input: close whatever is still open at the last line.
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Fn { fn_idx } => tree.fns[fn_idx].end_line = last_line,
            Frame::Loop { fn_idx, loop_idx } => {
                tree.fns[fn_idx].loops[loop_idx].end_line = last_line;
            }
            Frame::Guard { guard_idx } => tree.guards[guard_idx].end = last_line,
            _ => {}
        }
    }
    tree
}

/// If the attribute token list is (or wraps, via `cfg_attr`) a
/// `target_feature(enable = "...")`, returns the enabled features.
fn attr_target_features(attr: &[&Tok]) -> Option<Vec<String>> {
    for (i, t) in attr.iter().enumerate() {
        if !t.is_ident("target_feature") {
            continue;
        }
        // Expect `( ... enable = "features" ... )`.
        let mut j = i + 1;
        if !attr.get(j).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let mut features = Vec::new();
        while j < attr.len() && !attr[j].is_punct(")") {
            if attr[j].is_ident("enable")
                && attr.get(j + 1).is_some_and(|n| n.is_punct("="))
                && attr.get(j + 2).is_some_and(|n| n.kind == TokKind::Str)
            {
                features.extend(
                    attr[j + 2]
                        .text
                        .split(',')
                        .map(|f| f.trim().to_string())
                        .filter(|f| !f.is_empty()),
                );
                j += 2;
            }
            j += 1;
        }
        if !features.is_empty() {
            return Some(features);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn tree(src: &str) -> ItemTree {
        parse(&scan(src))
    }

    #[test]
    fn fn_items_record_name_span_and_calls() {
        let src = "fn outer() {\n    helper(1);\n    x.method(2);\n}\nfn helper(_x: u32) {}\n";
        let t = tree(src);
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].name, "outer");
        assert_eq!(t.fns[0].line, 1);
        assert_eq!(t.fns[0].end_line, 4);
        let calls: Vec<&str> = t.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, vec!["helper", "method"]);
        assert!(t.fns[1].calls.is_empty());
    }

    #[test]
    fn target_feature_attrs_direct_and_cfg_attr_wrapped() {
        let src = "#[target_feature(enable = \"avx2\")]\nfn a() {}\n\
                   #[cfg_attr(target_arch = \"x86_64\", target_feature(enable = \"avx512f,avx512vnni\"))]\nfn b() {}\n\
                   #[inline]\nfn c() {}\n";
        let t = tree(src);
        assert_eq!(t.fns[0].features, vec!["avx2"]);
        assert_eq!(t.fns[1].features, vec!["avx512f", "avx512vnni"]);
        assert!(t.fns[2].features.is_empty());
        assert_eq!(t.target_feature_lines.len(), 2);
    }

    #[test]
    fn multi_line_attribute_arguments_parse() {
        let src = "#[target_feature(\n    enable = \"avx2\"\n)]\nfn a() {}\n";
        let t = tree(src);
        assert_eq!(t.fns[0].features, vec!["avx2"]);
    }

    #[test]
    fn unsafe_in_nested_raw_strings_is_not_a_site() {
        let src = "fn f() -> &'static str {\n    r#\"unsafe { ignore() } \"quoted\" \"#\n}\n\
                   fn g() { let _ = r##\"also unsafe r#\"nested\"# here\"##; }\n";
        let t = tree(src);
        assert!(t.unsafe_lines.is_empty(), "{:?}", t.unsafe_lines);
        assert!(!t.has_unsafe_surface());
        // A real one still counts.
        let t2 = tree("fn h(p: *const u8) -> u8 { unsafe { *p } }");
        assert_eq!(t2.unsafe_lines, vec![1]);
    }

    #[test]
    fn stage_impl_run_fns_are_flagged() {
        let src = "struct S;\nimpl Stage for S {\n    fn run(&self) {}\n    fn save(&self) {}\n}\n\
                   impl S {\n    fn run_inherent(&self) {}\n}\n\
                   impl BlockStage {\n    fn run(&self) {}\n}\n";
        let t = tree(src);
        let by_name = |n: &str| t.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("run").in_stage_impl);
        assert!(by_name("save").in_stage_impl);
        assert!(!by_name("run_inherent").in_stage_impl);
        // `BlockStage` is not the exact trait ident `Stage`.
        assert!(!t.fns.iter().filter(|f| f.line > 8).any(|f| f.in_stage_impl));
    }

    #[test]
    fn generic_stage_impl_headers_are_detected() {
        let src =
            "impl<'c, 'p> Stage for BlockStage<'c, 'p> {\n    fn run(&mut self) { probe(); }\n}\n";
        let t = tree(src);
        assert!(t.fns[0].in_stage_impl);
        assert_eq!(t.fns[0].calls[0].name, "probe");
    }

    #[test]
    fn loop_spans_cover_for_while_loop_but_not_hrtb() {
        let src = "fn f(v: &[u32]) {\n    for x in v {\n        touch(x);\n    }\n    while v.len() > 0 {\n        break;\n    }\n    loop {\n        break;\n    }\n    let _c: Box<dyn for<'a> Fn(&'a u32)> = Box::new(|_| ());\n}\n";
        let t = tree(src);
        let spans: Vec<(u32, u32)> = t.fns[0]
            .loops
            .iter()
            .map(|l| (l.line, l.end_line))
            .collect();
        assert_eq!(spans, vec![(2, 4), (5, 7), (8, 10)]);
    }

    #[test]
    fn guard_regions_collect_exact_feature_sets() {
        let src = "fn f() {\n    if std::arch::is_x86_feature_detected!(\"avx512f\")\n        && std::arch::is_x86_feature_detected!(\"avx512vnni\")\n    {\n        fast();\n    }\n    if is_x86_feature_detected!(\"avx2\") {\n        medium();\n    } else {\n        slow();\n    }\n}\n";
        let t = tree(src);
        assert_eq!(t.guards.len(), 2);
        assert_eq!(t.guards[0].features, vec!["avx512f", "avx512vnni"]);
        assert_eq!(t.guards[1].features, vec!["avx2"]);
        // Line 5 is inside the first guard; line 10 (the else) is not.
        assert_eq!(t.guard_features_at(5), vec!["avx512f", "avx512vnni"]);
        assert!(t.guard_features_at(10).is_empty());
    }

    #[test]
    fn calls_in_loop_headers_and_closures_attach_to_the_fn() {
        let src = "fn f(v: &[u32]) {\n    for x in v.iter().map(|y| { deep(y) }) {\n        let _ = x;\n    }\n}\nfn deep(_y: &u32) -> u32 { 0 }\n";
        let t = tree(src);
        let calls: Vec<&str> = t.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(calls.contains(&"deep"), "{calls:?}");
        assert_eq!(t.fns[0].loops.len(), 1);
        assert_eq!(t.fns[0].loops[0].end_line, 4);
    }

    #[test]
    fn trait_declarations_without_bodies_are_kept_bodyless() {
        let src = "trait Stage {\n    fn run(&self);\n    fn save(&self) {}\n}\n";
        let t = tree(src);
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].end_line, 2, "declaration spans its own line");
    }
}
