//! Per-file facts derived from the token stream: which lines are test
//! code, where `// vaer-lint: allow(...)` markers sit, and which lines
//! fall inside functions documented with a `# Panics` section.

use crate::scanner::{scan, Tok, TokKind};
use crate::syntax::{self, ItemTree};
use std::path::PathBuf;

/// How a file entered the workspace walk. Rules use this to decide
/// whether their invariant applies (most only guard library code).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A crate's `src/` (or the workspace root `src/`).
    Lib,
    /// Integration tests (`tests/` at any level).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// An inline suppression marker: `// vaer-lint: allow(rule) -- reason`.
#[derive(Clone, Debug)]
pub struct AllowMarker {
    /// Rule the marker suppresses.
    pub rule: String,
    /// Justification after `--` (empty when the author omitted one —
    /// which the engine reports as its own finding).
    pub reason: String,
    /// Line the marker sits on. It suppresses findings on this line and
    /// the next, so it works both trailing and as a line above.
    pub line: u32,
}

/// A scanned source file plus the line-level facts rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute (or walk-root-relative) path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, with `/` separators —
    /// the form used in reports, configs, and the unsafe ledger.
    pub rel: String,
    /// Kind by directory.
    pub kind: FileKind,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Item tree: fns, calls, loops, attributes, guard regions.
    pub tree: ItemTree,
    /// Raw source text (the ledger-sync rule greps construct names).
    pub src: String,
    /// Total number of lines.
    pub num_lines: u32,
    /// `true` for each 1-based line inside a `#[cfg(test)]` item.
    test_lines: Vec<bool>,
    /// `true` for each 1-based line inside a fn whose doc comment has a
    /// `# Panics` section.
    panics_doc_lines: Vec<bool>,
    /// Inline suppression markers.
    pub allows: Vec<AllowMarker>,
}

impl SourceFile {
    /// Scans `src` into a file model.
    pub fn parse(path: PathBuf, rel: String, kind: FileKind, src: &str) -> Self {
        let toks = scan(src);
        let num_lines = src.lines().count() as u32;
        let test_lines = mark_cfg_test_regions(&toks, num_lines);
        let panics_doc_lines = mark_panics_doc_fns(&toks, num_lines);
        let allows = collect_allow_markers(&toks);
        let tree = syntax::parse(&toks);
        Self {
            path,
            rel,
            kind,
            toks,
            tree,
            src: src.to_string(),
            num_lines,
            test_lines,
            panics_doc_lines,
            allows,
        }
    }

    /// Whether the 1-based line is test code: the whole file for
    /// `tests/` files, or a `#[cfg(test)]` region in library code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.kind == FileKind::Test || *self.test_lines.get(line as usize).unwrap_or(&false)
    }

    /// Whether the line is inside a fn documented with `# Panics`.
    pub fn in_panics_documented_fn(&self, line: u32) -> bool {
        *self.panics_doc_lines.get(line as usize).unwrap_or(&false)
    }

    /// The allow marker (if any) covering `line` for `rule`.
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&AllowMarker> {
        self.allows
            .iter()
            .find(|m| m.rule == rule && (m.line == line || m.line + 1 == line))
    }
}

/// Marks every line covered by an item annotated `#[cfg(test)]`: the
/// attribute's line through the matching close of the item's brace block.
fn mark_cfg_test_regions(toks: &[Tok], num_lines: u32) -> Vec<bool> {
    let mut marked = vec![false; num_lines as usize + 2];
    let code: Vec<(usize, &Tok)> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut k = 0usize;
    while k + 4 < code.len() {
        let (_, a) = code[k];
        // `#[cfg(test)]` or `#[cfg(all(test, ...))]` — require `#`, `[`,
        // `cfg`, then a `test` ident before the closing `]`.
        if a.is_punct("#") && code[k + 1].1.is_punct("[") && code[k + 2].1.is_ident("cfg") {
            let mut j = k + 3;
            let mut depth = 0i32;
            let mut saw_test = false;
            while j < code.len() {
                let t = code[j].1;
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if t.is_ident("test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_test && j < code.len() {
                // Find the item's block: the first `{` at brace depth 0
                // after the attribute (skipping further attributes), then
                // its matching `}`. Items ending in `;` before any `{`
                // (e.g. `#[cfg(test)] use …;`) cover only their own lines.
                let start_line = a.line;
                let mut m = j + 1;
                let mut open = None;
                while m < code.len() {
                    let t = code[m].1;
                    if t.is_punct("{") {
                        open = Some(m);
                        break;
                    }
                    if t.is_punct(";") {
                        break;
                    }
                    m += 1;
                }
                let end_line = match open {
                    Some(o) => matching_close_line(&code, o),
                    None => code.get(m).map_or(start_line, |(_, t)| t.line),
                };
                for l in start_line..=end_line.min(num_lines) {
                    marked[l as usize] = true;
                }
                k = j;
                continue;
            }
        }
        k += 1;
    }
    marked
}

/// Line of the `}` matching the `{` at `code[open]` (falls back to the
/// last token's line on unbalanced input).
fn matching_close_line(code: &[(usize, &Tok)], open: usize) -> u32 {
    let mut depth = 0i32;
    for (_, t) in code.iter().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return t.line;
            }
        }
    }
    code.last().map_or(0, |(_, t)| t.line)
}

/// Marks every line inside a `fn` whose preceding doc comment contains a
/// `# Panics` section (the documented-invariant escape hatch of the
/// panic rule).
fn mark_panics_doc_fns(toks: &[Tok], num_lines: u32) -> Vec<bool> {
    let mut marked = vec![false; num_lines as usize + 2];
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        // Walk back over attributes and doc comments contiguous with the
        // fn (visibility/qualifier idents like `pub`, `unsafe`, `const`,
        // `extern`, string ABIs, and attribute brackets may intervene).
        let mut has_panics_doc = false;
        let mut j = i;
        let mut bracket_depth = 0i32;
        while j > 0 {
            j -= 1;
            let p = &toks[j];
            match p.kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    // Inner docs (`//!`, `/*! … */`) document the enclosing
                    // module, not the fn that happens to follow them. The
                    // scanner strips the comment opener, so they start `!`.
                    if !p.text.starts_with('!') && p.text.contains("# Panics") {
                        has_panics_doc = true;
                    }
                }
                TokKind::Ident | TokKind::Str | TokKind::Lifetime | TokKind::Num => {
                    // Part of an attribute or a qualifier; only keep
                    // walking while plausibly still in the fn's header
                    // prelude (qualifiers or attribute contents).
                    if bracket_depth == 0
                        && !matches!(
                            p.text.as_str(),
                            "pub" | "crate" | "unsafe" | "const" | "async" | "extern" | "in"
                        )
                        && p.kind == TokKind::Ident
                    {
                        break;
                    }
                }
                TokKind::Punct => match p.text.as_str() {
                    "]" => bracket_depth += 1,
                    "[" => bracket_depth -= 1,
                    "#" | "(" | ")" | "=" | "," | ":" => {}
                    _ if bracket_depth > 0 => {}
                    _ => break,
                },
                TokKind::Char => break,
            }
        }
        if !has_panics_doc {
            continue;
        }
        // Find the body block and mark its span.
        let code: Vec<(usize, &Tok)> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .collect();
        let Some(fn_pos) = code.iter().position(|(idx, _)| *idx == i) else {
            continue;
        };
        let mut m = fn_pos + 1;
        let mut open = None;
        // Track paren/bracket depth so a `;` inside an array type in the
        // signature (`[[i32; N]; M]`) is not mistaken for a bodyless
        // trait-method declaration.
        let mut depth = 0i32;
        while m < code.len() {
            let t = code[m].1;
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                open = Some(m);
                break;
            } else if t.is_punct(";") && depth == 0 {
                break; // trait method declaration, no body
            }
            m += 1;
        }
        if let Some(o) = open {
            let end_line = matching_close_line(&code, o);
            for l in t.line..=end_line.min(num_lines) {
                marked[l as usize] = true;
            }
        }
    }
    marked
}

/// Extracts `vaer-lint: allow(rule)` / `vaer-lint: allow(rule) -- reason`
/// markers from comment tokens.
fn collect_allow_markers(toks: &[Tok]) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let mut rest = t.text.as_str();
        while let Some(pos) = rest.find("vaer-lint:") {
            rest = &rest[pos + "vaer-lint:".len()..];
            let trimmed = rest.trim_start();
            let Some(args) = trimmed.strip_prefix("allow(") else {
                continue;
            };
            let Some(close) = args.find(')') else {
                continue;
            };
            let rule = args[..close].trim().to_string();
            let after = &args[close + 1..];
            let reason = after
                .trim_start()
                .strip_prefix("--")
                .map(|r| r.trim().to_string())
                .unwrap_or_default();
            out.push(AllowMarker {
                rule,
                reason,
                line: t.line,
            });
            rest = after;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), "x.rs".into(), FileKind::Lib, src)
    }

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let f = file(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn panics_doc_covers_fn_body() {
        let src = "/// Does things.\n///\n/// # Panics\n/// When x.\npub fn f() {\n  panic!();\n}\nfn g() {\n  panic!();\n}\n";
        let f = file(src);
        assert!(f.in_panics_documented_fn(6));
        assert!(!f.in_panics_documented_fn(9));
    }

    #[test]
    fn panics_doc_survives_semicolons_in_array_types() {
        // `[[i32; 4]; 2]` puts `;` tokens in the signature; they must
        // not be read as a bodyless trait-method declaration.
        let src = "/// # Panics\n/// When y.\nfn f(acc: &mut [[i32; 4]; 2]) {\n  assert!(acc[0][0] == 0);\n}\n";
        let f = file(src);
        assert!(f.in_panics_documented_fn(4));
    }

    #[test]
    fn allow_markers_parse_rule_and_reason() {
        let src = "let x = m.get(k).unwrap(); // vaer-lint: allow(panic) -- key inserted above\n";
        let f = file(src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "panic");
        assert_eq!(f.allows[0].reason, "key inserted above");
        assert!(f.allow_for("panic", 1).is_some());
        assert!(f.allow_for("panic", 2).is_some(), "marker covers next line");
        assert!(f.allow_for("panic", 3).is_none());
    }

    #[test]
    fn test_files_are_test_everywhere() {
        let f = SourceFile::parse(
            PathBuf::from("t.rs"),
            "t.rs".into(),
            FileKind::Test,
            "fn a() {}\n",
        );
        assert!(f.is_test_line(1));
    }
}
