//! Findings and report rendering: a human-readable table in the style of
//! `vaer_obs::ObsSink::summary()`, and machine-readable JSONL matching
//! the obs export convention (one self-describing object per line).

use crate::callgraph::GraphSummary;
use crate::config::Level;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `det-hash-iter`.
    pub rule: &'static str,
    /// Severity after config is applied.
    pub level: Level,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do about it.
    pub message: String,
}

/// The outcome of a lint run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Call-graph aggregates (published as a CI artifact via `--graph`).
    pub graph: GraphSummary,
}

impl Report {
    /// Findings at deny level.
    pub fn denials(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.level == Level::Deny)
    }

    /// Human-readable table.
    pub fn human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "vaer-lint: {} file(s) scanned, {} finding(s)\n",
            self.files_scanned,
            self.findings.len()
        ));
        if self.findings.is_empty() {
            out.push_str("  clean — every invariant holds\n");
            return out;
        }
        out.push_str("-- findings ----------------------------------------------------\n");
        for f in &self.findings {
            out.push_str(&format!(
                "  {:<4} {:<18} {}:{}\n       {}\n",
                f.level.name(),
                f.rule,
                f.file,
                f.line,
                f.message
            ));
        }
        out.push_str("-- by rule -----------------------------------------------------\n");
        let mut rules: Vec<&'static str> = Vec::new();
        for f in &self.findings {
            if !rules.contains(&f.rule) {
                rules.push(f.rule);
            }
        }
        rules.sort_unstable();
        for rule in rules {
            let count = self.findings.iter().filter(|f| f.rule == rule).count();
            out.push_str(&format!("  {rule:<48} {count:>12}\n"));
        }
        out
    }

    /// JSONL: a `meta` line, then one `finding` object per line.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        let denials = self.denials().count();
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"files_scanned\":{},\"findings\":{},\"denials\":{}}}\n",
            self.files_scanned,
            self.findings.len(),
            denials
        ));
        for f in &self.findings {
            out.push_str(&format!(
                "{{\"type\":\"finding\",\"rule\":\"{}\",\"level\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}\n",
                escape(f.rule),
                f.level.name(),
                escape(&f.file),
                f.line,
                escape(&f.message)
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (mirrors `vaer_obs::json::escape`).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            findings: vec![Finding {
                rule: "panic",
                level: Level::Deny,
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "bare `unwrap()` in library code".into(),
            }],
            files_scanned: 3,
            graph: GraphSummary::default(),
        }
    }

    #[test]
    fn human_table_lists_findings_and_rule_counts() {
        let h = report().human();
        assert!(h.contains("crates/x/src/lib.rs:7"));
        assert!(h.contains("deny"));
        assert!(h.contains("-- by rule"));
    }

    #[test]
    fn jsonl_is_line_per_finding_with_meta() {
        let j = report().jsonl();
        let lines: Vec<&str> = j.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[1].contains("\"rule\":\"panic\""));
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
