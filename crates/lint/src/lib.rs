//! `vaer-lint` — dependency-free static analysis for the VAER workspace.
//!
//! VAER's guarantees (bit-identical parallel gradients, bit-identical
//! kill-and-resume, byte-stable exports) hold only while every crate
//! obeys a handful of source-level invariants: no hash-order iteration
//! into serialized paths, no stray wall-clock reads, no unaudited
//! `unsafe`, no undocumented panics, and registries that actually cover
//! the failpoint / telemetry surface. This crate encodes those
//! invariants as rules over a line-aware token scan of the workspace.
//! On top of the token stream sits a lightweight analysis layer — an
//! item-tree parser (`syntax`) and an intra-workspace call graph
//! (`callgraph`) — powering the semantic rules: feature-guard
//! dominance, unsafe-ledger sync, the atomic-ordering policy table, and
//! cancel-probe coverage. The toolbox:
//!
//! - per-rule config, path exemptions, and the `[atomics."<prefix>"]`
//!   policy table in `lints.toml`,
//! - inline suppressions: `// vaer-lint: allow(<rule>) -- <reason>`
//!   (the reason is mandatory; a bare marker suppresses nothing and is
//!   itself reported),
//! - human-table and JSONL reports (`--format json`), plus a call-graph
//!   summary artifact (`--graph <path>`),
//! - a `--deny` CI gate that exits nonzero on any deny-level finding.
//!
//! Run it as `cargo run -p vaer-lint -- --deny` from the workspace root.
//! The rule catalogue and suppression policy are documented in
//! DESIGN.md §11; the analysis layer in DESIGN.md §16.

mod callgraph;
mod config;
mod engine;
mod report;
mod rules;
mod scanner;
mod semantic;
mod source;
mod syntax;

pub use callgraph::{CallGraph, GraphSummary, Node, PROBE_NAMES};
pub use config::{AtomicsPolicy, Config, Level, RuleConfig, ATOMIC_ORDERINGS};
pub use engine::Engine;
pub use report::{Finding, Report};
pub use rules::{all_rules, known_rule_ids, Context, LedgerRow, Rule};
pub use scanner::{scan, Tok, TokKind};
pub use source::{AllowMarker, FileKind, SourceFile};
pub use syntax::{Call, FnItem, GuardRegion, ItemTree, LoopSpan};
