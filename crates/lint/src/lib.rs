//! `vaer-lint` — dependency-free static analysis for the VAER workspace.
//!
//! VAER's guarantees (bit-identical parallel gradients, bit-identical
//! kill-and-resume, byte-stable exports) hold only while every crate
//! obeys a handful of source-level invariants: no hash-order iteration
//! into serialized paths, no stray wall-clock reads, no unaudited
//! `unsafe`, no undocumented panics, and registries that actually cover
//! the failpoint / telemetry surface. This crate encodes those
//! invariants as rules over a line-aware token scan of the workspace,
//! with:
//!
//! - per-rule config + path exemptions in `lints.toml`,
//! - inline suppressions: `// vaer-lint: allow(<rule>) -- <reason>`
//!   (the reason is mandatory; a bare marker suppresses nothing and is
//!   itself reported),
//! - human-table and JSONL reports (`--format json`),
//! - a `--deny` CI gate that exits nonzero on any deny-level finding.
//!
//! Run it as `cargo run -p vaer-lint -- --deny` from the workspace root.
//! The rule catalogue and suppression policy are documented in
//! DESIGN.md §11.

mod config;
mod engine;
mod report;
mod rules;
mod scanner;
mod source;

pub use config::{Config, Level, RuleConfig};
pub use engine::Engine;
pub use report::{Finding, Report};
pub use rules::{all_rules, known_rule_ids, Context, Rule};
pub use scanner::{scan, Tok, TokKind};
pub use source::{AllowMarker, FileKind, SourceFile};
