//! Workspace walk + rule driving + suppression/level application.

use crate::callgraph::{CallGraph, GraphSummary};
use crate::config::{Config, Level};
use crate::report::{Finding, Report};
use crate::rules::{all_rules, known_rule_ids, Context, LedgerRow, DEFAULT_MIN_LOOP_LINES};
use crate::scanner::TokKind;
use crate::semantic;
use crate::source::{FileKind, SourceFile};
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[
    "target",
    "target-test",
    "vendor",
    "fixtures",
    ".git",
    "node_modules",
];

/// Top-level directories scanned under the workspace root.
const WALK_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// A configured lint run over one workspace root.
pub struct Engine {
    root: PathBuf,
    config: Config,
}

impl Engine {
    /// Opens a workspace, loading `<root>/lints.toml` when present.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, String> {
        let root = root.into();
        let config_path = root.join("lints.toml");
        let config = if config_path.is_file() {
            let text = std::fs::read_to_string(&config_path)
                .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
            Config::parse(&text, &known_rule_ids())?
        } else {
            Config::default()
        };
        Ok(Self { root, config })
    }

    /// Replaces the config (used by fixture tests to exercise overrides).
    pub fn with_config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Runs every rule over every workspace source file.
    pub fn run(&self) -> io::Result<Report> {
        let files = self.load_files()?;
        let ctx = build_context(&self.root, &files, &self.config);
        let rules = all_rules();
        let mut findings = Vec::new();
        for file in &files {
            for rule in &rules {
                let cfg = self.config.rule(rule.id());
                if cfg.level == Level::Off || self.config.is_exempt(rule.id(), &file.rel) {
                    continue;
                }
                let mut raw = Vec::new();
                rule.check(file, &ctx, &mut raw);
                for mut f in raw {
                    match file.allow_for(rule.id(), f.line) {
                        Some(marker) if !marker.reason.is_empty() => continue,
                        _ => {}
                    }
                    f.level = cfg.level;
                    findings.push(f);
                }
            }
            self.check_markers(file, &mut findings);
        }
        self.check_stale_registries(&files, &ctx, &mut findings);
        self.check_ledger_rows(&files, &ctx, &mut findings);
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        findings.dedup();
        Ok(Report {
            findings,
            files_scanned: files.len(),
            graph: summarize_graph(&files, &ctx),
        })
    }

    /// Engine half of `unsafe-ledger-sync`: rows that point at files the
    /// walk never saw (moved or deleted), or at files whose unsafe
    /// surface is gone, are stale claims in the audit trail. (The
    /// per-file half — unsafe without a row, constructs that vanished —
    /// lives in `semantic::UnsafeLedgerSync`.)
    fn check_ledger_rows(&self, files: &[SourceFile], ctx: &Context, findings: &mut Vec<Finding>) {
        let cfg = self.config.rule("unsafe-ledger-sync");
        if cfg.level == Level::Off {
            return;
        }
        if !ctx.has_ledger {
            // Deleting the ledger must not silently disable the rule:
            // a workspace with unsafe code and no UNSAFE_LEDGER.md fails.
            if files.iter().any(|f| f.tree.has_unsafe_surface()) {
                findings.push(Finding {
                    rule: "unsafe-ledger-sync",
                    level: cfg.level,
                    file: "UNSAFE_LEDGER.md".into(),
                    line: 0,
                    message: "workspace contains `unsafe`/`#[target_feature]` code but has no UNSAFE_LEDGER.md".into(),
                });
            }
            return;
        }
        for row in &ctx.ledger_rows {
            let message = match files.iter().find(|f| f.rel == row.file) {
                None => format!(
                    "ledger row points at `{}`, which is not in the workspace (moved or deleted); fix the path or drop the row",
                    row.file
                ),
                Some(f) if !f.tree.has_unsafe_surface() => format!(
                    "ledger row is stale: `{}` no longer contains `unsafe` or `#[target_feature]`; drop the row",
                    row.file
                ),
                Some(_) => continue,
            };
            findings.push(Finding {
                rule: "unsafe-ledger-sync",
                level: cfg.level,
                file: "UNSAFE_LEDGER.md".into(),
                line: row.line,
                message,
            });
        }
    }

    /// Engine pseudo-rule `bare-allow`: markers must carry a reason
    /// (`-- <why>`) to suppress anything, and must name a real rule.
    fn check_markers(&self, file: &SourceFile, findings: &mut Vec<Finding>) {
        let cfg = self.config.rule("bare-allow");
        if cfg.level == Level::Off || self.config.is_exempt("bare-allow", &file.rel) {
            return;
        }
        let known = known_rule_ids();
        for m in &file.allows {
            let message = if !known.contains(&m.rule.as_str()) {
                format!("allow marker names unknown rule `{}`", m.rule)
            } else if m.reason.is_empty() {
                format!(
                    "allow({}) marker without a reason; write `// vaer-lint: allow({}) -- <reason>`",
                    m.rule, m.rule
                )
            } else {
                continue;
            };
            findings.push(Finding {
                rule: "bare-allow",
                level: cfg.level,
                file: file.rel.clone(),
                line: m.line,
                message,
            });
        }
    }

    /// Engine pseudo-rule `stale-registry`: a registry entry no code
    /// references is a lie tests will happily keep asserting about.
    fn check_stale_registries(
        &self,
        files: &[SourceFile],
        ctx: &Context,
        findings: &mut Vec<Finding>,
    ) {
        let cfg = self.config.rule("stale-registry");
        if cfg.level == Level::Off {
            return;
        }
        let mut used_failpoints: Vec<&str> = Vec::new();
        let mut used_prefixes: Vec<&str> = Vec::new();
        let mut used_knobs: Vec<&str> = Vec::new();
        let mut used_degradations: Vec<&str> = Vec::new();
        for file in files {
            let toks: Vec<_> = file.toks.iter().filter(|t| !t.is_comment()).collect();
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident {
                    continue;
                }
                let next_str = || {
                    toks.get(i + 1)
                        .filter(|n| n.is_punct("("))
                        .and_then(|_| toks.get(i + 2))
                        .filter(|s| s.kind == TokKind::Str)
                };
                if (t.text == "check" || t.text == "trigger" || t.text == "configure")
                    && i >= 3
                    && toks[i - 3].is_ident("vaer_fault")
                {
                    if let Some(s) = next_str() {
                        let name = s.text.split('=').next().unwrap_or(&s.text);
                        used_failpoints.push(name);
                        // `configure` specs may arm several clauses.
                        for clause in s.text.split(';') {
                            if let Some(n) = clause.split('=').next() {
                                used_failpoints.push(n);
                            }
                        }
                    }
                }
                if crate::rules::OBS_FNS.contains(&t.text.as_str())
                    && i >= 1
                    && !toks[i - 1].is_punct(".")
                {
                    if let Some(s) = next_str() {
                        used_prefixes.push(s.text.split('.').next().unwrap_or(&s.text));
                    }
                }
                if t.text == "degrade" || t.text == "note_degrade" {
                    if let Some(s) = next_str() {
                        used_degradations.push(&s.text);
                    }
                }
                if t.text == "var" && (i == 0 || !toks[i - 1].is_punct(".")) {
                    if let Some(s) = next_str() {
                        if s.text.starts_with("VAER_") {
                            used_knobs.push(&s.text);
                        }
                    }
                }
            }
        }
        let mut report_stale = |name: &str, registry: &str| {
            findings.push(Finding {
                rule: "stale-registry",
                level: cfg.level,
                file: registry.to_string(),
                line: 0,
                message: format!(
                    "registry entry `{name}` is referenced by no code; remove it or wire it up"
                ),
            });
        };
        for d in &ctx.degradations {
            if !used_degradations.iter().any(|u| u == d) {
                report_stale(d, "DEGRADATIONS");
            }
        }
        for k in &ctx.env_knobs {
            if !used_knobs.iter().any(|u| u == k) {
                report_stale(k, "ENV_KNOBS");
            }
        }
        for fp in &ctx.failpoints {
            if !used_failpoints.iter().any(|u| u == fp) {
                report_stale(fp, "FAILPOINTS");
            }
        }
        for p in &ctx.obs_prefixes {
            if !used_prefixes.iter().any(|u| u == p) {
                report_stale(p, "NAME_PREFIXES");
            }
        }
    }

    fn load_files(&self) -> io::Result<Vec<SourceFile>> {
        let mut paths = Vec::new();
        for top in WALK_ROOTS {
            let dir = self.root.join(top);
            if dir.is_dir() {
                collect_rs_files(&dir, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let rel = path
                .strip_prefix(&self.root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let kind = classify(&rel);
            let src = std::fs::read_to_string(&path)?;
            files.push(SourceFile::parse(path, rel, kind, &src));
        }
        Ok(files)
    }
}

fn classify(rel: &str) -> FileKind {
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        FileKind::Test
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileKind::Example
    } else if rel.contains("/benches/") {
        FileKind::Bench
    } else {
        FileKind::Lib
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Builds the shared context: registry consts are read straight from the
/// scanned token streams (so fixtures can ship their own), the unsafe
/// ledger from `<root>/UNSAFE_LEDGER.md`, the call graph and feature-fn
/// table from the per-file item trees, and the atomics policy /
/// loop-size threshold from `lints.toml`.
fn build_context(root: &Path, files: &[SourceFile], config: &Config) -> Context {
    let mut ctx = Context::default();
    for file in files {
        extract_const_strings(file, "FAILPOINTS", &mut ctx.failpoints);
        extract_const_strings(file, "NAME_PREFIXES", &mut ctx.obs_prefixes);
        extract_const_strings(file, "ENV_KNOBS", &mut ctx.env_knobs);
        extract_const_strings(file, "DEGRADATIONS", &mut ctx.degradations);
    }
    let ledger = root.join("UNSAFE_LEDGER.md");
    if let Ok(text) = std::fs::read_to_string(&ledger) {
        ctx.has_ledger = true;
        for (ln, line) in text.lines().enumerate() {
            // Markdown table rows whose first cell is a source path; the
            // second cell is the construct the row claims exists.
            let Some(body) = line.trim().strip_prefix('|') else {
                continue;
            };
            let cells: Vec<&str> = body.split('|').map(str::trim).collect();
            let Some(first) = cells.first() else {
                continue;
            };
            let path = first.trim_matches('`');
            if path.ends_with(".rs") {
                ctx.ledger_rows.push(LedgerRow {
                    file: path.to_string(),
                    construct: cells.get(1).copied().unwrap_or("").to_string(),
                    line: ln as u32 + 1,
                });
            }
        }
    }
    ctx.feature_fns = semantic::collect_feature_fns(files);
    ctx.callgraph = CallGraph::build(files);
    ctx.atomics = config.atomics().to_vec();
    ctx.min_loop_lines = config
        .rule("cancel-probe-coverage")
        .min_loop_lines
        .unwrap_or(DEFAULT_MIN_LOOP_LINES);
    ctx
}

/// Aggregates the call-graph numbers published as a CI artifact.
fn summarize_graph(files: &[SourceFile], ctx: &Context) -> GraphSummary {
    let (guarded, unguarded) = semantic::feature_call_counts(files, &ctx.feature_fns);
    GraphSummary {
        nodes: ctx.callgraph.nodes.len(),
        edges: ctx.callgraph.edge_count(),
        stage_run_fns: ctx.callgraph.stage_run.len(),
        stage_reachable_fns: ctx.callgraph.stage_reachable.iter().filter(|&&b| b).count(),
        target_feature_fns: files
            .iter()
            .flat_map(|f| &f.tree.fns)
            .filter(|f| !f.features.is_empty())
            .count(),
        guarded_calls: guarded,
        unguarded_calls: unguarded,
    }
}

/// Collects the string literals of `pub const <NAME>: &[&str] = [ … ]`.
fn extract_const_strings(file: &SourceFile, name: &str, out: &mut Vec<String>) {
    let toks: Vec<_> = file.toks.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident(name) || i == 0 || !toks[i - 1].is_ident("const") {
            continue;
        }
        // Skip to the `[` after `=`, then collect strings until `]`.
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_punct("=") {
            j += 1;
        }
        while j < toks.len() && !toks[j].is_punct("[") {
            j += 1;
        }
        j += 1;
        while j < toks.len() && !toks[j].is_punct("]") {
            if toks[j].kind == TokKind::Str {
                out.push(toks[j].text.clone());
            }
            j += 1;
        }
    }
}
