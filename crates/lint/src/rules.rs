//! The rule catalogue. Each rule walks a file's token stream and emits
//! findings; the engine applies config levels, path exemptions, and
//! inline allow markers afterwards.

use crate::callgraph::CallGraph;
use crate::config::{AtomicsPolicy, Level};
use crate::report::Finding;
use crate::scanner::{Tok, TokKind};
use crate::semantic::{
    AtomicOrderingPolicy, CancelProbeCoverage, FeatureGuardDominance, UnsafeLedgerSync,
};
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// Loop-size threshold for `cancel-probe-coverage` when `lints.toml`
/// does not override it.
pub const DEFAULT_MIN_LOOP_LINES: u32 = 8;

/// One parsed `UNSAFE_LEDGER.md` table row.
#[derive(Clone, Debug)]
pub struct LedgerRow {
    /// Workspace-relative path from the first cell.
    pub file: String,
    /// The Construct cell — what the row claims the file contains.
    pub construct: String,
    /// 1-based line of the row in the ledger.
    pub line: u32,
}

/// Workspace-level facts shared by registry-backed and semantic rules.
#[derive(Clone, Debug)]
pub struct Context {
    /// Names in `vaer_fault`'s `FAILPOINTS` registry const.
    pub failpoints: Vec<String>,
    /// Prefixes in `vaer_obs`'s `NAME_PREFIXES` registry const.
    pub obs_prefixes: Vec<String>,
    /// Environment knobs in `vaer_obs`'s `ENV_KNOBS` registry const.
    pub env_knobs: Vec<String>,
    /// Degradation names in `vaer_core`'s `DEGRADATIONS` registry const.
    pub degradations: Vec<String>,
    /// Rows parsed from `UNSAFE_LEDGER.md`.
    pub ledger_rows: Vec<LedgerRow>,
    /// Whether an `UNSAFE_LEDGER.md` was found at the workspace root.
    pub has_ledger: bool,
    /// `#[target_feature]` fn name -> required feature set, workspace-wide.
    pub feature_fns: BTreeMap<String, Vec<String>>,
    /// The intra-workspace call graph.
    pub callgraph: CallGraph,
    /// The `[atomics."<prefix>"]` policy table from `lints.toml`.
    pub atomics: Vec<AtomicsPolicy>,
    /// Loop-size threshold for `cancel-probe-coverage`.
    pub min_loop_lines: u32,
}

impl Default for Context {
    fn default() -> Self {
        Self {
            failpoints: Vec::new(),
            obs_prefixes: Vec::new(),
            env_knobs: Vec::new(),
            degradations: Vec::new(),
            ledger_rows: Vec::new(),
            has_ledger: false,
            feature_fns: BTreeMap::new(),
            callgraph: CallGraph::default(),
            atomics: Vec::new(),
            min_loop_lines: DEFAULT_MIN_LOOP_LINES,
        }
    }
}

/// A single lint rule.
pub trait Rule {
    /// Stable id used in configs, markers, and reports.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Emits raw findings for one file (levels are patched by the
    /// engine; emit everything at `Deny`).
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Finding>);
}

/// The full rule set, in report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(DetHashIter),
        Box::new(DetWallclock),
        Box::new(DetThreadSpawn),
        Box::new(SafetyComment),
        Box::new(NoStaticMut),
        Box::new(PanicMarkers),
        Box::new(FailpointRegistry),
        Box::new(ObsRegistry),
        Box::new(StageRegistry),
        Box::new(DegradationRegistry),
        Box::new(FeatureGuardDominance),
        Box::new(UnsafeLedgerSync),
        Box::new(AtomicOrderingPolicy),
        Box::new(CancelProbeCoverage),
    ]
}

/// Ids of every rule plus the engine's own pseudo-rules (valid in
/// configs and allow markers).
pub fn known_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = all_rules().iter().map(|r| r.id()).collect();
    ids.push("bare-allow");
    ids.push("stale-registry");
    ids
}

pub(crate) fn finding(
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) -> Finding {
    Finding {
        rule,
        level: Level::Deny,
        file: file.rel.clone(),
        line,
        message,
    }
}

/// Indices of non-comment tokens, the stream rules pattern-match over.
pub(crate) fn code(file: &SourceFile) -> Vec<&Tok> {
    file.toks.iter().filter(|t| !t.is_comment()).collect()
}

/// Marks which code-token positions sit inside a `use …;` declaration,
/// so type-name rules flag usage sites rather than imports.
pub(crate) fn in_use_decl(code: &[&Tok]) -> Vec<bool> {
    let mut marks = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("use") && (i == 0 || !code[i - 1].is_punct(".")) {
            let mut j = i;
            while j < code.len() && !code[j].is_punct(";") {
                marks[j] = true;
                j += 1;
            }
            if j < code.len() {
                marks[j] = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    marks
}

/// determinism: no `HashMap`/`HashSet` in library code. Hash iteration
/// order is seeded per-process, so anything that ever iterates one into
/// serialized output, obs snapshots, or reported metrics breaks VAER's
/// bit-reproducibility guarantees. Use `BTreeMap`/`BTreeSet`, or sort
/// explicitly and mark the site `// vaer-lint: allow(det-hash-iter) --
/// <why iteration order cannot escape>`.
struct DetHashIter;

impl Rule for DetHashIter {
    fn id(&self) -> &'static str {
        "det-hash-iter"
    }
    fn description(&self) -> &'static str {
        "HashMap/HashSet in library code risks nondeterministic iteration; use BTree* or sort"
    }
    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let code = code(file);
        let uses = in_use_decl(&code);
        for (i, t) in code.iter().enumerate() {
            if t.kind == TokKind::Ident
                && (t.text == "HashMap" || t.text == "HashSet")
                && !uses[i]
                && !file.is_test_line(t.line)
            {
                out.push(finding(
                    file,
                    self.id(),
                    t.line,
                    format!(
                        "`{}` has nondeterministic iteration order; use `BTree{}` (or sort before iterating) so serialized output stays byte-stable",
                        t.text,
                        &t.text[4..]
                    ),
                ));
            }
        }
    }
}

/// determinism: no wall-clock reads (`Instant`/`SystemTime`) in compute
/// paths. Timing belongs to `vaer-obs` spans and the bench harness;
/// ad-hoc clocks smuggle nondeterminism into results. Path exemptions in
/// `lints.toml` cover the crates whose *business* is timing.
struct DetWallclock;

impl Rule for DetWallclock {
    fn id(&self) -> &'static str {
        "det-wallclock"
    }
    fn description(&self) -> &'static str {
        "Instant/SystemTime outside obs/bench timing paths makes results run-dependent"
    }
    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let code = code(file);
        let uses = in_use_decl(&code);
        for (i, t) in code.iter().enumerate() {
            if t.kind == TokKind::Ident
                && (t.text == "Instant" || t.text == "SystemTime")
                && !uses[i]
                && !file.is_test_line(t.line)
            {
                out.push(finding(
                    file,
                    self.id(),
                    t.line,
                    format!(
                        "`{}` read in a compute path; route timing through `vaer_obs::span` or mark why wall-clock is the measured quantity",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// determinism: no raw `thread::spawn` — all parallelism goes through
/// `vaer_linalg::runtime`, whose fixed shard order is what keeps
/// parallel gradients bit-identical.
struct DetThreadSpawn;

impl Rule for DetThreadSpawn {
    fn id(&self) -> &'static str {
        "det-thread-spawn"
    }
    fn description(&self) -> &'static str {
        "raw thread::spawn bypasses the deterministic vaer_linalg::runtime worker pool"
    }
    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Finding>) {
        let code = code(file);
        for w in code.windows(4) {
            if w[0].is_ident("thread")
                && w[1].is_punct(":")
                && w[2].is_punct(":")
                && w[3].is_ident("spawn")
                && !file.is_test_line(w[0].line)
            {
                out.push(finding(
                    file,
                    self.id(),
                    w[0].line,
                    "raw `thread::spawn`; use `vaer_linalg::runtime` so work keeps its deterministic shard order".into(),
                ));
            }
        }
    }
}

/// safety: every `unsafe` occurrence (blocks, fns, impls) and every
/// `#[target_feature]` fn must carry a `// SAFETY:` comment just above
/// (or on) its line. Ledger membership is the `unsafe-ledger-sync`
/// rule's job.
struct SafetyComment;

impl SafetyComment {
    fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
        // Within 5 lines above: a SAFETY comment may span several lines
        // and sit above `#[cfg]`-style attributes of the same item.
        file.toks.iter().any(|t| {
            t.is_comment() && t.text.contains("SAFETY:") && t.line + 5 >= line && t.line <= line
        })
    }

    fn require(&self, file: &SourceFile, line: u32, what: &str, out: &mut Vec<Finding>) {
        if !Self::has_safety_comment(file, line) {
            out.push(finding(
                file,
                self.id(),
                line,
                format!("{what} without a `// SAFETY:` comment on or directly above it"),
            ));
        }
    }
}

impl Rule for SafetyComment {
    fn id(&self) -> &'static str {
        "safety-comment"
    }
    fn description(&self) -> &'static str {
        "unsafe blocks/fns and #[target_feature] need a SAFETY: comment on or directly above them"
    }
    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let code = code(file);
        for (i, t) in code.iter().enumerate() {
            if file.is_test_line(t.line) {
                continue;
            }
            if t.is_ident("unsafe") {
                self.require(file, t.line, "`unsafe`", out);
            }
            // `#[target_feature(...)]` — the call contract (CPU must
            // support the feature) is an unsafe-style obligation.
            if t.is_ident("target_feature")
                && i >= 2
                && code[i - 1].is_punct("[")
                && code[i - 2].is_punct("#")
            {
                self.require(file, t.line, "`#[target_feature]`", out);
            }
        }
    }
}

/// safety: `static mut` is banned outright — there is always a better
/// primitive (`AtomicU64`, `Mutex`, `OnceLock`).
struct NoStaticMut;

impl Rule for NoStaticMut {
    fn id(&self) -> &'static str {
        "no-static-mut"
    }
    fn description(&self) -> &'static str {
        "static mut is banned; use atomics, Mutex, or OnceLock"
    }
    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Finding>) {
        let code = code(file);
        for w in code.windows(2) {
            if w[0].is_ident("static") && w[1].is_ident("mut") {
                out.push(finding(
                    file,
                    self.id(),
                    w[0].line,
                    "`static mut`; use an atomic, `Mutex`, or `OnceLock` instead".into(),
                ));
            }
        }
    }
}

/// panics: `unwrap`/`expect`/`panic!`/`assert!` in non-test library code
/// must either sit in a fn documented with a `# Panics` section or carry
/// an inline `// vaer-lint: allow(panic) -- <reason>` marker. Extends
/// PR 4's panic audit into a machine-checked gate. (`debug_assert!` is
/// exempt: it compiles out of release builds.)
struct PanicMarkers;

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

impl Rule for PanicMarkers {
    fn id(&self) -> &'static str {
        "panic"
    }
    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/assert! in library code need a # Panics doc or an allow(panic) marker"
    }
    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let code = code(file);
        for i in 1..code.len() {
            let t = code[i];
            if t.kind != TokKind::Ident
                || file.is_test_line(t.line)
                || file.in_panics_documented_fn(t.line)
            {
                continue;
            }
            let next_is = |text: &str| code.get(i + 1).is_some_and(|n| n.is_punct(text));
            let what = if (t.text == "unwrap" || t.text == "expect")
                && code[i - 1].is_punct(".")
                && next_is("(")
            {
                format!("`.{}()`", t.text)
            } else if PANIC_MACROS.contains(&t.text.as_str())
                && next_is("!")
                && !code[i - 1].is_punct(".")
            {
                format!("`{}!`", t.text)
            } else {
                continue;
            };
            out.push(finding(
                file,
                self.id(),
                t.line,
                format!(
                    "{what} in library code; return a typed error, document the invariant under `# Panics`, or mark `// vaer-lint: allow(panic) -- <reason>`"
                ),
            ));
        }
    }
}

/// observability: every failpoint name used at a `vaer_fault::check` /
/// `vaer_fault::trigger` site must appear in the `FAILPOINTS` registry
/// const, so crash-recovery tests can iterate the full surface.
struct FailpointRegistry;

impl Rule for FailpointRegistry {
    fn id(&self) -> &'static str {
        "failpoint-registry"
    }
    fn description(&self) -> &'static str {
        "failpoint names at check/trigger sites must be listed in vaer_fault::FAILPOINTS"
    }
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let code = code(file);
        for w in code.windows(6) {
            if w[0].is_ident("vaer_fault")
                && w[1].is_punct(":")
                && w[2].is_punct(":")
                && (w[3].is_ident("check") || w[3].is_ident("trigger"))
                && w[4].is_punct("(")
                && w[5].kind == TokKind::Str
                && !file.is_test_line(w[0].line)
                && !ctx.failpoints.iter().any(|n| n == &w[5].text)
            {
                out.push(finding(
                    file,
                    self.id(),
                    w[0].line,
                    format!(
                        "failpoint `{}` is not in the FAILPOINTS registry; add it so tests can iterate every site",
                        w[5].text
                    ),
                ));
            }
        }
    }
}

/// observability: every obs counter/gauge/histogram/span/event name
/// registered in library code must use a prefix from the `NAME_PREFIXES`
/// registry const, and every `VAER_*` environment knob read through
/// `env::var` must be listed in the `ENV_KNOBS` registry const — both
/// keep the observable surface enumerable by tests and docs.
struct ObsRegistry;

pub(crate) const OBS_FNS: &[&str] = &["counter", "gauge", "histogram", "span", "event"];

impl Rule for ObsRegistry {
    fn id(&self) -> &'static str {
        "obs-registry"
    }
    fn description(&self) -> &'static str {
        "obs metric/span names need a NAME_PREFIXES prefix; VAER_* env reads need an ENV_KNOBS row"
    }
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let code = code(file);
        for i in 1..code.len().saturating_sub(2) {
            let t = code[i];
            if t.kind != TokKind::Ident
                || code[i - 1].is_punct(".") // method call, not a registration
                || !code[i + 1].is_punct("(")
                || code[i + 2].kind != TokKind::Str
                || file.is_test_line(t.line)
            {
                continue;
            }
            if OBS_FNS.contains(&t.text.as_str()) {
                let name = &code[i + 2].text;
                let prefix = name.split('.').next().unwrap_or(name);
                if !ctx.obs_prefixes.iter().any(|p| p == prefix) {
                    out.push(finding(
                        file,
                        self.id(),
                        t.line,
                        format!(
                            "obs name `{name}` uses unregistered prefix `{prefix}`; add it to NAME_PREFIXES or reuse a registered namespace"
                        ),
                    ));
                }
            } else if t.text == "var" && code[i + 2].text.starts_with("VAER_") {
                let knob = &code[i + 2].text;
                if !ctx.env_knobs.iter().any(|k| k == knob) {
                    out.push(finding(
                        file,
                        self.id(),
                        t.line,
                        format!(
                            "env knob `{knob}` is not in the ENV_KNOBS registry; add it so the knob surface stays enumerable"
                        ),
                    ));
                }
            }
        }
    }
}

/// staged executor: every stage name declared in a `STAGES` const (the
/// executor's dataflow list) must be a registered failpoint AND live
/// inside a registered obs namespace — a stage always carries both, so a
/// missing registry entry means un-injectable faults or un-enumerable
/// telemetry.
struct StageRegistry;

impl Rule for StageRegistry {
    fn id(&self) -> &'static str {
        "stage-registry"
    }
    fn description(&self) -> &'static str {
        "exec stage names in STAGES consts must be registered failpoints inside a registered obs namespace"
    }
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let code = code(file);
        for i in 1..code.len() {
            if !code[i].is_ident("STAGES")
                || !code[i - 1].is_ident("const")
                || file.is_test_line(code[i].line)
            {
                continue;
            }
            // Skip the type annotation: strings live after the `=`.
            let mut j = i + 1;
            while j < code.len() && !code[j].is_punct("=") {
                j += 1;
            }
            while j < code.len() && !code[j].is_punct("[") {
                j += 1;
            }
            j += 1;
            while j < code.len() && !code[j].is_punct("]") {
                let t = code[j];
                j += 1;
                if t.kind != TokKind::Str {
                    continue;
                }
                let name = &t.text;
                if !ctx.failpoints.iter().any(|n| n == name) {
                    out.push(finding(
                        file,
                        self.id(),
                        t.line,
                        format!(
                            "stage `{name}` has no registered failpoint; add it to vaer_fault::FAILPOINTS"
                        ),
                    ));
                }
                let prefix = name.split('.').next().unwrap_or(name);
                if !ctx.obs_prefixes.iter().any(|p| p == prefix) {
                    out.push(finding(
                        file,
                        self.id(),
                        t.line,
                        format!(
                            "stage `{name}` is outside every registered obs namespace; add `{prefix}` to NAME_PREFIXES"
                        ),
                    ));
                }
            }
        }
    }
}

/// resilience: every degradation name fired at a `degrade` /
/// `note_degrade` site must appear in the `DEGRADATIONS` registry const,
/// so the chaos soak and `vaer-report` can enumerate every way a run is
/// allowed to weaken itself. Method receivers are deliberately matched
/// (unlike obs registrations): real sites are `health.degrade(…)` and
/// `executor.note_degrade(…)` calls.
struct DegradationRegistry;

impl Rule for DegradationRegistry {
    fn id(&self) -> &'static str {
        "degradation-registry"
    }
    fn description(&self) -> &'static str {
        "degradation names at degrade/note_degrade sites must be listed in DEGRADATIONS"
    }
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let code = code(file);
        for i in 0..code.len().saturating_sub(2) {
            let t = code[i];
            if t.kind != TokKind::Ident
                || (t.text != "degrade" && t.text != "note_degrade")
                || !code[i + 1].is_punct("(")
                || code[i + 2].kind != TokKind::Str
                || file.is_test_line(t.line)
            {
                continue;
            }
            let name = &code[i + 2].text;
            if !ctx.degradations.iter().any(|d| d == name) {
                out.push(finding(
                    file,
                    self.id(),
                    t.line,
                    format!(
                        "degradation `{name}` is not in the DEGRADATIONS registry; add it so every fallback lane stays enumerable"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lib_file(src: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from("crates/x/src/lib.rs"),
            "crates/x/src/lib.rs".into(),
            FileKind::Lib,
            src,
        )
    }

    fn run(rule: &dyn Rule, src: &str, ctx: &Context) -> Vec<Finding> {
        let mut out = Vec::new();
        rule.check(&lib_file(src), ctx, &mut out);
        out
    }

    #[test]
    fn stage_registry_requires_failpoint_and_obs_namespace() {
        let ctx = Context {
            failpoints: vec!["exec.block".into()],
            obs_prefixes: vec!["exec".into()],
            ..Context::default()
        };
        let ok = "pub const STAGES: &[&str] = &[\"exec.block\"];";
        assert!(run(&StageRegistry, ok, &ctx).is_empty());
        // Unregistered failpoint + unregistered namespace = two findings;
        // registered-prefix-but-unregistered-failpoint = one.
        let bad = "pub const STAGES: &[&str] = &[\"rogue.stage\", \"exec.ghost\"];";
        let f = run(&StageRegistry, bad, &ctx);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f
            .iter()
            .any(|x| x.message.contains("rogue.stage") && x.message.contains("failpoint")));
        assert!(f.iter().any(|x| x.message.contains("`rogue`")));
        assert!(f.iter().any(|x| x.message.contains("exec.ghost")));
        // Other consts and test code are ignored.
        let other = "pub const NAMES: &[&str] = &[\"rogue.stage\"];\n#[cfg(test)]\nmod tests { pub const STAGES: &[&str] = &[\"rogue.stage\"]; }";
        assert!(run(&StageRegistry, other, &ctx).is_empty());
    }

    #[test]
    fn hash_rule_flags_usage_not_imports_or_tests() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n#[cfg(test)]\nmod tests { fn g() { let s = std::collections::HashSet::<u32>::new(); let _ = s; } }\n";
        let f = run(&DetHashIter, src, &Context::default());
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.line == 2));
    }

    #[test]
    fn wallclock_rule_flags_instant() {
        let f = run(
            &DetWallclock,
            "fn f() { let t = std::time::Instant::now(); }",
            &Context::default(),
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn thread_spawn_flagged() {
        let f = run(
            &DetThreadSpawn,
            "fn f() { std::thread::spawn(|| {}); }",
            &Context::default(),
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn unsafe_needs_comment() {
        let ctx = Context::default();
        let f = run(&SafetyComment, "fn f() { unsafe { work() } }", &ctx);
        assert_eq!(f.len(), 1, "missing SAFETY comment: {f:?}");
        let ok_src = "fn f() {\n    // SAFETY: bounds checked above.\n    unsafe { work() }\n}";
        assert!(run(&SafetyComment, ok_src, &ctx).is_empty());
    }

    #[test]
    fn static_mut_flagged() {
        let f = run(&NoStaticMut, "static mut X: u32 = 0;", &Context::default());
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn panic_rule_honours_panics_doc_and_skips_unwrap_or() {
        let src = "/// # Panics\n/// When empty.\npub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\nfn g(v: &[u32]) -> u32 { v.first().copied().unwrap_or(0) }\nfn h() { panic!(\"boom\") }\n";
        let f = run(&PanicMarkers, src, &Context::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn debug_assert_is_exempt() {
        let f = run(
            &PanicMarkers,
            "fn f(x: u32) { debug_assert!(x > 0); }",
            &Context::default(),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn failpoint_names_checked_against_registry() {
        let ctx = Context {
            failpoints: vec!["vae.epoch".into()],
            ..Context::default()
        };
        let src =
            "fn f() { vaer_fault::trigger(\"vae.epoch\"); vaer_fault::check(\"rogue.site\"); }";
        let f = run(&FailpointRegistry, src, &ctx);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("rogue.site"));
    }

    #[test]
    fn degradation_names_checked_against_registry() {
        let ctx = Context {
            degradations: vec!["degrade.score.f32_fallback".into()],
            ..Context::default()
        };
        // Both free-fn and method-receiver spellings are in scope; only
        // the unregistered name fires.
        let src = "fn f(h: &mut Health, e: &Exec) { h.degrade(\"degrade.score.f32_fallback\", \"no twin\"); e.note_degrade(\"degrade.rogue\", \"oops\"); }";
        let f = run(&DegradationRegistry, src, &ctx);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("degrade.rogue"));
        // Non-literal names (runtime values) are out of scope.
        let dynamic = "fn g(h: &mut Health, n: &str) { h.degrade(n, \"detail\"); }";
        assert!(run(&DegradationRegistry, dynamic, &ctx).is_empty());
    }

    #[test]
    fn obs_prefixes_checked_against_registry() {
        let ctx = Context {
            obs_prefixes: vec!["vae".into()],
            ..Context::default()
        };
        let src = "fn f() { vaer_obs::span(\"vae.step\"); vaer_obs::counter(\"mystery.count\"); }";
        let f = run(&ObsRegistry, src, &ctx);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("mystery"));
    }

    #[test]
    fn env_knobs_checked_against_registry() {
        let ctx = Context {
            env_knobs: vec!["VAER_OBS".into()],
            ..Context::default()
        };
        // Registered knob, unregistered knob, and a non-VAER env read
        // (outside the rule's scope entirely).
        let src = "fn f() { let a = std::env::var(\"VAER_OBS\"); let b = std::env::var(\"VAER_SECRET_KNOB\"); let c = std::env::var(\"HOME\"); let _ = (a, b, c); }";
        let f = run(&ObsRegistry, src, &ctx);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("VAER_SECRET_KNOB"));
    }

    #[test]
    fn obs_method_reads_are_not_registrations() {
        let ctx = Context::default();
        let f = run(
            &ObsRegistry,
            "fn f(s: &Sink) { s.counter(\"anything.at.all\"); }",
            &ctx,
        );
        assert!(f.is_empty());
    }
}
