//! `lints.toml` parsing — a minimal, dependency-free TOML subset.
//!
//! Supported grammar (everything the lint config needs, nothing more):
//!
//! ```toml
//! # comment
//! [rule.det-wallclock]
//! level = "deny"            # "deny" | "warn" | "off"
//! exempt = [
//!     "crates/obs/",        # path prefixes, workspace-relative
//!     "crates/bench/",
//! ]
//! ```
//!
//! Unknown sections and keys are reported as errors rather than ignored:
//! a typo in a lint config silently disabling a rule is exactly the kind
//! of invariant decay this crate exists to prevent.

use std::collections::BTreeMap;

/// Severity of a rule's findings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Rule disabled.
    Off,
    /// Reported, but never fails `--deny`.
    Warn,
    /// Reported and fails `--deny`.
    Deny,
}

impl Level {
    /// Parses a config value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(Level::Off),
            "warn" => Ok(Level::Warn),
            "deny" => Ok(Level::Deny),
            other => Err(format!("unknown level '{other}' (expected deny|warn|off)")),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// Per-rule configuration.
#[derive(Clone, Debug)]
pub struct RuleConfig {
    /// Severity (rules default to `deny`).
    pub level: Level,
    /// Workspace-relative path prefixes the rule skips entirely.
    pub exempt: Vec<String>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        Self {
            level: Level::Deny,
            exempt: Vec::new(),
        }
    }
}

/// Parsed `lints.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Parses config text. `known_rules` guards against configuring a
    /// rule that does not exist.
    pub fn parse(text: &str, known_rules: &[&str]) -> Result<Self, String> {
        let mut rules: BTreeMap<String, RuleConfig> = BTreeMap::new();
        let mut current: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("lints.toml:{}: {msg}", ln + 1);
            if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let Some(rule) = section.strip_prefix("rule.") else {
                    return Err(err(format!(
                        "unknown section '[{section}]' (only [rule.<name>] is supported)"
                    )));
                };
                if !known_rules.contains(&rule) {
                    return Err(err(format!("unknown rule '{rule}'")));
                }
                rules.entry(rule.to_string()).or_default();
                current = Some(rule.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(format!("expected 'key = value', got '{line}'")));
            };
            let Some(rule) = current.clone() else {
                return Err(err("key outside a [rule.<name>] section".into()));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multi-line arrays: keep consuming lines until the `]`.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont).trim().to_string();
                    value.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
            }
            let entry = rules.entry(rule).or_default();
            match key {
                "level" => {
                    entry.level =
                        Level::parse(&parse_string(&value).map_err(&err)?).map_err(&err)?
                }
                "exempt" => entry.exempt = parse_string_array(&value).map_err(&err)?,
                other => return Err(err(format!("unknown key '{other}'"))),
            }
        }
        Ok(Self { rules })
    }

    /// Configuration for a rule (defaults when not mentioned).
    pub fn rule(&self, id: &str) -> RuleConfig {
        self.rules.get(id).cloned().unwrap_or_default()
    }

    /// Whether `rel` is exempt from the rule.
    pub fn is_exempt(&self, id: &str, rel: &str) -> bool {
        self.rules
            .get(id)
            .map(|r| r.exempt.iter().any(|p| rel.starts_with(p.as_str())))
            .unwrap_or(false)
    }
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str) -> Result<String, String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got '{v}'"))
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got '{v}'"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["det-wallclock", "panic"];

    #[test]
    fn parses_levels_and_exemptions() {
        let cfg = Config::parse(
            "# top comment\n[rule.det-wallclock]\nlevel = \"warn\"\nexempt = [\n  \"crates/obs/\", # timing is its business\n  \"crates/bench/\",\n]\n",
            RULES,
        )
        .unwrap();
        assert_eq!(cfg.rule("det-wallclock").level, Level::Warn);
        assert!(cfg.is_exempt("det-wallclock", "crates/obs/src/lib.rs"));
        assert!(!cfg.is_exempt("det-wallclock", "crates/core/src/lib.rs"));
        // Unmentioned rules default to deny.
        assert_eq!(cfg.rule("panic").level, Level::Deny);
    }

    #[test]
    fn rejects_unknown_rules_keys_and_sections() {
        assert!(Config::parse("[rule.nope]\n", RULES).is_err());
        assert!(Config::parse("[rule.panic]\nwhatever = 3\n", RULES).is_err());
        assert!(Config::parse("[paths]\n", RULES).is_err());
        assert!(Config::parse("level = \"deny\"\n", RULES).is_err());
    }

    #[test]
    fn inline_array_and_off() {
        let cfg = Config::parse(
            "[rule.panic]\nlevel = \"off\"\nexempt = [\"a/\", \"b/\"]\n",
            RULES,
        )
        .unwrap();
        assert_eq!(cfg.rule("panic").level, Level::Off);
        assert_eq!(cfg.rule("panic").exempt, vec!["a/", "b/"]);
    }
}
