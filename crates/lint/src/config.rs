//! `lints.toml` parsing — a minimal, dependency-free TOML subset.
//!
//! Supported grammar (everything the lint config needs, nothing more):
//!
//! ```toml
//! # comment
//! [rule.det-wallclock]
//! level = "deny"            # "deny" | "warn" | "off"
//! exempt = [
//!     "crates/obs/",        # path prefixes, workspace-relative
//!     "crates/bench/",
//! ]
//!
//! [rule.cancel-probe-coverage]
//! min_loop_lines = 10       # loop-size threshold (this rule only)
//!
//! # Atomic-ordering policy table: one section per path prefix, naming
//! # the `Ordering::*` variants the module is allowed to use. The most
//! # specific (longest) matching prefix wins; a module that uses
//! # atomics without any matching entry is an undeclared-policy finding.
//! [atomics."crates/obs/"]
//! allow = ["Relaxed"]
//! ```
//!
//! Unknown sections and keys are reported as errors rather than ignored:
//! a typo in a lint config silently disabling a rule is exactly the kind
//! of invariant decay this crate exists to prevent.

use std::collections::BTreeMap;

/// Severity of a rule's findings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Rule disabled.
    Off,
    /// Reported, but never fails `--deny`.
    Warn,
    /// Reported and fails `--deny`.
    Deny,
}

impl Level {
    /// Parses a config value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(Level::Off),
            "warn" => Ok(Level::Warn),
            "deny" => Ok(Level::Deny),
            other => Err(format!("unknown level '{other}' (expected deny|warn|off)")),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// Per-rule configuration.
#[derive(Clone, Debug)]
pub struct RuleConfig {
    /// Severity (rules default to `deny`).
    pub level: Level,
    /// Workspace-relative path prefixes the rule skips entirely.
    pub exempt: Vec<String>,
    /// Loop-size threshold (lines) for `cancel-probe-coverage`.
    pub min_loop_lines: Option<u32>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        Self {
            level: Level::Deny,
            exempt: Vec::new(),
            min_loop_lines: None,
        }
    }
}

/// One row of the atomic-ordering policy table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicsPolicy {
    /// Workspace-relative path prefix the row covers.
    pub prefix: String,
    /// `Ordering::*` variants the covered modules may use.
    pub allow: Vec<String>,
}

/// The five `std::sync::atomic::Ordering` variants (the only values a
/// policy row may allow).
pub const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Parsed `lints.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    rules: BTreeMap<String, RuleConfig>,
    atomics: Vec<AtomicsPolicy>,
}

impl Config {
    /// Parses config text. `known_rules` guards against configuring a
    /// rule that does not exist.
    pub fn parse(text: &str, known_rules: &[&str]) -> Result<Self, String> {
        enum Section {
            Rule(String),
            Atomics(usize),
        }
        let mut rules: BTreeMap<String, RuleConfig> = BTreeMap::new();
        let mut atomics: Vec<AtomicsPolicy> = Vec::new();
        let mut current: Option<Section> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln, raw)) = lines.next() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("lints.toml:{}: {msg}", ln + 1);
            if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if let Some(rule) = section.strip_prefix("rule.") {
                    if !known_rules.contains(&rule) {
                        return Err(err(format!("unknown rule '{rule}'")));
                    }
                    rules.entry(rule.to_string()).or_default();
                    current = Some(Section::Rule(rule.to_string()));
                } else if let Some(prefix) = section.strip_prefix("atomics.") {
                    let prefix = parse_string(prefix).map_err(&err)?;
                    if atomics.iter().any(|p| p.prefix == prefix) {
                        return Err(err(format!("duplicate atomics policy for '{prefix}'")));
                    }
                    atomics.push(AtomicsPolicy {
                        prefix,
                        allow: Vec::new(),
                    });
                    current = Some(Section::Atomics(atomics.len() - 1));
                } else {
                    return Err(err(format!(
                        "unknown section '[{section}]' (expected [rule.<name>] or [atomics.\"<prefix>\"])"
                    )));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(format!("expected 'key = value', got '{line}'")));
            };
            let Some(section) = &current else {
                return Err(err("key outside a section".into()));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multi-line arrays: keep consuming lines until the `]`.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont).trim().to_string();
                    value.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
            }
            match section {
                Section::Rule(rule) => {
                    let entry = rules.entry(rule.clone()).or_default();
                    match key {
                        "level" => {
                            entry.level =
                                Level::parse(&parse_string(&value).map_err(&err)?).map_err(&err)?
                        }
                        "exempt" => entry.exempt = parse_string_array(&value).map_err(&err)?,
                        "min_loop_lines" => {
                            entry.min_loop_lines =
                                Some(value.trim().parse::<u32>().map_err(|_| {
                                    err(format!("expected an integer, got '{}'", value.trim()))
                                })?)
                        }
                        other => return Err(err(format!("unknown key '{other}'"))),
                    }
                }
                Section::Atomics(idx) => match key {
                    "allow" => {
                        let orderings = parse_string_array(&value).map_err(&err)?;
                        for o in &orderings {
                            if !ATOMIC_ORDERINGS.contains(&o.as_str()) {
                                return Err(err(format!(
                                    "unknown atomic ordering '{o}' (expected one of {ATOMIC_ORDERINGS:?})"
                                )));
                            }
                        }
                        atomics[*idx].allow = orderings;
                    }
                    other => return Err(err(format!("unknown key '{other}'"))),
                },
            }
        }
        Ok(Self { rules, atomics })
    }

    /// Configuration for a rule (defaults when not mentioned).
    pub fn rule(&self, id: &str) -> RuleConfig {
        self.rules.get(id).cloned().unwrap_or_default()
    }

    /// The atomic-ordering policy table (section order preserved).
    pub fn atomics(&self) -> &[AtomicsPolicy] {
        &self.atomics
    }

    /// The policy covering `rel`, if any — the longest matching prefix
    /// wins, so a file-specific row overrides its crate's row.
    pub fn atomics_for(&self, rel: &str) -> Option<&AtomicsPolicy> {
        self.atomics
            .iter()
            .filter(|p| rel.starts_with(p.prefix.as_str()))
            .max_by_key(|p| p.prefix.len())
    }

    /// Whether `rel` is exempt from the rule.
    pub fn is_exempt(&self, id: &str, rel: &str) -> bool {
        self.rules
            .get(id)
            .map(|r| r.exempt.iter().any(|p| rel.starts_with(p.as_str())))
            .unwrap_or(false)
    }
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str) -> Result<String, String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got '{v}'"))
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got '{v}'"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["det-wallclock", "panic"];

    #[test]
    fn parses_levels_and_exemptions() {
        let cfg = Config::parse(
            "# top comment\n[rule.det-wallclock]\nlevel = \"warn\"\nexempt = [\n  \"crates/obs/\", # timing is its business\n  \"crates/bench/\",\n]\n",
            RULES,
        )
        .unwrap();
        assert_eq!(cfg.rule("det-wallclock").level, Level::Warn);
        assert!(cfg.is_exempt("det-wallclock", "crates/obs/src/lib.rs"));
        assert!(!cfg.is_exempt("det-wallclock", "crates/core/src/lib.rs"));
        // Unmentioned rules default to deny.
        assert_eq!(cfg.rule("panic").level, Level::Deny);
    }

    #[test]
    fn rejects_unknown_rules_keys_and_sections() {
        assert!(Config::parse("[rule.nope]\n", RULES).is_err());
        assert!(Config::parse("[rule.panic]\nwhatever = 3\n", RULES).is_err());
        assert!(Config::parse("[paths]\n", RULES).is_err());
        assert!(Config::parse("level = \"deny\"\n", RULES).is_err());
    }

    #[test]
    fn atomics_policy_longest_prefix_wins() {
        let cfg = Config::parse(
            "[atomics.\"crates/obs/\"]\nallow = [\"Relaxed\"]\n[atomics.\"crates/obs/src/seal.rs\"]\nallow = [\"Release\", \"Acquire\"]\n",
            RULES,
        )
        .unwrap();
        assert_eq!(cfg.atomics().len(), 2);
        assert_eq!(
            cfg.atomics_for("crates/obs/src/lib.rs").unwrap().allow,
            vec!["Relaxed"]
        );
        assert_eq!(
            cfg.atomics_for("crates/obs/src/seal.rs").unwrap().allow,
            vec!["Release", "Acquire"]
        );
        assert!(cfg.atomics_for("crates/core/src/lib.rs").is_none());
    }

    #[test]
    fn atomics_rejects_unknown_orderings_and_duplicates() {
        assert!(
            Config::parse("[atomics.\"a/\"]\nallow = [\"Chaotic\"]\n", RULES).is_err(),
            "made-up ordering"
        );
        assert!(
            Config::parse(
                "[atomics.\"a/\"]\nallow = [\"Relaxed\"]\n[atomics.\"a/\"]\nallow = [\"SeqCst\"]\n",
                RULES
            )
            .is_err(),
            "duplicate prefix"
        );
    }

    #[test]
    fn min_loop_lines_parses_and_rejects_garbage() {
        let cfg = Config::parse("[rule.panic]\nmin_loop_lines = 12\n", RULES).unwrap();
        assert_eq!(cfg.rule("panic").min_loop_lines, Some(12));
        assert_eq!(cfg.rule("det-wallclock").min_loop_lines, None);
        assert!(Config::parse("[rule.panic]\nmin_loop_lines = \"ten\"\n", RULES).is_err());
    }

    #[test]
    fn inline_array_and_off() {
        let cfg = Config::parse(
            "[rule.panic]\nlevel = \"off\"\nexempt = [\"a/\", \"b/\"]\n",
            RULES,
        )
        .unwrap();
        assert_eq!(cfg.rule("panic").level, Level::Off);
        assert_eq!(cfg.rule("panic").exempt, vec!["a/", "b/"]);
    }
}
