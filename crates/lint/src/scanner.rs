//! Line-aware Rust token scanner.
//!
//! Rule patterns must never fire on words inside comments, strings, or
//! doc text, so the engine works on a token stream rather than raw lines.
//! This is not a full lexer — it only distinguishes the shapes the rules
//! care about: identifiers, punctuation, string/char/number literals,
//! lifetimes, and (crucially, since rules both *skip* and *read* them)
//! comments. Raw strings (`r#"…"#`), byte strings, nested block
//! comments, and escapes are handled so that a `HashMap` inside a
//! docstring never becomes a finding.

/// Token shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// Single punctuation character (`:`, `(`, `{`, `!`, …).
    Punct,
    /// String literal (text is the *unquoted* contents).
    Str,
    /// Char or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), text without the quote.
    Lifetime,
    /// `//` comment, including `///` and `//!` doc comments. Text is the
    /// comment body after the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested); text is the body.
    BlockComment,
}

/// One scanned token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Shape of the token.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is stripped).
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: u32,
}

impl Tok {
    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this is a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }

    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Scans Rust source into tokens. Never fails: unterminated constructs
/// simply consume the rest of the input (the compiler will complain about
/// the file anyway; the linter must not).
pub fn scan(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: src[start..end].to_string(),
                    line,
                });
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let tok_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: src[start..end].to_string(),
                    line: tok_line,
                });
                i = j;
            }
            b'"' => {
                let (text, next, newlines) = scan_string(src, i + 1);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line += newlines;
                i = next;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let (kind, text, next, newlines) = scan_prefixed_string(src, i);
                toks.push(Tok { kind, text, line });
                line += newlines;
                i = next;
            }
            b'\'' => {
                // Lifetime or char literal. `'ident` not followed by a
                // closing quote is a lifetime; anything else is a char.
                let rest = &bytes[i + 1..];
                if is_lifetime(rest) {
                    let mut end = i + 1;
                    while end < bytes.len()
                        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i + 1..end].to_string(),
                        line,
                    });
                    i = end;
                } else {
                    let (text, next, newlines) = scan_char(src, i + 1);
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text,
                        line,
                    });
                    line += newlines;
                    i = next;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = i + 1;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if c.is_ascii_digit() => {
                let mut end = i + 1;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric()
                        || bytes[end] == b'_'
                        || bytes[end] == b'.')
                {
                    // `0..n` range: stop the number before `..`.
                    if bytes[end] == b'.' && bytes.get(end + 1) == Some(&b'.') {
                        break;
                    }
                    end += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// True when position `i` starts `r"`, `r#`, `b"`, `br"`, `br#`, `b'`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(&b'"') | Some(&b'\'') => true,
            Some(&b'r') => matches!(bytes.get(i + 2), Some(&b'"') | Some(&b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scans a normal (escaped) string body starting just after the opening
/// quote. Returns `(contents, index after closing quote, newlines seen)`.
fn scan_string(src: &str, start: usize) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut j = start;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return (src[start..j].to_string(), j + 1, newlines),
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (src[start..].to_string(), bytes.len(), newlines)
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` starting at the
/// prefix. Returns `(kind, contents, index after close, newlines)`.
fn scan_prefixed_string(src: &str, start: usize) -> (TokKind, String, usize, u32) {
    let bytes = src.as_bytes();
    let mut j = start;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            let (text, next, newlines) = scan_char(src, j + 1);
            return (TokKind::Char, text, next, newlines);
        }
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        // `r` / `b` was actually an identifier start (`r#ident` raw
        // identifiers land here too); emit the leading letter as an ident
        // and let the main loop rescan from there.
        return (
            TokKind::Ident,
            src[start..start + 1].to_string(),
            start + 1,
            0,
        );
    }
    j += 1;
    let body = j;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let mut newlines = 0u32;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
        }
        if bytes[j] == b'"' && bytes[j..].starts_with(&closer) {
            return (
                TokKind::Str,
                src[body..j].to_string(),
                j + closer.len(),
                newlines,
            );
        }
        if !raw && bytes[j] == b'\\' {
            j += 1;
        }
        j += 1;
    }
    (TokKind::Str, src[body..].to_string(), bytes.len(), newlines)
}

/// Scans a char literal body starting after the opening `'`.
fn scan_char(src: &str, start: usize) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut j = start;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => return (src[start..j].to_string(), j + 1, newlines),
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (src[start..].to_string(), bytes.len(), newlines)
}

/// `'a` vs `'a'`: lifetime iff the quote is followed by an ident char and
/// the ident run is *not* closed by another quote.
fn is_lifetime(rest: &[u8]) -> bool {
    let Some(&first) = rest.first() else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    let mut k = 1;
    while k < rest.len() && (rest[k].is_ascii_alphanumeric() || rest[k] == b'_') {
        k += 1;
    }
    rest.get(k) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        scan(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn words_in_comments_and_strings_are_not_idents() {
        let toks = kinds("let x = \"HashMap\"; // HashMap\n/* HashMap */ HashMap");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "HashMap"]);
    }

    #[test]
    fn line_numbers_track_newlines_in_all_constructs() {
        let src = "a\n\"two\nlines\"\nb\n/* c\nd */\ne";
        let toks = scan(src);
        let by_text: Vec<(String, u32)> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(by_text[0], ("a".into(), 1));
        assert_eq!(by_text[1], ("two\nlines".into(), 2));
        assert_eq!(by_text[2], ("b".into(), 4));
        assert_eq!(by_text[4], ("e".into(), 7));
    }

    #[test]
    fn raw_strings_hide_quotes_and_hashes() {
        let toks = kinds("r#\"a \" b\"# x");
        assert_eq!(toks[0], (TokKind::Str, "a \" b".into()));
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("&'a str 'x' '\\n' b'z'");
        assert_eq!(toks[1], (TokKind::Lifetime, "a".into()));
        assert_eq!(toks[3], (TokKind::Char, "x".into()));
        assert_eq!(toks[4], (TokKind::Char, "\\n".into()));
        assert_eq!(toks[5], (TokKind::Char, "z".into()));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("0..n 1.5 0x1F");
        assert_eq!(toks[0], (TokKind::Num, "0".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Punct, ".".into()));
        assert_eq!(toks[3], (TokKind::Ident, "n".into()));
        assert_eq!(toks[4], (TokKind::Num, "1.5".into()));
        assert_eq!(toks[5], (TokKind::Num, "0x1F".into()));
    }

    #[test]
    fn doc_comments_keep_their_text() {
        let toks = scan("/// # Panics\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("# Panics"));
    }
}
