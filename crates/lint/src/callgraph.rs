//! Intra-workspace call graph over the per-file item trees.
//!
//! Nodes are fn definitions; edges resolve call expressions to every
//! workspace fn sharing the callee's name (paths and receivers are not
//! tracked, so resolution is deliberately over-approximate — fine for
//! reachability questions, where extra edges only make rules see more
//! code, never less). Two derived facts feed the semantic rules:
//! which fns are reachable from a `Stage::run` impl, and from which fns
//! a cancellation probe (any [`PROBE_NAMES`] call — the
//! `CancelToken`/`RunBudget` cooperation points) is reachable.

use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Method names the cancel-probe rule accepts as cooperation points:
/// the polling surface of `RunBudget` and `CancelToken`.
pub const PROBE_NAMES: &[&str] = &["probe", "is_cancelled", "exhausted", "exceeded"];

/// One fn definition in the workspace.
#[derive(Clone, Debug)]
pub struct Node {
    /// Workspace-relative file path.
    pub file: String,
    /// Fn name.
    pub name: String,
    /// Line of the `fn` keyword (together with `file`, the node key).
    pub line: u32,
}

/// The resolved graph plus the reachability facts rules consume.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// All fn definitions, in (file, line) order.
    pub nodes: Vec<Node>,
    /// Resolved callee node ids per node.
    pub edges: Vec<Vec<usize>>,
    /// Node ids of `run` fns inside `impl ... Stage for ...` blocks.
    pub stage_run: Vec<usize>,
    /// Whether each node is reachable from any `Stage::run` impl
    /// (sources included).
    pub stage_reachable: Vec<bool>,
    /// Whether each node makes a [`PROBE_NAMES`] call directly or
    /// through callees.
    pub reaches_probe: Vec<bool>,
    index: BTreeMap<(String, u32), usize>,
}

impl CallGraph {
    /// Builds the graph from every scanned file's item tree.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut g = CallGraph::default();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for file in files {
            for f in &file.tree.fns {
                let id = g.nodes.len();
                g.nodes.push(Node {
                    file: file.rel.clone(),
                    name: f.name.clone(),
                    line: f.line,
                });
                g.index.insert((file.rel.clone(), f.line), id);
                by_name.entry(f.name.as_str()).or_default().push(id);
                if f.in_stage_impl && f.name == "run" {
                    g.stage_run.push(id);
                }
            }
        }
        let mut calls_probe = vec![false; g.nodes.len()];
        g.edges = vec![Vec::new(); g.nodes.len()];
        for file in files {
            for f in &file.tree.fns {
                let id = g.index[&(file.rel.clone(), f.line)];
                let mut seen: BTreeSet<usize> = BTreeSet::new();
                for call in &f.calls {
                    if PROBE_NAMES.contains(&call.name.as_str()) {
                        calls_probe[id] = true;
                    }
                    if let Some(ids) = by_name.get(call.name.as_str()) {
                        for &callee in ids {
                            if callee != id && seen.insert(callee) {
                                g.edges[id].push(callee);
                            }
                        }
                    }
                }
            }
        }
        g.stage_reachable = g.forward_closure(&g.stage_run);
        g.reaches_probe = g.backward_closure(&calls_probe);
        g
    }

    /// Node id of the fn defined at `(file, line)`.
    pub fn node_id(&self, file: &str, line: u32) -> Option<usize> {
        self.index.get(&(file.to_string(), line)).copied()
    }

    /// Total resolved edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Whether any fn with this name reaches a probe call — the
    /// over-approximate form the cancel-probe rule uses for call sites
    /// (same resolution policy as edge building).
    pub fn name_reaches_probe(&self, name: &str) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .any(|(id, n)| n.name == name && self.reaches_probe[id])
    }

    /// Every node reachable from `sources` following call edges
    /// (sources included).
    fn forward_closure(&self, sources: &[usize]) -> Vec<bool> {
        let mut hit = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = sources.to_vec();
        for &s in sources {
            hit[s] = true;
        }
        while let Some(id) = queue.pop() {
            for &callee in &self.edges[id] {
                if !hit[callee] {
                    hit[callee] = true;
                    queue.push(callee);
                }
            }
        }
        hit
    }

    /// Every node from which a `seed` node is reachable (seeds
    /// included) — computed over reversed edges.
    fn backward_closure(&self, seeds: &[bool]) -> Vec<bool> {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (id, callees) in self.edges.iter().enumerate() {
            for &callee in callees {
                rev[callee].push(id);
            }
        }
        let mut hit = seeds.to_vec();
        let mut queue: Vec<usize> = hit
            .iter()
            .enumerate()
            .filter_map(|(i, &h)| h.then_some(i))
            .collect();
        while let Some(id) = queue.pop() {
            for &caller in &rev[id] {
                if !hit[caller] {
                    hit[caller] = true;
                    queue.push(caller);
                }
            }
        }
        hit
    }
}

/// Aggregate numbers for the CI artifact: proves at a glance that the
/// analysis saw the workspace (non-trivial node/edge counts) and that
/// no call to a `#[target_feature]` fn escaped its guard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphSummary {
    /// Fn definitions in the workspace.
    pub nodes: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// `Stage::run` impl fns (cancel-probe coverage sources).
    pub stage_run_fns: usize,
    /// Fns reachable from a `Stage::run` impl.
    pub stage_reachable_fns: usize,
    /// `#[target_feature]` fn definitions.
    pub target_feature_fns: usize,
    /// Calls to `#[target_feature]` fns dominated by the full
    /// `is_x86_feature_detected!` set.
    pub guarded_calls: usize,
    /// Calls to `#[target_feature]` fns missing a guard — the deny gate
    /// holds this at zero.
    pub unguarded_calls: usize,
}

impl GraphSummary {
    /// One-object JSON rendering (the artifact published next to the
    /// JSONL findings report).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"callgraph\",\"nodes\":{},\"edges\":{},\"stage_run_fns\":{},\"stage_reachable_fns\":{},\"target_feature_fns\":{},\"guarded_calls\":{},\"unguarded_calls\":{}}}\n",
            self.nodes,
            self.edges,
            self.stage_run_fns,
            self.stage_reachable_fns,
            self.target_feature_fns,
            self.guarded_calls,
            self.unguarded_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use std::path::PathBuf;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(rel), rel.into(), FileKind::Lib, src)
    }

    #[test]
    fn reachability_crosses_files_and_finds_probes() {
        let a = file(
            "crates/a/src/lib.rs",
            "struct S;\nimpl Stage for S {\n    fn run(&self) { helper(); }\n}\n",
        );
        let b = file(
            "crates/b/src/lib.rs",
            "pub fn helper() { budget.probe(\"x\"); }\npub fn unrelated() { spin(); }\npub fn spin() {}\n",
        );
        let g = CallGraph::build(&[a, b]);
        assert_eq!(g.stage_run.len(), 1);
        let helper = g.node_id("crates/b/src/lib.rs", 1).unwrap();
        let unrelated = g.node_id("crates/b/src/lib.rs", 2).unwrap();
        let run = g.node_id("crates/a/src/lib.rs", 3).unwrap();
        assert!(g.stage_reachable[helper]);
        assert!(g.stage_reachable[run]);
        assert!(!g.stage_reachable[unrelated]);
        assert!(g.reaches_probe[helper]);
        assert!(g.reaches_probe[run], "probe reachable through helper");
        assert!(!g.reaches_probe[unrelated]);
    }

    #[test]
    fn name_collisions_resolve_to_every_definition() {
        let a = file("a.rs", "fn go() { work(); }\nfn work() {}\n");
        let b = file("b.rs", "fn work() { probe(); }\n");
        let g = CallGraph::build(&[a, b]);
        let go = g.node_id("a.rs", 1).unwrap();
        assert_eq!(g.edges[go].len(), 2, "both `work` definitions are callees");
        assert!(g.reaches_probe[go], "over-approximate, never under");
    }
}
