//! CLI entry point: `cargo run -p vaer-lint -- [--deny] [--format json]`.

use std::process::ExitCode;
use vaer_lint::{all_rules, Engine};

const USAGE: &str = "vaer-lint — static analysis for the VAER workspace

USAGE:
    cargo run -p vaer-lint -- [OPTIONS]

OPTIONS:
    --root <path>      Workspace root to scan (default: .)
    --format <fmt>     Output format: human (default) or json (JSONL)
    --graph <path>     Write the call-graph summary (JSON) to <path>
    --deny             Exit nonzero when any deny-level finding remains
    --list-rules       Print the rule catalogue and exit
    --help             Show this help
";

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut format = String::from("human");
    let mut graph_path: Option<String> = None;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = v,
                None => return fail("--root needs a value"),
            },
            "--graph" => match args.next() {
                Some(v) => graph_path = Some(v),
                None => return fail("--graph needs a value"),
            },
            "--format" => match args.next() {
                Some(v) if v == "human" || v == "json" => format = v,
                Some(v) => return fail(&format!("unknown format '{v}' (human|json)")),
                None => return fail("--format needs a value"),
            },
            "--deny" => deny = true,
            "--list-rules" => {
                for rule in all_rules() {
                    println!("{:<20} {}", rule.id(), rule.description());
                }
                println!(
                    "{:<20} allow markers must name a real rule and carry a -- reason",
                    "bare-allow"
                );
                println!(
                    "{:<20} registry entries must be referenced by code",
                    "stale-registry"
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }
    let engine = match Engine::new(&root) {
        Ok(e) => e,
        Err(e) => return fail(&e),
    };
    let report = match engine.run() {
        Ok(r) => r,
        Err(e) => return fail(&format!("scan failed: {e}")),
    };
    match format.as_str() {
        "json" => print!("{}", report.jsonl()),
        _ => print!("{}", report.human()),
    }
    if let Some(path) = graph_path {
        if let Err(e) = std::fs::write(&path, report.graph.to_json()) {
            return fail(&format!("writing {path}: {e}"));
        }
    }
    let denials = report.denials().count();
    if deny && denials > 0 {
        eprintln!("vaer-lint: {denials} deny-level finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("vaer-lint: {msg}");
    eprint!("{USAGE}");
    ExitCode::FAILURE
}
