//! The semantic rule set: rules that consume the item tree and call
//! graph (`syntax.rs` / `callgraph.rs`) rather than raw token windows.
//!
//! These four rules turn hand-maintained safety conventions into
//! machine-checked contracts:
//!
//! - `feature-guard-dominance` — every call to a `#[target_feature]` fn
//!   is dominated by `is_x86_feature_detected!` checks covering the
//!   callee's full feature set (or the caller itself enables them).
//! - `unsafe-ledger-sync` — `UNSAFE_LEDGER.md` rows and actual unsafe /
//!   `target_feature` sites are diffed both ways: unsafe without a row,
//!   rows whose named constructs vanished, and rows pointing at moved
//!   or cleaned-up files (the last two via the engine pass) all fail.
//! - `atomic-ordering-policy` — every `Ordering::*` argument is checked
//!   against the `[atomics."<prefix>"]` policy table in `lints.toml`;
//!   atomics in an undeclared module are themselves a finding.
//! - `cancel-probe-coverage` — every sufficiently large loop in a fn
//!   reachable from a `Stage::run` impl must contain a `CancelToken` /
//!   `RunBudget` probe call, directly or through a callee that probes
//!   (call-graph reachability, not per-file grepping).

use crate::config::{AtomicsPolicy, ATOMIC_ORDERINGS};
use crate::report::Finding;
use crate::rules::{code, finding, in_use_decl, Context, Rule};
use crate::scanner::TokKind;
use crate::source::{FileKind, SourceFile};
use crate::syntax::{Call, FnItem};
use std::collections::BTreeMap;

/// Collects `#[target_feature]` fns by name across the workspace. A
/// name defined twice with different sets requires the union — the
/// over-approximation errs toward demanding more guarding, never less.
pub fn collect_feature_fns(files: &[SourceFile]) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for file in files {
        for f in &file.tree.fns {
            if f.features.is_empty() {
                continue;
            }
            let entry = out.entry(f.name.clone()).or_default();
            for feat in &f.features {
                if !entry.contains(feat) {
                    entry.push(feat.clone());
                }
            }
        }
    }
    out
}

/// The features `call` requires but is not guarded for: `None` when the
/// callee is not a `#[target_feature]` fn, `Some(vec![])` when fully
/// dominated (guard regions at the call line plus the caller's own
/// feature set cover the callee's requirements), `Some(missing)` when a
/// path reaches the intrinsic without proof the CPU supports it.
pub(crate) fn missing_guard_features(
    file: &SourceFile,
    caller: &FnItem,
    call: &Call,
    feature_fns: &BTreeMap<String, Vec<String>>,
) -> Option<Vec<String>> {
    let required = feature_fns.get(&call.name)?;
    let guarded = file.tree.guard_features_at(call.line);
    Some(
        required
            .iter()
            .filter(|r| !guarded.contains(&r.as_str()) && !caller.features.iter().any(|c| c == *r))
            .cloned()
            .collect(),
    )
}

/// Counts (guarded, unguarded) calls to `#[target_feature]` fns across
/// the workspace — the call-graph summary's headline numbers.
pub fn feature_call_counts(
    files: &[SourceFile],
    feature_fns: &BTreeMap<String, Vec<String>>,
) -> (usize, usize) {
    let mut guarded = 0usize;
    let mut unguarded = 0usize;
    for file in files {
        for f in &file.tree.fns {
            for call in &f.calls {
                match missing_guard_features(file, f, call, feature_fns) {
                    Some(missing) if missing.is_empty() => guarded += 1,
                    Some(_) => unguarded += 1,
                    None => {}
                }
            }
        }
    }
    (guarded, unguarded)
}

/// safety: a `#[target_feature(enable = "X")]` fn compiled for X may use
/// instructions the running CPU lacks; calling one is only sound after a
/// dynamic `is_x86_feature_detected!("X")` check (or from a caller that
/// already enables X). The rule demands the *exact* feature set: a
/// weaker guard (`avx2` around an `avx512vnni` kernel) is a finding.
pub struct FeatureGuardDominance;

impl Rule for FeatureGuardDominance {
    fn id(&self) -> &'static str {
        "feature-guard-dominance"
    }
    fn description(&self) -> &'static str {
        "calls to #[target_feature] fns need a dominating is_x86_feature_detected! guard for the full set"
    }
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
        // Applies to every file kind and to test code: an unguarded
        // tier call SIGILLs on older CPUs wherever it lives.
        for f in &file.tree.fns {
            for call in &f.calls {
                let Some(missing) = missing_guard_features(file, f, call, &ctx.feature_fns) else {
                    continue;
                };
                if missing.is_empty() {
                    continue;
                }
                out.push(finding(
                    file,
                    self.id(),
                    call.line,
                    format!(
                        "call to `{}` is not dominated by is_x86_feature_detected! checks for {}; guard the call or enable the feature on `{}`",
                        call.name,
                        quote_list(&missing),
                        f.name
                    ),
                ));
            }
        }
    }
}

/// safety: `UNSAFE_LEDGER.md` is the single audit surface for unsafe
/// code, so it must stay in sync mechanically. This per-file half flags
/// unsafe surface without a ledger row and rows whose backticked
/// construct names no longer appear in the file; the engine pass
/// (`check_ledger_rows`) flags rows pointing at moved or cleaned files.
pub struct UnsafeLedgerSync;

impl Rule for UnsafeLedgerSync {
    fn id(&self) -> &'static str {
        "unsafe-ledger-sync"
    }
    fn description(&self) -> &'static str {
        "UNSAFE_LEDGER.md rows must match actual unsafe/target_feature sites (missing, stale, or moved rows fail)"
    }
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
        if !ctx.has_ledger {
            return;
        }
        let rows: Vec<_> = ctx
            .ledger_rows
            .iter()
            .filter(|r| r.file == file.rel)
            .collect();
        if file.tree.has_unsafe_surface() && rows.is_empty() {
            let line = file
                .tree
                .unsafe_lines
                .iter()
                .chain(&file.tree.target_feature_lines)
                .min()
                .copied()
                .unwrap_or(1);
            out.push(finding(
                file,
                self.id(),
                line,
                format!(
                    "unsafe surface in `{}` has no UNSAFE_LEDGER.md row; add one describing the construct and its audit story",
                    file.rel
                ),
            ));
        }
        for row in rows {
            for ident in construct_idents(&row.construct) {
                if !file.src.contains(&ident) {
                    out.push(Finding {
                        rule: self.id(),
                        level: crate::config::Level::Deny,
                        file: "UNSAFE_LEDGER.md".into(),
                        line: row.line,
                        message: format!(
                            "ledger row for `{}` names `{ident}`, which no longer appears in the file; update the row to match the code",
                            file.rel
                        ),
                    });
                }
            }
        }
    }
}

/// Identifier-shaped backticked names in a ledger row's construct cell
/// (length >= 3, word characters only) — the claims the row makes about
/// what the file contains, checked by substring against the source.
pub(crate) fn construct_idents(construct: &str) -> Vec<String> {
    construct
        .split('`')
        .skip(1)
        .step_by(2)
        .filter(|s| s.len() >= 3 && s.chars().all(|c| c.is_alphanumeric() || c == '_'))
        .map(str::to_string)
        .collect()
}

/// concurrency: memory orderings are a per-module design decision (the
/// alloc hook must never synchronize, the fault checkpoint seal needs
/// Release), not a per-call-site improvisation. Every `Ordering::*`
/// argument must fall under a declared `[atomics."<prefix>"]` policy in
/// `lints.toml` allowing that variant.
pub struct AtomicOrderingPolicy;

impl Rule for AtomicOrderingPolicy {
    fn id(&self) -> &'static str {
        "atomic-ordering-policy"
    }
    fn description(&self) -> &'static str {
        "Ordering::* arguments must match the module's declared [atomics] policy in lints.toml"
    }
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let code = code(file);
        let uses = in_use_decl(&code);
        for i in 0..code.len().saturating_sub(3) {
            if !code[i].is_ident("Ordering")
                || !code[i + 1].is_punct(":")
                || !code[i + 2].is_punct(":")
                || code[i + 3].kind != TokKind::Ident
                || uses[i]
                || file.is_test_line(code[i].line)
            {
                continue;
            }
            let ord = code[i + 3].text.as_str();
            // `cmp::Ordering::{Less, Equal, Greater}` share the type
            // name but not the variants; only atomic orderings match.
            if !ATOMIC_ORDERINGS.contains(&ord) {
                continue;
            }
            let line = code[i].line;
            match policy_for(&ctx.atomics, &file.rel) {
                None => out.push(finding(
                    file,
                    self.id(),
                    line,
                    format!(
                        "`Ordering::{ord}` in a module with no declared atomics policy; add an [atomics.\"...\"] section for `{}` to lints.toml",
                        file.rel
                    ),
                )),
                Some(p) if !p.allow.iter().any(|a| a == ord) => out.push(finding(
                    file,
                    self.id(),
                    line,
                    format!(
                        "`Ordering::{ord}` violates the `[atomics.\"{}\"]` policy (allowed: {}); use an allowed ordering or change the declared policy",
                        p.prefix,
                        quote_list(&p.allow)
                    ),
                )),
                Some(_) => {}
            }
        }
    }
}

/// The policy covering `rel` — longest matching prefix wins, so a
/// file-specific row overrides its crate's row.
fn policy_for<'a>(policies: &'a [AtomicsPolicy], rel: &str) -> Option<&'a AtomicsPolicy> {
    policies
        .iter()
        .filter(|p| rel.starts_with(p.prefix.as_str()))
        .max_by_key(|p| p.prefix.len())
}

/// resilience: PR 9's contract — cancellation is cooperative, so every
/// stage-reachable loop big enough to matter must hit a `CancelToken` /
/// `RunBudget` probe. Reachability runs over the call graph: a loop
/// whose body calls a helper that probes is covered; a loop nothing
/// probes inside is a stall window the executor cannot interrupt.
pub struct CancelProbeCoverage;

impl Rule for CancelProbeCoverage {
    fn id(&self) -> &'static str {
        "cancel-probe-coverage"
    }
    fn description(&self) -> &'static str {
        "loops reachable from Stage::run above min_loop_lines must reach a CancelToken/RunBudget probe"
    }
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Finding>) {
        if file.kind != FileKind::Lib {
            return;
        }
        let g = &ctx.callgraph;
        for f in &file.tree.fns {
            let reachable = g
                .node_id(&file.rel, f.line)
                .is_some_and(|id| g.stage_reachable[id]);
            if !reachable {
                continue;
            }
            for lp in &f.loops {
                if file.is_test_line(lp.line) {
                    continue;
                }
                let span = lp.end_line.saturating_sub(lp.line) + 1;
                if span < ctx.min_loop_lines {
                    continue;
                }
                let probed = f.calls.iter().any(|c| {
                    c.line >= lp.line
                        && c.line <= lp.end_line
                        && (crate::callgraph::PROBE_NAMES.contains(&c.name.as_str())
                            || g.name_reaches_probe(&c.name))
                });
                if !probed {
                    out.push(finding(
                        file,
                        self.id(),
                        lp.line,
                        format!(
                            "{span}-line loop in stage-reachable `{}` never reaches a CancelToken/RunBudget probe; add a probe call on the loop body's path",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
}

fn quote_list(items: &[String]) -> String {
    items
        .iter()
        .map(|i| format!("`{i}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::rules::LedgerRow;
    use std::path::PathBuf;

    fn lib_file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(rel), rel.into(), FileKind::Lib, src)
    }

    fn run_on(rule: &dyn Rule, file: &SourceFile, ctx: &Context) -> Vec<Finding> {
        let mut out = Vec::new();
        rule.check(file, ctx, &mut out);
        out
    }

    const KERNELS: &str = "#[target_feature(enable = \"avx2\")]\nunsafe fn fast(_x: u32) {}\n\
                           #[target_feature(enable = \"avx512f,avx512vnni\")]\nunsafe fn faster(_x: u32) {}\n";

    #[test]
    fn feature_guard_requires_the_exact_set() {
        let src = format!(
            "{KERNELS}fn dispatch(x: u32) {{\n    if is_x86_feature_detected!(\"avx2\") {{\n        unsafe {{ fast(x) }}\n    }}\n    if is_x86_feature_detected!(\"avx2\") {{\n        unsafe {{ faster(x) }}\n    }}\n    unsafe {{ fast(x) }}\n}}\n"
        );
        let file = lib_file("crates/x/src/lib.rs", &src);
        let ctx = Context {
            feature_fns: collect_feature_fns(std::slice::from_ref(&file)),
            ..Context::default()
        };
        let f = run_on(&FeatureGuardDominance, &file, &ctx);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(
            f[0].message.contains("faster") && f[0].message.contains("avx512"),
            "weaker guard is not enough: {f:?}"
        );
        assert!(f[1].message.contains("`fast`"), "unguarded call: {f:?}");
        let (guarded, unguarded) =
            feature_call_counts(std::slice::from_ref(&file), &ctx.feature_fns);
        assert_eq!((guarded, unguarded), (1, 2));
    }

    #[test]
    fn feature_guard_accepts_callers_own_features() {
        let src = "#[target_feature(enable = \"avx2\")]\nunsafe fn inner(_x: u32) {}\n\
                   #[target_feature(enable = \"avx2\")]\nunsafe fn outer(x: u32) { unsafe { inner(x) } }\n";
        let file = lib_file("crates/x/src/lib.rs", src);
        let ctx = Context {
            feature_fns: collect_feature_fns(std::slice::from_ref(&file)),
            ..Context::default()
        };
        assert!(run_on(&FeatureGuardDominance, &file, &ctx).is_empty());
    }

    #[test]
    fn ledger_sync_flags_missing_rows_and_stale_constructs() {
        let file = lib_file(
            "crates/x/src/lib.rs",
            "pub fn read(p: *const u8) -> u8 {\n    // SAFETY: caller contract.\n    unsafe { *p }\n}\n",
        );
        let ctx = Context {
            has_ledger: true,
            ..Context::default()
        };
        let f = run_on(&UnsafeLedgerSync, &file, &ctx);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no UNSAFE_LEDGER.md row"));

        let good_row = Context {
            has_ledger: true,
            ledger_rows: vec![LedgerRow {
                file: "crates/x/src/lib.rs".into(),
                construct: "`unsafe` deref in `read`".into(),
                line: 14,
            }],
            ..Context::default()
        };
        assert!(run_on(&UnsafeLedgerSync, &file, &good_row).is_empty());

        let stale_row = Context {
            has_ledger: true,
            ledger_rows: vec![LedgerRow {
                file: "crates/x/src/lib.rs".into(),
                construct: "`unsafe` deref in `read_volatile_twice`".into(),
                line: 14,
            }],
            ..Context::default()
        };
        let f = run_on(&UnsafeLedgerSync, &file, &stale_row);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, "UNSAFE_LEDGER.md");
        assert_eq!(f[0].line, 14);
        assert!(f[0].message.contains("read_volatile_twice"));
    }

    #[test]
    fn construct_ident_extraction_keeps_names_only() {
        let c = "`unsafe` block in `i8_microkernel_vnni` behind `#[target_feature(enable = \"avx512f\")]`";
        assert_eq!(
            construct_idents(c),
            vec!["unsafe".to_string(), "i8_microkernel_vnni".to_string()]
        );
        assert!(construct_idents("plain words, no backticks").is_empty());
    }

    #[test]
    fn atomic_policy_checks_declared_and_undeclared_modules() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   pub fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n\
                   pub fn seal(c: &AtomicU64) { c.store(1, Ordering::SeqCst); }\n\
                   pub fn order(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }\n";
        let declared = lib_file("crates/obs/src/lib.rs", src);
        let ctx = Context {
            atomics: vec![AtomicsPolicy {
                prefix: "crates/obs/".into(),
                allow: vec!["Relaxed".into()],
            }],
            ..Context::default()
        };
        let f = run_on(&AtomicOrderingPolicy, &declared, &ctx);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SeqCst") && f[0].message.contains("crates/obs/"));

        let undeclared = lib_file("crates/core/src/lib.rs", src);
        let f = run_on(&AtomicOrderingPolicy, &undeclared, &ctx);
        assert_eq!(f.len(), 2, "both orderings are undeclared: {f:?}");
        assert!(f
            .iter()
            .all(|x| x.message.contains("no declared atomics policy")));
    }

    #[test]
    fn cancel_probe_walks_the_call_graph() {
        let stage = lib_file(
            "crates/a/src/lib.rs",
            "struct S;\nimpl Stage for S {\n    fn run(&self) {\n        for i in 0..10 {\n            let _ = i;\n            touch();\n            touch();\n            touch();\n        }\n        for j in 0..10 {\n            let _ = j;\n            helper();\n            touch();\n            touch();\n        }\n    }\n}\npub fn touch() {}\n",
        );
        let lib = lib_file(
            "crates/b/src/lib.rs",
            "pub fn helper(b: &Budget) { b.probe(\"b.helper\"); }\n\
             pub fn free_loop() {\n    for k in 0..10 {\n        let _ = k;\n        let _ = k;\n        let _ = k;\n        let _ = k;\n    }\n}\n",
        );
        let files = vec![stage, lib];
        let ctx = Context {
            callgraph: CallGraph::build(&files),
            min_loop_lines: 4,
            ..Context::default()
        };
        let f = run_on(&CancelProbeCoverage, &files[0], &ctx);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4, "only the probe-free loop fires: {f:?}");
        // `free_loop` is not stage-reachable, so its loop is fine.
        assert!(run_on(&CancelProbeCoverage, &files[1], &ctx).is_empty());
    }
}
