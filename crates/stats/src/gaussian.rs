//! Diagonal Gaussian distributions and the distances VAER compares them
//! with.
//!
//! The paper represents every attribute value as `N(μ, σ)` with diagonal
//! covariance (§III-A) and compares representations with the squared
//! 2-Wasserstein distance of Eq. 3:
//!
//! ```text
//! W₂²(p, q) = Σᵢ (μᵢᵖ - μᵢ𝑞)² + (σᵢᵖ - σᵢ𝑞)²
//! ```

use rand::{Rng, RngExt};

/// A k-dimensional Gaussian with diagonal covariance.
///
/// `sigma` stores standard deviations (not variances), matching the
/// parameterisation used in the paper's Eq. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagGaussian {
    /// Mean vector.
    pub mu: Vec<f32>,
    /// Per-dimension standard deviation (non-negative).
    pub sigma: Vec<f32>,
}

impl DiagGaussian {
    /// Creates a distribution; `mu` and `sigma` must have equal length.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn new(mu: Vec<f32>, sigma: Vec<f32>) -> Self {
        assert_eq!(mu.len(), sigma.len(), "mu/sigma length mismatch");
        Self { mu, sigma }
    }

    /// The standard normal `N(0, I)` in `k` dimensions.
    pub fn standard(k: usize) -> Self {
        Self {
            mu: vec![0.0; k],
            sigma: vec![1.0; k],
        }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.mu.len()
    }

    /// Draws one sample via the reparameterisation `z = μ + σ ⊙ ε`,
    /// `ε ~ N(0, I)` — the paper's Sampling layer (§III-A).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f32> {
        self.mu
            .iter()
            .zip(self.sigma.iter())
            .map(|(&m, &s)| m + s * standard_normal(rng))
            .collect()
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Squared 2-Wasserstein distance between two diagonal Gaussians (Eq. 3).
///
/// # Panics
/// Panics if dimensions differ.
pub fn w2_squared(p: &DiagGaussian, q: &DiagGaussian) -> f32 {
    assert_eq!(p.dims(), q.dims(), "w2 dimension mismatch");
    let mu_term: f32 =
        p.mu.iter()
            .zip(q.mu.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
    let sigma_term: f32 = p
        .sigma
        .iter()
        .zip(q.sigma.iter())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum();
    mu_term + sigma_term
}

/// Per-dimension squared 2-Wasserstein contributions — the paper's
/// *Distance layer* vector `d⃗ = (μˢ-μᵗ)² + (σˢ-σᵗ)²` (§IV-A).
///
/// # Panics
/// Panics when the dimensionalities differ.
pub fn w2_vector(p: &DiagGaussian, q: &DiagGaussian) -> Vec<f32> {
    assert_eq!(p.dims(), q.dims(), "w2 dimension mismatch");
    p.mu.iter()
        .zip(q.mu.iter())
        .zip(p.sigma.iter().zip(q.sigma.iter()))
        .map(|((&mp, &mq), (&sp, &sq))| (mp - mq) * (mp - mq) + (sp - sq) * (sp - sq))
        .collect()
}

/// Symmetrised Mahalanobis-style distance between two diagonal Gaussians —
/// the alternative distance mentioned in §IV-A. Each squared mean
/// difference is scaled by the average of the two variances.
///
/// # Panics
/// Panics when the dimensionalities differ.
pub fn mahalanobis_squared(p: &DiagGaussian, q: &DiagGaussian) -> f32 {
    assert_eq!(p.dims(), q.dims(), "mahalanobis dimension mismatch");
    p.mu.iter()
        .zip(q.mu.iter())
        .zip(p.sigma.iter().zip(q.sigma.iter()))
        .map(|((&mp, &mq), (&sp, &sq))| {
            let var = 0.5 * (sp * sp + sq * sq) + 1e-6;
            (mp - mq) * (mp - mq) / var
        })
        .sum()
}

/// KL divergence `KL(q ‖ N(0, I))` for a diagonal Gaussian — the
/// regulariser of Eq. 2. `sigma` entries are standard deviations.
pub fn kl_to_standard(q: &DiagGaussian) -> f32 {
    q.mu.iter()
        .zip(q.sigma.iter())
        .map(|(&m, &s)| {
            let var = (s * s).max(1e-12);
            0.5 * (m * m + var - var.ln() - 1.0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn g(mu: &[f32], sigma: &[f32]) -> DiagGaussian {
        DiagGaussian::new(mu.to_vec(), sigma.to_vec())
    }

    #[test]
    fn w2_identity_is_zero() {
        let p = g(&[1.0, 2.0], &[0.5, 0.7]);
        assert_eq!(w2_squared(&p, &p), 0.0);
    }

    #[test]
    fn w2_known_value() {
        let p = g(&[0.0, 0.0], &[1.0, 1.0]);
        let q = g(&[3.0, 4.0], &[1.0, 2.0]);
        // (9 + 16) + (0 + 1) = 26
        assert!((w2_squared(&p, &q) - 26.0).abs() < 1e-6);
    }

    #[test]
    fn w2_symmetric_and_vector_sums() {
        let p = g(&[1.0, -2.0, 0.5], &[0.1, 0.2, 0.3]);
        let q = g(&[0.0, 1.0, 2.0], &[0.4, 0.1, 0.2]);
        assert!((w2_squared(&p, &q) - w2_squared(&q, &p)).abs() < 1e-6);
        let v = w2_vector(&p, &q);
        assert_eq!(v.len(), 3);
        let sum: f32 = v.iter().sum();
        assert!((sum - w2_squared(&p, &q)).abs() < 1e-5);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn w2_positively_correlated_with_euclidean_means() {
        // The AL bootstrap (Alg. 1) relies on W₂ growing with the squared
        // Euclidean distance of the means when sigmas are equal.
        let base = g(&[0.0, 0.0], &[0.3, 0.3]);
        let near = g(&[0.1, 0.1], &[0.3, 0.3]);
        let far = g(&[2.0, 2.0], &[0.3, 0.3]);
        assert!(w2_squared(&base, &near) < w2_squared(&base, &far));
    }

    #[test]
    fn mahalanobis_scales_by_variance() {
        let tight = g(&[0.0], &[0.1]);
        let tight2 = g(&[1.0], &[0.1]);
        let wide = g(&[0.0], &[2.0]);
        let wide2 = g(&[1.0], &[2.0]);
        // Same mean gap is more significant under tighter variances.
        assert!(mahalanobis_squared(&tight, &tight2) > mahalanobis_squared(&wide, &wide2));
    }

    #[test]
    fn kl_zero_at_standard_and_positive_elsewhere() {
        let std2 = DiagGaussian::standard(2);
        assert!(kl_to_standard(&std2).abs() < 1e-6);
        let shifted = g(&[1.0, 0.0], &[1.0, 1.0]);
        assert!(kl_to_standard(&shifted) > 0.4);
        let squeezed = g(&[0.0], &[0.1]);
        assert!(kl_to_standard(&squeezed) > 0.0);
    }

    #[test]
    fn sampling_matches_moments() {
        let p = g(&[2.0, -1.0], &[0.5, 2.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = [0.0f64; 2];
        let mut sumsq = [0.0f64; 2];
        for _ in 0..n {
            let z = p.sample(&mut rng);
            for d in 0..2 {
                sum[d] += z[d] as f64;
                sumsq[d] += (z[d] as f64) * (z[d] as f64);
            }
        }
        for d in 0..2 {
            let mean = sum[d] / n as f64;
            let var = sumsq[d] / n as f64 - mean * mean;
            assert!((mean - p.mu[d] as f64).abs() < 0.05, "mean[{d}] = {mean}");
            let expected_var = (p.sigma[d] * p.sigma[d]) as f64;
            assert!(
                (var - expected_var).abs() < 0.15 * expected_var.max(0.3),
                "var[{d}] = {var}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let p = g(&[0.0], &[1.0]);
        let q = DiagGaussian::standard(2);
        w2_squared(&p, &q);
    }
}
