//! Evaluation metrics as defined in the paper's §VI-A2.

/// Precision / recall / F1 over a binary matching task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrF1 {
    /// `tp / (tp + fp)`; 0 when undefined.
    pub precision: f32,
    /// `tp / (tp + fn)`; 0 when undefined.
    pub recall: f32,
    /// Harmonic mean of precision and recall; 0 when undefined.
    pub f1: f32,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl PrF1 {
    /// Computes metrics from raw confusion counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize, tn: usize) -> Self {
        let precision = if tp + fp > 0 {
            tp as f32 / (tp + fp) as f32
        } else {
            0.0
        };
        let recall = if tp + fn_ > 0 {
            tp as f32 / (tp + fn_) as f32
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            precision,
            recall,
            f1,
            tp,
            fp,
            fn_,
            tn,
        }
    }

    /// Computes metrics from parallel `(predicted, actual)` label slices.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_labels(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "label length mismatch");
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        let mut tn = 0;
        for (&p, &a) in predicted.iter().zip(actual.iter()) {
            match (p, a) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => tn += 1,
            }
        }
        Self::from_counts(tp, fp, fn_, tn)
    }

    /// Accuracy over all four cells.
    pub fn accuracy(&self) -> f32 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f32 / total as f32
        }
    }
}

impl std::fmt::Display for PrF1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.2} R={:.2} F1={:.2}",
            self.precision, self.recall, self.f1
        )
    }
}

/// Top-K retrieval metrics for the unsupervised representation experiments
/// (Table IV / Fig. 4).
///
/// For every ground-truth duplicate pair `(s, t)`, the pair counts as
/// *recalled* if `t` appears among the top-K neighbours retrieved for `s`
/// (or vice versa — the paper measures "the top-10 most similar neighbours
/// of either of the two tuples"). Precision is measured over all retrieved
/// candidate pairs that appear in the labelled test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKReport {
    /// Fraction of labelled duplicates recovered in the top-K lists.
    pub recall: f32,
    /// Fraction of retrieved labelled pairs that are duplicates.
    pub precision: f32,
    /// Harmonic mean.
    pub f1: f32,
}

impl TopKReport {
    /// Builds a report from counts: `hits` duplicates recovered of
    /// `total_duplicates`, `retrieved_positive` labelled-positive pairs out
    /// of `retrieved_labeled` retrieved pairs with labels.
    pub fn new(
        hits: usize,
        total_duplicates: usize,
        retrieved_positive: usize,
        retrieved_labeled: usize,
    ) -> Self {
        let recall = if total_duplicates > 0 {
            hits as f32 / total_duplicates as f32
        } else {
            0.0
        };
        let precision = if retrieved_labeled > 0 {
            retrieved_positive as f32 / retrieved_labeled as f32
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            recall,
            precision,
            f1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let m = PrF1::from_labels(&[true, false, true], &[true, false, true]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn known_confusion() {
        // 2 TP, 1 FP, 1 FN, 1 TN.
        let m = PrF1::from_counts(2, 1, 1, 1);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.accuracy() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let m = PrF1::from_counts(0, 0, 0, 5);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.accuracy(), 1.0);
        let empty = PrF1::from_labels(&[], &[]);
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn from_labels_matches_manual_count() {
        let pred = [true, true, false, false, true];
        let act = [true, false, true, false, true];
        let m = PrF1::from_labels(&pred, &act);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (2, 1, 1, 1));
    }

    #[test]
    fn display_formats() {
        let m = PrF1::from_counts(1, 0, 0, 0);
        assert_eq!(m.to_string(), "P=1.00 R=1.00 F1=1.00");
    }

    #[test]
    fn topk_report() {
        let r = TopKReport::new(8, 10, 8, 16);
        assert!((r.recall - 0.8).abs() < 1e-6);
        assert!((r.precision - 0.5).abs() < 1e-6);
        assert!(r.f1 > 0.6 && r.f1 < 0.63);
        let zero = TopKReport::new(0, 0, 0, 0);
        assert_eq!(zero.f1, 0.0);
    }
}
