//! Bootstrap resampling for metric confidence intervals.
//!
//! Scaled-down benchmarks have small test sets, so point estimates of
//! F1 carry real sampling noise; the experiment harnesses can attach
//! percentile-bootstrap intervals to make "A beats B" claims honest.

use crate::metrics::PrF1;
use rand::{RngExt, SeedableRng};

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f32,
    /// Point estimate (on the full sample).
    pub point: f32,
    /// Upper bound.
    pub hi: f32,
}

impl ConfidenceInterval {
    /// Whether another interval overlaps this one.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Percentile-bootstrap interval for F1 at the given `level` (e.g. 0.95),
/// resampling `(predicted, actual)` pairs with replacement `iters` times.
///
/// # Panics
/// Panics on length mismatch or `level` outside `(0, 1)`.
pub fn bootstrap_f1(
    predicted: &[bool],
    actual: &[bool],
    iters: usize,
    level: f32,
    seed: u64,
) -> ConfidenceInterval {
    assert_eq!(predicted.len(), actual.len(), "label length mismatch");
    assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
    let point = PrF1::from_labels(predicted, actual).f1;
    let n = predicted.len();
    if n == 0 || iters == 0 {
        return ConfidenceInterval {
            lo: point,
            point,
            hi: point,
        };
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(iters);
    let mut pred_buf = vec![false; n];
    let mut act_buf = vec![false; n];
    for _ in 0..iters {
        for i in 0..n {
            let j = rng.random_range(0..n);
            pred_buf[i] = predicted[j];
            act_buf[i] = actual[j];
        }
        samples.push(PrF1::from_labels(&pred_buf, &act_buf).f1);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f32| -> usize { ((samples.len() as f32 - 1.0) * q).round() as usize };
    ConfidenceInterval {
        lo: samples[idx(alpha)],
        point,
        hi: samples[idx(1.0 - alpha)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_degenerate_interval() {
        let labels = vec![true, false, true, false, true];
        let ci = bootstrap_f1(&labels, &labels, 200, 0.95, 1);
        assert_eq!(ci.point, 1.0);
        assert_eq!(ci.lo, 1.0);
        assert_eq!(ci.hi, 1.0);
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let predicted = vec![true, true, false, false, true, false, true, false];
        let actual = vec![true, false, false, true, true, false, true, true];
        let ci = bootstrap_f1(&predicted, &actual, 500, 0.9, 2);
        assert!(ci.lo <= ci.point, "{ci:?}");
        assert!(ci.point <= ci.hi, "{ci:?}");
        assert!(
            ci.lo < ci.hi,
            "non-trivial data should give a real interval"
        );
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let predicted = vec![
            true, true, false, false, true, false, true, true, false, true,
        ];
        let actual = vec![
            true, false, false, true, true, false, true, true, true, false,
        ];
        let narrow = bootstrap_f1(&predicted, &actual, 800, 0.5, 3);
        let wide = bootstrap_f1(&predicted, &actual, 800, 0.99, 3);
        assert!(wide.hi - wide.lo >= narrow.hi - narrow.lo);
    }

    #[test]
    fn empty_input_is_safe() {
        let ci = bootstrap_f1(&[], &[], 100, 0.95, 4);
        assert_eq!(ci.point, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let predicted = vec![true, false, true, false];
        let actual = vec![true, true, false, false];
        let a = bootstrap_f1(&predicted, &actual, 300, 0.95, 7);
        let b = bootstrap_f1(&predicted, &actual, 300, 0.95, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn overlap_logic() {
        let a = ConfidenceInterval {
            lo: 0.1,
            point: 0.2,
            hi: 0.3,
        };
        let b = ConfidenceInterval {
            lo: 0.25,
            point: 0.3,
            hi: 0.5,
        };
        let c = ConfidenceInterval {
            lo: 0.4,
            point: 0.5,
            hi: 0.6,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }
}
