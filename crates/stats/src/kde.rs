//! Univariate Gaussian kernel density estimation.
//!
//! The active-learning sampler (paper §V-B3, Eq. 6) estimates the density
//! `f̂⁺(d)` of Euclidean distances between sampled duplicate
//! representations, then scores unlabeled candidates by how likely their
//! distance is under that density. Bandwidth defaults to Silverman's rule
//! of thumb (Silverman 1986), the reference the paper cites.

/// A fitted univariate Gaussian KDE.
#[derive(Debug, Clone)]
pub struct Kde {
    points: Vec<f32>,
    bandwidth: f32,
}

impl Kde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth
    /// `h = 0.9 · min(σ̂, IQR/1.34) · n^(-1/5)`.
    ///
    /// Returns `None` for an empty sample. Degenerate samples (all points
    /// identical) get a small floor bandwidth so the density stays proper.
    pub fn fit(samples: &[f32]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f32;
        let mean = samples.iter().sum::<f32>() / n;
        let std = (samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n)
            .sqrt();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let iqr = percentile(&sorted, 0.75) - percentile(&sorted, 0.25);
        let spread = if iqr > 0.0 { std.min(iqr / 1.34) } else { std };
        let bandwidth = (0.9 * spread * n.powf(-0.2)).max(1e-3);
        Some(Self {
            points: samples.to_vec(),
            bandwidth,
        })
    }

    /// Fits with an explicit bandwidth (must be positive).
    ///
    /// # Panics
    /// Panics if `bandwidth <= 0`.
    pub fn with_bandwidth(samples: &[f32], bandwidth: f32) -> Option<Self> {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        if samples.is_empty() {
            return None;
        }
        Some(Self {
            points: samples.to_vec(),
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f32 {
        self.bandwidth
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the KDE has no support points (never true for a fitted KDE).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Density estimate `f̂(x)`.
    pub fn density(&self, x: f32) -> f32 {
        let h = self.bandwidth;
        let norm = 1.0 / ((self.points.len() as f32) * h * (std::f32::consts::TAU).sqrt());
        self.points
            .iter()
            .map(|&p| {
                let u = (x - p) / h;
                (-0.5 * u * u).exp()
            })
            .sum::<f32>()
            * norm
    }

    /// Density normalised so the modal support point scores ≈ 1; handy as
    /// a bounded likelihood score in the AL sampler.
    pub fn relative_density(&self, x: f32) -> f32 {
        let peak = self
            .points
            .iter()
            .map(|&p| self.density(p))
            .fold(0.0f32, f32::max);
        if peak <= f32::EPSILON {
            0.0
        } else {
            (self.density(x) / peak).min(1.0)
        }
    }
}

fn percentile(sorted: &[f32], q: f32) -> f32 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_peaks_near_data() {
        let kde = Kde::fit(&[0.0, 0.1, -0.1, 0.05, -0.05]).unwrap();
        assert!(kde.density(0.0) > kde.density(2.0));
        assert!(kde.density(0.0) > kde.density(-2.0));
    }

    #[test]
    fn density_integrates_to_one() {
        let kde = Kde::fit(&[1.0, 2.0, 3.0, 2.5, 1.5]).unwrap();
        // Trapezoidal integration over a generous range.
        let (lo, hi, steps) = (-5.0f32, 10.0f32, 3000);
        let dx = (hi - lo) / steps as f32;
        let integral: f32 = (0..=steps)
            .map(|i| {
                let x = lo + i as f32 * dx;
                let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
                w * kde.density(x)
            })
            .sum::<f32>()
            * dx;
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn empty_sample_returns_none() {
        assert!(Kde::fit(&[]).is_none());
        assert!(Kde::with_bandwidth(&[], 1.0).is_none());
    }

    #[test]
    fn degenerate_sample_has_floor_bandwidth() {
        let kde = Kde::fit(&[2.0, 2.0, 2.0]).unwrap();
        assert!(kde.bandwidth() >= 1e-3);
        assert!(kde.density(2.0).is_finite());
    }

    #[test]
    fn relative_density_bounded() {
        let kde = Kde::fit(&[0.0, 1.0, 2.0, 1.0, 1.0]).unwrap();
        for x in [-3.0f32, 0.0, 1.0, 2.0, 5.0] {
            let r = kde.relative_density(x);
            assert!((0.0..=1.0).contains(&r), "relative density {r} at {x}");
        }
        assert!(kde.relative_density(1.0) > kde.relative_density(5.0));
    }

    #[test]
    fn explicit_bandwidth_respected() {
        let kde = Kde::with_bandwidth(&[0.0], 0.5).unwrap();
        assert_eq!(kde.bandwidth(), 0.5);
        assert_eq!(kde.len(), 1);
    }

    #[test]
    #[should_panic]
    fn non_positive_bandwidth_panics() {
        Kde::with_bandwidth(&[1.0], 0.0);
    }
}
