//! Prediction entropy (paper Eq. 5).

/// Binary prediction entropy in nats:
/// `H(p) = -p ln p - (1-p) ln(1-p)`.
///
/// This is the informativeness measure of Eq. 5 — maximal (`ln 2`) at
/// `p = 0.5`, zero at `p ∈ {0, 1}`. Inputs outside `[0, 1]` are clamped.
pub fn binary_entropy(p: f32) -> f32 {
    let p = p.clamp(0.0, 1.0);
    let term = |x: f32| if x <= 0.0 { 0.0 } else { -x * x.ln() };
    term(p) + term(1.0 - p)
}

/// Entropy of a discrete distribution (in nats). Zero/negative weights are
/// ignored; the distribution is normalised internally.
pub fn discrete_entropy(weights: &[f32]) -> f32 {
    let total: f32 = weights.iter().filter(|&&w| w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| {
            let p = w / total;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_at_half() {
        let h = binary_entropy(0.5);
        assert!((h - std::f32::consts::LN_2).abs() < 1e-6);
        assert!(binary_entropy(0.3) < h);
        assert!(binary_entropy(0.9) < h);
    }

    #[test]
    fn zero_at_certainty() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
    }

    #[test]
    fn symmetric() {
        for p in [0.1f32, 0.25, 0.4] {
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-6);
        }
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(binary_entropy(-0.5), 0.0);
        assert_eq!(binary_entropy(1.5), 0.0);
    }

    #[test]
    fn discrete_uniform_is_log_n() {
        let h = discrete_entropy(&[1.0, 1.0, 1.0, 1.0]);
        assert!((h - 4.0f32.ln()).abs() < 1e-6);
        assert_eq!(discrete_entropy(&[]), 0.0);
        assert_eq!(discrete_entropy(&[0.0, 0.0]), 0.0);
        // Degenerate distribution has zero entropy.
        assert!(discrete_entropy(&[5.0, 0.0]).abs() < 1e-6);
    }
}
