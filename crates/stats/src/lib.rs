//! Probability and evaluation utilities for VAER.
//!
//! Everything statistical the paper needs outside the neural nets lives
//! here:
//!
//! - [`gaussian`] — diagonal Gaussians, the squared 2-Wasserstein distance
//!   of Eq. 3, the Mahalanobis alternative mentioned in §IV-A, and
//!   reparameterised sampling,
//! - [`kde`] — Gaussian kernel density estimation with Silverman's rule
//!   (used by the active-learning diversity score, Eq. 6),
//! - [`entropy`] — the binary prediction entropy of Eq. 5,
//! - [`metrics`] — precision/recall/F1 and recall@K as defined in §VI-A2,
//! - [`resample`] — bootstrap confidence intervals for honest comparisons
//!   on the scaled-down test sets.

pub mod entropy;
pub mod gaussian;
pub mod kde;
pub mod metrics;
pub mod resample;
