//! Data-parallel minibatch gradients: one autodiff tape per batch shard.
//!
//! A minibatch whose loss is a *mean over rows* can be split into
//! contiguous row shards, each shard run forward/backward on its own
//! [`Graph`], and the per-shard parameter gradients merged as a weighted
//! sum (`shard_len / batch_len`) — algebraically the full-batch gradient.
//! Shards execute on the [`vaer_linalg::runtime`] worker pool; merging
//! always happens in fixed shard order, so the result is deterministic
//! for a given seed and thread count. With a single shard (one thread, or
//! a batch smaller than two shards' worth of rows) the closure runs
//! inline on the caller's tape layout and the result is **bit-identical**
//! to the serial step.

use crate::graph::{Graph, Tensor};
use crate::params::ParamId;
use std::ops::Range;
use std::sync::Mutex;
use vaer_linalg::{runtime, Matrix};

/// Minimum batch rows per gradient shard: below this the tape set-up cost
/// dominates the matmul work and sharding would only add overhead.
pub const MIN_SHARD_ROWS: usize = 32;

/// The merged result of a sharded forward/backward pass.
#[derive(Debug, Clone)]
pub struct ShardedStep {
    /// Batch-mean loss (per-shard losses weighted by shard size).
    pub loss: f32,
    /// Parameter gradients merged over shards in fixed shard order,
    /// ready for [`crate::Optimizer::step`].
    pub grads: Vec<(ParamId, Matrix)>,
}

/// Runs `build` once per contiguous shard of `0..batch_len` (in parallel
/// when the runtime has threads to spare), backpropagates each shard's
/// tape, and merges losses and parameter gradients weighted by
/// `shard_len / batch_len`.
///
/// `build(graph, rows)` must assemble the forward pass for batch rows
/// `rows` and return the scalar loss tensor. The loss **must be a mean
/// over the shard's rows** (e.g. mean squared error, mean BCE) — that is
/// what makes the weighted merge equal the full-batch gradient. Inputs
/// the shards share (the batch matrix, noise draws) should be prepared
/// once outside and sliced by `rows` inside, so the RNG stream does not
/// depend on the shard count.
pub fn sharded_step<F>(batch_len: usize, build: F) -> ShardedStep
where
    F: Fn(&mut Graph, Range<usize>) -> Tensor + Sync,
{
    sharded_step_pooled(&mut GraphPool::new(), batch_len, build)
}

/// A pool of reusable autodiff tapes, one per shard slot.
///
/// [`sharded_step_pooled`] pins shard *i* of every step to slot *i*, so
/// across a training run each tape settles into the buffer sizes of its
/// shard and stops allocating (see [`Graph::reset`]). The mutexes are
/// uncontended by construction — shard indices are distinct within a
/// step — and exist only to satisfy `Sync`.
#[derive(Default)]
pub struct GraphPool {
    slots: Vec<Mutex<Graph>>,
}

impl GraphPool {
    /// An empty pool; slots are created on first use.
    pub fn new() -> Self {
        Self { slots: Vec::new() }
    }

    /// Ensures at least `n` slots exist.
    fn ensure(&mut self, n: usize) {
        while self.slots.len() < n {
            self.slots.push(Mutex::new(Graph::new()));
        }
    }

    /// Total buffer requests across all slots that could not be served
    /// from a tape's pool without allocating (see [`Graph::fresh_allocs`]).
    pub fn fresh_allocs(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.lock().expect("graph slot poisoned").fresh_allocs()) // vaer-lint: allow(panic) -- poisoning implies a shard worker already panicked; that panic propagates
            .sum()
    }

    /// Total buffer requests across all slots (see [`Graph::buf_requests`]).
    /// With [`GraphPool::fresh_allocs`] this yields the tape-pool hit
    /// rate the trainers report: `1 - fresh_allocs / buf_requests`.
    pub fn buf_requests(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.lock().expect("graph slot poisoned").buf_requests()) // vaer-lint: allow(panic) -- poisoning implies a shard worker already panicked; that panic propagates
            .sum()
    }
}

/// [`sharded_step`] with caller-owned tapes: shard *i* runs on
/// `pool` slot *i*, which is [`reset`](Graph::reset) (not reallocated)
/// before building. Use one `GraphPool` per training loop to make the
/// per-step tape allocation cost vanish after the first epoch. Results
/// are identical to [`sharded_step`] — buffer reuse never changes
/// values, as the tape tests assert bitwise.
pub fn sharded_step_pooled<F>(pool: &mut GraphPool, batch_len: usize, build: F) -> ShardedStep
where
    F: Fn(&mut Graph, Range<usize>) -> Tensor + Sync,
{
    pool.ensure(runtime::shard_count(batch_len, MIN_SHARD_ROWS));
    let slots = &pool.slots;
    let shards = runtime::map_shards_indexed(batch_len, MIN_SHARD_ROWS, |slot, rows| {
        let mut g = slots[slot].lock().expect("graph slot poisoned"); // vaer-lint: allow(panic) -- poisoning implies a shard worker already panicked; that panic propagates
        g.reset();
        let loss = build(&mut g, rows.clone());
        let loss_value = g.value(loss).get(0, 0);
        g.backward(loss);
        (rows.len(), loss_value, g.param_grads())
    });
    if shards.len() == 1 {
        // Serial fast path: no weighting, bit-identical to an unsharded step.
        let (_, loss, grads) = shards.into_iter().next().expect("one shard"); // vaer-lint: allow(panic) -- shards.len() == 1 checked on the previous line
        return ShardedStep { loss, grads };
    }
    let mut loss = 0.0f32;
    let mut merged: Vec<(ParamId, Matrix)> = Vec::new();
    for (len, shard_loss, grads) in shards {
        let w = len as f32 / batch_len.max(1) as f32;
        loss += w * shard_loss;
        for (id, g) in grads {
            match merged.iter_mut().find(|(pid, _)| *pid == id) {
                Some((_, total)) => total.axpy_inplace(w, &g),
                None => {
                    let mut scaled = Matrix::zeros(g.rows(), g.cols());
                    scaled.axpy_inplace(w, &g);
                    merged.push((id, scaled));
                }
            }
        }
    }
    ShardedStep {
        loss,
        grads: merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Optimizer, ParamStore};
    use vaer_linalg::XorShiftRng;

    /// Serialises tests that touch the process-global thread override.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A least-squares step: loss = mean((x·w - y)²) over the batch.
    fn lsq_step(store: &ParamStore, w: ParamId, x: &Matrix, y: &Matrix) -> ShardedStep {
        sharded_step(x.rows(), |g, rows| {
            let xt = g.input(x.slice_rows(rows.start, rows.end));
            let yt = g.input(y.slice_rows(rows.start, rows.end));
            let wt = g.param(store, w);
            let pred = g.matmul(xt, wt);
            let diff = g.sub(pred, yt);
            let sq = g.square(diff);
            g.mean_all(sq)
        })
    }

    fn toy_problem(n: usize) -> (ParamStore, ParamId, Matrix, Matrix) {
        let mut rng = XorShiftRng::new(0xD0D0);
        let x = Matrix::gaussian(n, 6, &mut rng);
        let true_w = Matrix::gaussian(6, 2, &mut rng);
        let y = x.matmul(&true_w);
        let mut store = ParamStore::new();
        let w = store.add("lsq.w", Matrix::gaussian(6, 2, &mut rng));
        (store, w, x, y)
    }

    #[test]
    fn one_shard_matches_serial_bit_for_bit() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let (store, w, x, y) = toy_problem(128);
        runtime::set_threads(1);
        let sharded = lsq_step(&store, w, &x, &y);
        runtime::set_threads(0);
        // Reference: the same graph built in one piece, no runtime involved.
        let mut g = Graph::new();
        let xt = g.input(x.clone());
        let yt = g.input(y.clone());
        let wt = g.param(&store, w);
        let pred = g.matmul(xt, wt);
        let diff = g.sub(pred, yt);
        let sq = g.square(diff);
        let loss = g.mean_all(sq);
        let loss_value = g.value(loss).get(0, 0);
        g.backward(loss);
        let serial = g.param_grads();
        assert_eq!(sharded.loss, loss_value);
        assert_eq!(sharded.grads.len(), serial.len());
        for ((ida, ga), (idb, gb)) in sharded.grads.iter().zip(&serial) {
            assert_eq!(ida, idb);
            assert_eq!(ga.as_slice(), gb.as_slice(), "gradients differ bitwise");
        }
    }

    #[test]
    fn four_shards_match_single_shard_within_tolerance() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let (store, w, x, y) = toy_problem(4 * MIN_SHARD_ROWS);
        runtime::set_threads(1);
        let serial = lsq_step(&store, w, &x, &y);
        runtime::set_threads(4);
        let sharded = lsq_step(&store, w, &x, &y);
        runtime::set_threads(0);
        assert!((sharded.loss - serial.loss).abs() < 1e-5, "loss mismatch");
        assert_eq!(sharded.grads.len(), serial.grads.len());
        for ((ida, ga), (idb, gb)) in sharded.grads.iter().zip(&serial.grads) {
            assert_eq!(ida, idb);
            for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
                assert!((a - b).abs() < 1e-5, "grad {a} vs {b}");
            }
        }
    }

    #[test]
    fn pooled_step_matches_unpooled_and_stops_allocating() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        // Part of the VAER_OBS=off contract: a warm training step must do
        // zero heap allocations AND leave zero telemetry records behind.
        vaer_obs::set_level(vaer_obs::Level::Off);
        vaer_obs::reset();
        let (store, w, x, y) = toy_problem(4 * MIN_SHARD_ROWS);
        let step = |pool: &mut GraphPool| {
            sharded_step_pooled(pool, x.rows(), |g, rows| {
                let xt = g.input_rows(&x, rows.start, rows.end);
                let yt = g.input_rows(&y, rows.start, rows.end);
                let wt = g.param(&store, w);
                let pred = g.matmul(xt, wt);
                let diff = g.sub(pred, yt);
                let sq = g.square(diff);
                g.mean_all(sq)
            })
        };
        for threads in [1usize, 4] {
            runtime::set_threads(threads);
            let reference = lsq_step(&store, w, &x, &y);
            let mut pool = GraphPool::new();
            let first = step(&mut pool);
            let warm = pool.fresh_allocs();
            let second = step(&mut pool);
            let third = step(&mut pool);
            runtime::set_threads(0);
            assert_eq!(
                pool.fresh_allocs(),
                warm,
                "pooled tapes allocated after warm-up at {threads} threads"
            );
            for s in [&first, &second, &third] {
                assert_eq!(s.loss, reference.loss, "loss at {threads} threads");
                assert_eq!(s.grads.len(), reference.grads.len());
                for ((ida, ga), (idb, gb)) in s.grads.iter().zip(&reference.grads) {
                    assert_eq!(ida, idb);
                    assert_eq!(ga.as_slice(), gb.as_slice(), "grads differ bitwise");
                }
            }
        }
        assert_eq!(
            vaer_obs::records_len(),
            0,
            "VAER_OBS=off must record no spans or events"
        );
    }

    #[test]
    fn sharded_training_converges_at_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1usize, 3] {
            runtime::set_threads(threads);
            let (mut store, w, x, y) = toy_problem(96);
            let mut adam = Adam::with_rate(5e-2);
            let mut last = f32::INFINITY;
            for _ in 0..200 {
                let step = lsq_step(&store, w, &x, &y);
                last = step.loss;
                adam.step(&mut store, &step.grads);
            }
            assert!(last < 1e-2, "loss {last} with {threads} threads");
        }
        runtime::set_threads(0);
    }
}
