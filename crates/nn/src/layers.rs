//! Layer abstractions over the tape: dense layers and MLPs.

use crate::graph::{Graph, Tensor};
use crate::init::Initializer;
use crate::params::{ParamId, ParamStore};
use crate::NnRng;

/// A fully-connected layer `y = x W + b`.
///
/// Parameters are registered in a [`ParamStore`] under
/// `"{name}.w"` / `"{name}.b"`, which is the contract the transfer-learning
/// code relies on when copying encoder weights between stores.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight parameter handle (`in_dim x out_dim`).
    pub w: ParamId,
    /// Bias parameter handle (`1 x out_dim`).
    pub b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Registers a new dense layer in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Initializer,
        rng: &mut NnRng,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init.sample(in_dim, out_dim, rng));
        let b = store.add(
            format!("{name}.b"),
            Initializer::Zeros.sample(1, out_dim, rng),
        );
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Rebinds an existing layer from a store by name.
    ///
    /// Returns `None` if either parameter is missing.
    pub fn from_store(store: &ParamStore, name: &str) -> Option<Self> {
        let w = store.find(&format!("{name}.w"))?;
        let b = store.find(&format!("{name}.b"))?;
        let (in_dim, out_dim) = store.get(w).shape();
        Some(Self {
            w,
            b,
            in_dim,
            out_dim,
        })
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer on the tape, binding parameters from `store`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Tensor) -> Tensor {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let xw = g.matmul(x, w);
        g.add_bias(xw, b)
    }
}

/// Activation applied between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no activation).
    Linear,
}

impl Activation {
    fn apply(self, g: &mut Graph, x: Tensor) -> Tensor {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Linear => x,
        }
    }
}

/// Configuration for an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Sizes of every layer boundary, e.g. `[in, hidden, out]`.
    pub dims: Vec<usize>,
    /// Activation between hidden layers.
    pub hidden_activation: Activation,
    /// Activation after the final layer (usually `Linear`; losses that need
    /// probabilities should work on logits via `bce_with_logits`).
    pub output_activation: Activation,
    /// Initialiser for the weights.
    pub init: Initializer,
}

impl MlpConfig {
    /// ReLU-hidden, linear-output MLP with He init.
    pub fn relu(dims: Vec<usize>) -> Self {
        Self {
            dims,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Linear,
            init: Initializer::He,
        }
    }
}

/// A multi-layer perceptron: a stack of [`Dense`] layers with activations.
///
/// This is the "two-layer MLP with non-linear activation functions" used by
/// the paper's Matching layer (§IV-A) and by the baselines' classifiers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl Mlp {
    /// Registers a new MLP in `store` under `"{name}.{i}"` layer names.
    ///
    /// # Panics
    /// Panics if `config.dims` has fewer than two entries.
    pub fn new(store: &mut ParamStore, name: &str, config: &MlpConfig, rng: &mut NnRng) -> Self {
        assert!(config.dims.len() >= 2, "MLP needs at least [in, out] dims");
        let layers = config
            .dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense::new(store, &format!("{name}.{i}"), w[0], w[1], config.init, rng))
            .collect();
        Self {
            layers,
            hidden_activation: config.hidden_activation,
            output_activation: config.output_activation,
        }
    }

    /// Rebinds an MLP with `n_layers` layers from a store by name.
    pub fn from_store(
        store: &ParamStore,
        name: &str,
        n_layers: usize,
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Option<Self> {
        let layers: Option<Vec<Dense>> = (0..n_layers)
            .map(|i| Dense::from_store(store, &format!("{name}.{i}")))
            .collect();
        Some(Self {
            layers: layers?,
            hidden_activation,
            output_activation,
        })
    }

    /// Number of dense layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Parameter names, in forward order (`w` then `b` per layer).
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(|l| [l.w, l.b]).collect()
    }

    /// Applies the MLP on the tape, binding parameters from `store`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, mut x: Tensor) -> Tensor {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, store, x);
            x = if i == last {
                self.output_activation.apply(g, x)
            } else {
                self.hidden_activation.apply(g, x)
            };
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Optimizer, SeedableRng};
    use vaer_linalg::Matrix;

    #[test]
    fn dense_forward_shape_and_value() {
        let mut store = ParamStore::new();
        let mut rng = NnRng::seed_from_u64(0);
        let layer = Dense::new(&mut store, "fc", 3, 2, Initializer::Zeros, &mut rng);
        // Zero weights + zero bias => zero output.
        let mut g = Graph::new();
        let x = g.input(Matrix::filled(4, 3, 1.0));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (4, 2));
        assert_eq!(g.value(y).sum(), 0.0);
        assert_eq!(layer.in_dim(), 3);
        assert_eq!(layer.out_dim(), 2);
    }

    #[test]
    fn dense_from_store_round_trip() {
        let mut store = ParamStore::new();
        let mut rng = NnRng::seed_from_u64(1);
        let a = Dense::new(&mut store, "enc", 4, 2, Initializer::Xavier, &mut rng);
        let b = Dense::from_store(&store, "enc").unwrap();
        assert_eq!(a.w, b.w);
        assert_eq!(a.b, b.b);
        assert!(Dense::from_store(&store, "missing").is_none());
    }

    #[test]
    fn mlp_learns_xor() {
        let mut store = ParamStore::new();
        let mut rng = NnRng::seed_from_u64(42);
        let mlp = Mlp::new(
            &mut store,
            "xor",
            &MlpConfig {
                dims: vec![2, 8, 1],
                hidden_activation: Activation::Tanh,
                output_activation: Activation::Linear,
                init: Initializer::Xavier,
            },
            &mut rng,
        );
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut adam = Adam::with_rate(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            let mut g = Graph::new();
            let xt = g.input(x.clone());
            let logits = mlp.forward(&mut g, &store, xt);
            let loss = g.bce_with_logits(logits, y.clone());
            final_loss = g.value(loss).get(0, 0);
            g.backward(loss);
            adam.step(&mut store, &g.param_grads());
        }
        assert!(final_loss < 0.1, "XOR did not converge: loss {final_loss}");
        // Predictions round to the right classes.
        let mut g = Graph::new();
        let xt = g.input(x);
        let logits = mlp.forward(&mut g, &store, xt);
        let probs = g.sigmoid(logits);
        let p = g.value(probs);
        for (i, &target) in [0.0f32, 1.0, 1.0, 0.0].iter().enumerate() {
            let pred = if p.get(i, 0) > 0.5 { 1.0 } else { 0.0 };
            assert_eq!(pred, target, "row {i}: p = {}", p.get(i, 0));
        }
    }

    #[test]
    fn mlp_param_ids_cover_all_layers() {
        let mut store = ParamStore::new();
        let mut rng = NnRng::seed_from_u64(5);
        let mlp = Mlp::new(&mut store, "m", &MlpConfig::relu(vec![3, 4, 2]), &mut rng);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.param_ids().len(), 4);
    }
}
