//! Persistent parameter storage with binary save/load.
//!
//! Transfer learning (paper §III-D) is "serialise the representation
//! model's `ParamStore`, deserialise it in another ER task" — so the store
//! owns a small, versioned, dependency-free binary format.

use crate::NnError;
use vaer_linalg::Matrix;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) lookup table,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) checksum of `bytes`, as appended to every VAER binary
/// format (`ParamStore`, optimizer state, checkpoint envelopes) so that
/// torn writes and bit-flips are detected at load time instead of
/// surfacing as a silently-wrong model.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

#[derive(Debug, Clone)]
struct Param {
    name: String,
    value: Matrix,
}

/// Owns all trainable parameters of one or more models.
///
/// Parameters are identified by dense [`ParamId`]s (for hot-path access)
/// and by `name` (for serialisation and cross-store transfer).
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    ///
    /// # Panics
    /// Panics if `name` is already registered; parameter names are the
    /// serialisation key and must be unique.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let name = name.into();
        assert!(
            self.find(&name).is_none(),
            "parameter '{name}' is already registered"
        );
        self.params.push(Param { name, value });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.as_slice().len()).sum()
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p.name == name).map(ParamId)
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Immutable access to a parameter's value.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter's value.
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| (ParamId(i), p.name.as_str(), &p.value))
    }

    /// Copies values (matched by name) from `other` into this store.
    ///
    /// Used for transfer learning: a freshly-built model adopts the weights
    /// of a previously trained one. Shapes must match.
    ///
    /// # Errors
    /// [`NnError::UnknownParam`] if a name in `names` is missing from either
    /// store, [`NnError::BadFormat`] on shape mismatch.
    pub fn copy_from(&mut self, other: &ParamStore, names: &[&str]) -> Result<(), NnError> {
        for &name in names {
            let src = other
                .find(name)
                .ok_or_else(|| NnError::UnknownParam(name.into()))?;
            let dst = self
                .find(name)
                .ok_or_else(|| NnError::UnknownParam(name.into()))?;
            let src_shape = other.get(src).shape();
            let dst_shape = self.get(dst).shape();
            if src_shape != dst_shape {
                return Err(NnError::BadFormat(format!(
                    "parameter '{name}' shape mismatch: {src_shape:?} vs {dst_shape:?}"
                )));
            }
            *self.get_mut(dst) = other.get(src).clone();
        }
        Ok(())
    }

    /// Serialises the store to a versioned binary blob.
    ///
    /// Layout: magic `VAERNN2\0`, then `u32` param count, then per param:
    /// `u32` name length + UTF-8 name, `u32` rows, `u32` cols, and
    /// little-endian `f32` data; the blob ends with a `u32` [`crc32`] of
    /// everything before it, so corruption (bit-flips, torn writes) is
    /// detected at load time.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.num_weights() * 4);
        out.extend_from_slice(b"VAERNN2\0");
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for p in &self.params {
            out.extend_from_slice(&(p.name.len() as u32).to_le_bytes());
            out.extend_from_slice(p.name.as_bytes());
            out.extend_from_slice(&(p.value.rows() as u32).to_le_bytes());
            out.extend_from_slice(&(p.value.cols() as u32).to_le_bytes());
            for &v in p.value.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserialises a store previously produced by [`ParamStore::to_bytes`].
    ///
    /// Accepts both the current `VAERNN2\0` format (checksummed) and the
    /// legacy `VAERNN1\0` format (no checksum) for old saved models.
    ///
    /// # Errors
    /// [`NnError::BadFormat`] / [`NnError::Truncated`] on malformed,
    /// truncated, or checksum-failing input. Never panics, whatever the
    /// bytes are.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NnError> {
        if bytes.len() < 8 {
            return Err(NnError::Truncated);
        }
        let body = match &bytes[..8] {
            b"VAERNN2\0" => {
                if bytes.len() < 12 {
                    return Err(NnError::Truncated);
                }
                let (body, tail) = bytes.split_at(bytes.len() - 4);
                let stored = u32::from_le_bytes(tail.try_into().unwrap()); // vaer-lint: allow(panic) -- split_at leaves exactly 4 bytes; infallible
                if crc32(body) != stored {
                    return Err(NnError::BadFormat(
                        "ParamStore checksum mismatch (corrupt or torn data)".into(),
                    ));
                }
                body
            }
            b"VAERNN1\0" => bytes,
            _ => return Err(NnError::BadFormat("missing VAERNN magic".into())),
        };
        let mut cur = Cursor {
            bytes: body,
            pos: 8,
        };
        let count = cur.u32()? as usize;
        let mut store = ParamStore::new();
        for _ in 0..count {
            let name_len = cur.u32()? as usize;
            let name_bytes = cur.take(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| NnError::BadFormat("non-UTF8 parameter name".into()))?
                .to_string();
            if store.find(&name).is_some() {
                return Err(NnError::BadFormat(format!(
                    "duplicate parameter name '{name}'"
                )));
            }
            let rows = cur.u32()? as usize;
            let cols = cur.u32()? as usize;
            let data = cur.f32s(rows, cols)?;
            store.add(name, Matrix::from_vec(rows, cols, data));
        }
        if cur.pos != body.len() {
            return Err(NnError::BadFormat("trailing bytes after parameters".into()));
        }
        Ok(store)
    }
}

pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], NnError> {
        let end = self.pos.checked_add(n).ok_or(NnError::Truncated)?;
        if end > self.bytes.len() {
            return Err(NnError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, NnError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap())) // vaer-lint: allow(panic) -- take(4) yields exactly 4 bytes; infallible
    }

    pub(crate) fn u64(&mut self) -> Result<u64, NnError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap())) // vaer-lint: allow(panic) -- take(8) yields exactly 8 bytes; infallible
    }

    pub(crate) fn f32(&mut self) -> Result<f32, NnError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap())) // vaer-lint: allow(panic) -- take(4) yields exactly 4 bytes; infallible
    }

    /// Reads `rows × cols` little-endian `f32`s. The byte count is checked
    /// (and the multiplication overflow-guarded) *before* allocating, so a
    /// corrupt shape field cannot trigger a huge allocation.
    pub(crate) fn f32s(&mut self, rows: usize, cols: usize) -> Result<Vec<f32>, NnError> {
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| NnError::BadFormat("shape overflow".into()))?;
        let nbytes = n.checked_mul(4).ok_or(NnError::Truncated)?;
        let raw = self.take(nbytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap())) // vaer-lint: allow(panic) -- chunks_exact(4) yields 4-byte slices; infallible
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.add("w", Matrix::filled(2, 3, 0.5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_weights(), 6);
        assert_eq!(s.find("w"), Some(id));
        assert_eq!(s.find("nope"), None);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.get(id).shape(), (2, 3));
    }

    #[test]
    #[should_panic]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        s.add("w", Matrix::zeros(1, 1));
        s.add("w", Matrix::zeros(1, 1));
    }

    #[test]
    fn serialization_round_trip() {
        let mut s = ParamStore::new();
        s.add("enc.w", Matrix::from_rows(&[&[1.0, -2.5], &[3.25, 4.0]]));
        s.add("enc.b", Matrix::from_rows(&[&[0.125, 7.0]]));
        let bytes = s.to_bytes();
        let back = ParamStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        let id = back.find("enc.w").unwrap();
        assert_eq!(back.get(id), s.get(s.find("enc.w").unwrap()));
        assert_eq!(back.name(back.find("enc.b").unwrap()), "enc.b");
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(matches!(
            ParamStore::from_bytes(b"nope"),
            Err(NnError::Truncated)
        ));
        assert!(matches!(
            ParamStore::from_bytes(b"XXXXXXXX\x01\x00\x00\x00"),
            Err(NnError::BadFormat(_))
        ));
        // Valid magic but truncated payload (detected by the checksum).
        let mut s = ParamStore::new();
        s.add("w", Matrix::filled(4, 4, 1.0));
        let mut bytes = s.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(ParamStore::from_bytes(&bytes).is_err());
        // Every single-bit flip anywhere in the blob is caught by the CRC.
        let good = s.to_bytes();
        for pos in [0, 8, 12, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            assert!(
                ParamStore::from_bytes(&bad).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn deserialize_rejects_duplicate_names_without_panicking() {
        // Hand-build a legacy (un-checksummed) blob declaring "w" twice.
        let mut bytes: Vec<u8> = b"VAERNN1\0".to_vec();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for _ in 0..2 {
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.push(b'w');
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.extend_from_slice(&1.0f32.to_le_bytes());
        }
        assert!(matches!(
            ParamStore::from_bytes(&bytes),
            Err(NnError::BadFormat(_))
        ));
    }

    #[test]
    fn deserialize_rejects_huge_shape_without_allocating() {
        // A corrupt shape field claiming ~10^18 weights must fail fast on
        // the remaining-bytes check, not attempt the allocation.
        let mut bytes: Vec<u8> = b"VAERNN1\0".to_vec();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'w');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(ParamStore::from_bytes(&bytes).is_err());
    }

    #[test]
    fn copy_from_by_name() {
        let mut src = ParamStore::new();
        src.add("a", Matrix::filled(2, 2, 9.0));
        src.add("b", Matrix::filled(1, 1, 3.0));
        let mut dst = ParamStore::new();
        dst.add("a", Matrix::zeros(2, 2));
        dst.add("c", Matrix::zeros(1, 1));
        dst.copy_from(&src, &["a"]).unwrap();
        assert_eq!(dst.get(dst.find("a").unwrap()).get(0, 0), 9.0);
        assert!(dst.copy_from(&src, &["missing"]).is_err());
        // Shape mismatch is rejected.
        let mut bad = ParamStore::new();
        bad.add("a", Matrix::zeros(3, 3));
        assert!(matches!(
            bad.copy_from(&src, &["a"]),
            Err(NnError::BadFormat(_))
        ));
    }
}
