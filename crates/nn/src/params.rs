//! Persistent parameter storage with binary save/load.
//!
//! Transfer learning (paper §III-D) is "serialise the representation
//! model's `ParamStore`, deserialise it in another ER task" — so the store
//! owns a small, versioned, dependency-free binary format.

use crate::NnError;
use vaer_linalg::Matrix;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

#[derive(Debug, Clone)]
struct Param {
    name: String,
    value: Matrix,
}

/// Owns all trainable parameters of one or more models.
///
/// Parameters are identified by dense [`ParamId`]s (for hot-path access)
/// and by `name` (for serialisation and cross-store transfer).
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    ///
    /// # Panics
    /// Panics if `name` is already registered; parameter names are the
    /// serialisation key and must be unique.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let name = name.into();
        assert!(
            self.find(&name).is_none(),
            "parameter '{name}' is already registered"
        );
        self.params.push(Param { name, value });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.as_slice().len()).sum()
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p.name == name).map(ParamId)
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Immutable access to a parameter's value.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter's value.
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| (ParamId(i), p.name.as_str(), &p.value))
    }

    /// Copies values (matched by name) from `other` into this store.
    ///
    /// Used for transfer learning: a freshly-built model adopts the weights
    /// of a previously trained one. Shapes must match.
    ///
    /// # Errors
    /// [`NnError::UnknownParam`] if a name in `names` is missing from either
    /// store, [`NnError::BadFormat`] on shape mismatch.
    pub fn copy_from(&mut self, other: &ParamStore, names: &[&str]) -> Result<(), NnError> {
        for &name in names {
            let src = other
                .find(name)
                .ok_or_else(|| NnError::UnknownParam(name.into()))?;
            let dst = self
                .find(name)
                .ok_or_else(|| NnError::UnknownParam(name.into()))?;
            let src_shape = other.get(src).shape();
            let dst_shape = self.get(dst).shape();
            if src_shape != dst_shape {
                return Err(NnError::BadFormat(format!(
                    "parameter '{name}' shape mismatch: {src_shape:?} vs {dst_shape:?}"
                )));
            }
            *self.get_mut(dst) = other.get(src).clone();
        }
        Ok(())
    }

    /// Serialises the store to a versioned binary blob.
    ///
    /// Layout: magic `VAERNN1\0`, then `u32` param count, then per param:
    /// `u32` name length + UTF-8 name, `u32` rows, `u32` cols, and
    /// little-endian `f32` data.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.num_weights() * 4);
        out.extend_from_slice(b"VAERNN1\0");
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for p in &self.params {
            out.extend_from_slice(&(p.name.len() as u32).to_le_bytes());
            out.extend_from_slice(p.name.as_bytes());
            out.extend_from_slice(&(p.value.rows() as u32).to_le_bytes());
            out.extend_from_slice(&(p.value.cols() as u32).to_le_bytes());
            for &v in p.value.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Deserialises a store previously produced by [`ParamStore::to_bytes`].
    ///
    /// # Errors
    /// [`NnError::BadFormat`] / [`NnError::Truncated`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NnError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let magic = cur.take(8)?;
        if magic != b"VAERNN1\0" {
            return Err(NnError::BadFormat("missing VAERNN1 magic".into()));
        }
        let count = cur.u32()? as usize;
        let mut store = ParamStore::new();
        for _ in 0..count {
            let name_len = cur.u32()? as usize;
            let name_bytes = cur.take(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| NnError::BadFormat("non-UTF8 parameter name".into()))?
                .to_string();
            let rows = cur.u32()? as usize;
            let cols = cur.u32()? as usize;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| NnError::BadFormat("shape overflow".into()))?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(f32::from_le_bytes(cur.take(4)?.try_into().unwrap()));
            }
            store.add(name, Matrix::from_vec(rows, cols, data));
        }
        Ok(store)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NnError> {
        if self.pos + n > self.bytes.len() {
            return Err(NnError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, NnError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.add("w", Matrix::filled(2, 3, 0.5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_weights(), 6);
        assert_eq!(s.find("w"), Some(id));
        assert_eq!(s.find("nope"), None);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.get(id).shape(), (2, 3));
    }

    #[test]
    #[should_panic]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        s.add("w", Matrix::zeros(1, 1));
        s.add("w", Matrix::zeros(1, 1));
    }

    #[test]
    fn serialization_round_trip() {
        let mut s = ParamStore::new();
        s.add("enc.w", Matrix::from_rows(&[&[1.0, -2.5], &[3.25, 4.0]]));
        s.add("enc.b", Matrix::from_rows(&[&[0.125, 7.0]]));
        let bytes = s.to_bytes();
        let back = ParamStore::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        let id = back.find("enc.w").unwrap();
        assert_eq!(back.get(id), s.get(s.find("enc.w").unwrap()));
        assert_eq!(back.name(back.find("enc.b").unwrap()), "enc.b");
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(matches!(
            ParamStore::from_bytes(b"nope"),
            Err(NnError::Truncated)
        ));
        assert!(matches!(
            ParamStore::from_bytes(b"XXXXXXXX\x01\x00\x00\x00"),
            Err(NnError::BadFormat(_))
        ));
        // Valid magic but truncated payload.
        let mut s = ParamStore::new();
        s.add("w", Matrix::filled(4, 4, 1.0));
        let mut bytes = s.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            ParamStore::from_bytes(&bytes),
            Err(NnError::Truncated)
        ));
    }

    #[test]
    fn copy_from_by_name() {
        let mut src = ParamStore::new();
        src.add("a", Matrix::filled(2, 2, 9.0));
        src.add("b", Matrix::filled(1, 1, 3.0));
        let mut dst = ParamStore::new();
        dst.add("a", Matrix::zeros(2, 2));
        dst.add("c", Matrix::zeros(1, 1));
        dst.copy_from(&src, &["a"]).unwrap();
        assert_eq!(dst.get(dst.find("a").unwrap()).get(0, 0), 9.0);
        assert!(dst.copy_from(&src, &["missing"]).is_err());
        // Shape mismatch is rejected.
        let mut bad = ParamStore::new();
        bad.add("a", Matrix::zeros(3, 3));
        assert!(matches!(
            bad.copy_from(&src, &["a"]),
            Err(NnError::BadFormat(_))
        ));
    }
}
