//! Mini-batch iteration and simple training-loop helpers.

use rand::RngExt;

/// Yields shuffled mini-batches of indices over `n` examples.
///
/// The final batch may be smaller than `batch_size`. Shuffling uses the
/// supplied RNG so epochs are reproducible.
///
/// # Panics
/// Panics when `batch_size == 0`.
pub fn minibatches(n: usize, batch_size: usize, rng: &mut crate::NnRng) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch_size must be > 0");
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    order.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// Exponentially-smoothed loss tracker for early stopping.
#[derive(Debug, Clone)]
pub struct LossTracker {
    alpha: f32,
    smoothed: Option<f32>,
    best: f32,
    stall: usize,
    patience: usize,
}

impl LossTracker {
    /// Tracker with smoothing factor `alpha` and early-stop `patience`
    /// (number of consecutive non-improving updates tolerated).
    pub fn new(alpha: f32, patience: usize) -> Self {
        Self {
            alpha,
            smoothed: None,
            best: f32::INFINITY,
            stall: 0,
            patience,
        }
    }

    /// Records a loss value; returns `true` if training should stop.
    pub fn update(&mut self, loss: f32) -> bool {
        let s = match self.smoothed {
            Some(prev) => self.alpha * loss + (1.0 - self.alpha) * prev,
            None => loss,
        };
        self.smoothed = Some(s);
        if s < self.best - 1e-6 {
            self.best = s;
            self.stall = 0;
        } else {
            self.stall += 1;
        }
        self.stall > self.patience
    }

    /// Current smoothed loss, if any update has been recorded.
    pub fn smoothed(&self) -> Option<f32> {
        self.smoothed
    }

    /// Best smoothed loss seen.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    #[test]
    fn minibatches_cover_all_indices_once() {
        let mut rng = crate::NnRng::seed_from_u64(0);
        let batches = minibatches(10, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches.last().unwrap().len(), 1);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn minibatches_shuffle_differs_across_rngs() {
        let a = minibatches(100, 100, &mut crate::NnRng::seed_from_u64(1));
        let b = minibatches(100, 100, &mut crate::NnRng::seed_from_u64(2));
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn minibatches_empty_input() {
        let mut rng = crate::NnRng::seed_from_u64(0);
        assert!(minibatches(0, 4, &mut rng).is_empty());
    }

    #[test]
    #[should_panic]
    fn minibatches_zero_batch_panics() {
        let mut rng = crate::NnRng::seed_from_u64(0);
        minibatches(10, 0, &mut rng);
    }

    #[test]
    fn loss_tracker_stops_on_plateau() {
        let mut t = LossTracker::new(1.0, 3);
        assert!(!t.update(1.0));
        assert!(!t.update(0.5)); // improvement
        assert!(!t.update(0.5));
        assert!(!t.update(0.5));
        assert!(!t.update(0.5));
        assert!(t.update(0.5)); // patience exceeded
        assert_eq!(t.best(), 0.5);
        assert_eq!(t.smoothed(), Some(0.5));
    }

    #[test]
    fn loss_tracker_keeps_going_while_improving() {
        let mut t = LossTracker::new(1.0, 2);
        for i in 0..50 {
            assert!(!t.update(1.0 / (i + 1) as f32));
        }
    }
}
