//! A small reverse-mode automatic-differentiation engine and neural-network
//! toolkit, built for VAER's models.
//!
//! The paper trains three kinds of networks (a VAE representation model, a
//! Siamese matcher with shared encoder heads, and MLP classifiers inside the
//! baselines). All are dense-layer networks over 2-D batches, so the engine
//! is organised around a define-by-run tape ([`Graph`]) over
//! [`vaer_linalg::Matrix`] values:
//!
//! 1. Persistent parameters live in a [`ParamStore`] (with [`Adam`]/[`Sgd`]
//!    state and binary save/load for transfer learning).
//! 2. Each training step binds parameters into a [`Graph`], runs forward
//!    ops, and calls [`Graph::backward`] on a scalar loss. Hot loops reuse
//!    one tape per shard slot via [`Graph::reset`] / [`GraphPool`], so the
//!    per-step heap traffic drops to zero after warm-up.
//! 3. Accumulated parameter gradients are applied by an [`Optimizer`].
//!
//! Binding the *same* [`ParamId`] into a graph twice — as the Siamese
//! matcher does for its two encoder heads — accumulates both heads'
//! gradients, which is exactly the "mirrored parameter updating" of the
//! paper's §IV-A.
//!
//! # Example: gradient steps on a tiny regression
//!
//! ```
//! use vaer_linalg::Matrix;
//! use vaer_nn::{Adam, Dense, Graph, Initializer, Optimizer, ParamStore, SeedableRng};
//!
//! let mut store = ParamStore::new();
//! let mut rng = vaer_nn::NnRng::seed_from_u64(0);
//! let layer = Dense::new(&mut store, "fc", 2, 1, Initializer::Xavier, &mut rng);
//! let mut adam = Adam::with_rate(0.01);
//!
//! let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let y = Matrix::from_rows(&[&[1.0], &[0.0]]);
//! for _ in 0..10 {
//!     let mut g = Graph::new();
//!     let xt = g.input(x.clone());
//!     let pred = layer.forward(&mut g, &store, xt);
//!     let yt = g.input(y.clone());
//!     let diff = g.sub(pred, yt);
//!     let sq = g.square(diff);
//!     let loss = g.mean_all(sq);
//!     g.backward(loss);
//!     adam.step(&mut store, &g.param_grads());
//! }
//! ```

mod graph;
mod init;
mod layers;
mod optim;
pub mod parallel;
mod params;
pub mod schedule;

pub use graph::{Graph, Tensor};
pub use init::Initializer;
pub use layers::{Dense, Mlp, MlpConfig};
pub use optim::{clip_grad_norm, Adam, Optimizer, Sgd};
pub use parallel::{sharded_step, sharded_step_pooled, GraphPool, ShardedStep};
pub use params::{crc32, ParamId, ParamStore};

/// The RNG used for parameter initialisation and sampling throughout
/// `vaer-nn` (re-exported so callers seed consistently).
pub type NnRng = rand::rngs::StdRng;
pub use rand::SeedableRng;

/// Errors from model (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// The byte stream did not start with the expected magic/version.
    BadFormat(String),
    /// The byte stream ended prematurely.
    Truncated,
    /// A parameter referenced by name was not found in the store.
    UnknownParam(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::BadFormat(why) => write!(f, "bad model format: {why}"),
            NnError::Truncated => write!(f, "model byte stream truncated"),
            NnError::UnknownParam(name) => write!(f, "unknown parameter: {name}"),
        }
    }
}

impl std::error::Error for NnError {}
