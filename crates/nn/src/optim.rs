//! First-order optimizers: SGD (with optional momentum) and Adam.
//!
//! The paper trains every model with Adam at learning rate `0.001`
//! (Table III); [`Adam::paper_defaults`] mirrors that configuration.

use crate::params::{Cursor, ParamId, ParamStore};
use crate::NnError;
use vaer_linalg::Matrix;

/// A gradient-descent optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update from accumulated `(param, gradient)` pairs.
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// SGD with the given rate and no momentum.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn slot(&mut self, id: ParamId, shape: (usize, usize)) -> &mut Matrix {
        if self.velocity.len() <= id.0 {
            self.velocity.resize(id.0 + 1, None);
        }
        self.velocity[id.0].get_or_insert_with(|| Matrix::zeros(shape.0, shape.1))
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        for (id, grad) in grads {
            if self.momentum > 0.0 {
                let m = self.momentum;
                let v = self.slot(*id, grad.shape());
                *v = v.scale(m);
                v.axpy_inplace(1.0, grad);
                let vc = v.clone();
                store.get_mut(*id).axpy_inplace(-self.lr, &vc);
            } else {
                store.get_mut(*id).axpy_inplace(-self.lr, grad);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction and optional decoupled
/// weight decay (AdamW; Loshchilov & Hutter, 2019).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with custom hyper-parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables decoupled (AdamW-style) weight decay: every updated
    /// parameter additionally shrinks by `lr · decay` per step.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        self.weight_decay = decay;
        self
    }

    /// Adam with standard `β₁ = 0.9, β₂ = 0.999, ε = 1e-8` at rate `lr`.
    pub fn with_rate(lr: f32) -> Self {
        Self::new(lr, 0.9, 0.999, 1e-8)
    }

    /// The paper's configuration: Adam at learning rate `0.001` (Table III).
    pub fn paper_defaults() -> Self {
        Self::with_rate(1e-3)
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Serialises the full optimizer state — hyper-parameters, step count
    /// (the schedule position for bias correction), and first/second
    /// moments — so a *mid-training* model can round-trip through disk.
    ///
    /// Layout: magic `VAERADM1`, `f32` lr/β₁/β₂/ε/weight-decay, `u64` t,
    /// `u32` slot count, then per slot a `u8` presence flag followed (when
    /// present) by `u32` rows, `u32` cols, and the `m` then `v` moment
    /// matrices as little-endian `f32`s; ends with a `u32`
    /// [`crc32`](crate::crc32) of everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"VAERADM1");
        for h in [self.lr, self.beta1, self.beta2, self.eps, self.weight_decay] {
            out.extend_from_slice(&h.to_le_bytes());
        }
        out.extend_from_slice(&self.t.to_le_bytes());
        out.extend_from_slice(&(self.m.len() as u32).to_le_bytes());
        for (m, v) in self.m.iter().zip(&self.v) {
            match (m, v) {
                (Some(m), Some(v)) => {
                    out.push(1);
                    out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
                    out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
                    for &x in m.as_slice() {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                    for &x in v.as_slice() {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                _ => out.push(0),
            }
        }
        let crc = crate::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserialises optimizer state produced by [`Adam::to_bytes`].
    ///
    /// # Errors
    /// [`NnError::BadFormat`] / [`NnError::Truncated`] on malformed,
    /// truncated, or checksum-failing input. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NnError> {
        if bytes.len() < 12 {
            return Err(NnError::Truncated);
        }
        if &bytes[..8] != b"VAERADM1" {
            return Err(NnError::BadFormat("missing VAERADM1 magic".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().unwrap()); // vaer-lint: allow(panic) -- split_at leaves exactly 4 bytes; infallible
        if crate::crc32(body) != stored {
            return Err(NnError::BadFormat(
                "Adam state checksum mismatch (corrupt or torn data)".into(),
            ));
        }
        let mut cur = Cursor {
            bytes: body,
            pos: 8,
        };
        let lr = cur.f32()?;
        let beta1 = cur.f32()?;
        let beta2 = cur.f32()?;
        let eps = cur.f32()?;
        let weight_decay = cur.f32()?;
        let t = cur.u64()?;
        let slots = cur.u32()? as usize;
        let mut m = Vec::new();
        let mut v = Vec::new();
        for _ in 0..slots {
            let present = cur.take(1)?[0];
            match present {
                0 => {
                    m.push(None);
                    v.push(None);
                }
                1 => {
                    let rows = cur.u32()? as usize;
                    let cols = cur.u32()? as usize;
                    let md = cur.f32s(rows, cols)?;
                    let vd = cur.f32s(rows, cols)?;
                    m.push(Some(Matrix::from_vec(rows, cols, md)));
                    v.push(Some(Matrix::from_vec(rows, cols, vd)));
                }
                other => {
                    return Err(NnError::BadFormat(format!(
                        "bad moment presence flag {other}"
                    )))
                }
            }
        }
        if cur.pos != body.len() {
            return Err(NnError::BadFormat(
                "trailing bytes after optimizer state".into(),
            ));
        }
        Ok(Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t,
            m,
            v,
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (id, grad) in grads {
            if self.m.len() <= id.0 {
                self.m.resize(id.0 + 1, None);
                self.v.resize(id.0 + 1, None);
            }
            let (rows, cols) = grad.shape();
            let m = self.m[id.0].get_or_insert_with(|| Matrix::zeros(rows, cols));
            for (mi, &gi) in m.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let v = self.v[id.0].get_or_insert_with(|| Matrix::zeros(rows, cols));
            for (vi, &gi) in v.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let m = self.m[id.0].as_ref().expect("just initialised"); // vaer-lint: allow(panic) -- initialised unconditionally a few lines above
            let v = self.v[id.0].as_ref().expect("just initialised"); // vaer-lint: allow(panic) -- initialised unconditionally a few lines above
            let p = store.get_mut(*id);
            let decay = self.lr * self.weight_decay;
            for ((pi, &mi), &vi) in p
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let m_hat = mi / b1t;
                let v_hat = vi / b2t;
                *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps) + decay * *pi;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Scales `grads` in place so their global L2 norm is at most `max_norm`
/// (standard gradient clipping; a no-op when already within bounds).
///
/// # Panics
/// Panics when `max_norm` is not positive.
pub fn clip_grad_norm(grads: &mut [(ParamId, Matrix)], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total_sq: f32 = grads
        .iter()
        .map(|(_, g)| g.as_slice().iter().map(|&x| x * x).sum::<f32>())
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for (_, g) in grads.iter_mut() {
            for x in g.as_mut_slice() {
                *x *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(p) = (p - 3)² with each optimizer; both must converge.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let id = store.add("p", Matrix::filled(1, 1, 0.0));
        for _ in 0..500 {
            let p = store.get(id).get(0, 0);
            let grad = Matrix::from_vec(1, 1, vec![2.0 * (p - 3.0)]);
            opt.step(&mut store, &[(id, grad)]);
        }
        store.get(id).get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = converges(&mut Sgd::new(0.1));
        assert!((p - 3.0).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let p = converges(&mut Sgd::with_momentum(0.05, 0.9));
        assert!((p - 3.0).abs() < 1e-2, "p = {p}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = converges(&mut Adam::with_rate(0.1));
        assert!((p - 3.0).abs() < 1e-2, "p = {p}");
    }

    #[test]
    fn adam_step_counter_and_lr() {
        let mut adam = Adam::paper_defaults();
        assert_eq!(adam.learning_rate(), 1e-3);
        adam.set_learning_rate(0.5);
        assert_eq!(adam.learning_rate(), 0.5);
        let mut store = ParamStore::new();
        let id = store.add("p", Matrix::zeros(1, 1));
        adam.step(&mut store, &[(id, Matrix::filled(1, 1, 1.0))]);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn weight_decay_shrinks_unused_directions() {
        // With zero gradients and positive decay, parameters decay toward 0.
        let mut store = ParamStore::new();
        let id = store.add("p", Matrix::filled(1, 1, 1.0));
        let mut adam = Adam::with_rate(0.1).with_weight_decay(0.5);
        for _ in 0..20 {
            adam.step(&mut store, &[(id, Matrix::zeros(1, 1))]);
        }
        let p = store.get(id).get(0, 0);
        assert!(p < 0.5, "decay did not shrink parameter: {p}");
    }

    #[test]
    fn clip_grad_norm_bounds_and_preserves_direction() {
        let mut store = ParamStore::new();
        let id = store.add("p", Matrix::zeros(1, 2));
        let _ = &store;
        let mut grads = vec![(id, Matrix::from_vec(1, 2, vec![3.0, 4.0]))];
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-5);
        let g = &grads[0].1;
        let new_norm = (g.get(0, 0).powi(2) + g.get(0, 1).powi(2)).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);
        // Direction preserved (3:4 ratio).
        assert!((g.get(0, 1) / g.get(0, 0) - 4.0 / 3.0).abs() < 1e-5);
        // No-op when within bounds.
        let mut small = vec![(id, Matrix::from_vec(1, 2, vec![0.1, 0.1]))];
        let before = small[0].1.clone();
        clip_grad_norm(&mut small, 10.0);
        assert_eq!(small[0].1, before);
    }

    #[test]
    fn adam_state_round_trips_mid_training() {
        // Take a few steps, serialise, resume, and check both copies
        // produce bit-identical parameters from identical future grads.
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::filled(2, 2, 1.0));
        let b = store.add("b", Matrix::filled(1, 3, -0.5));
        let mut adam = Adam::with_rate(0.05).with_weight_decay(0.01);
        for i in 0..7 {
            let g = Matrix::filled(2, 2, 0.1 * (i as f32 + 1.0));
            adam.step(&mut store, &[(a, g)]);
        }
        let bytes = adam.to_bytes();
        let mut resumed = Adam::from_bytes(&bytes).unwrap();
        assert_eq!(resumed.steps(), adam.steps());
        assert_eq!(resumed.learning_rate(), adam.learning_rate());
        let mut store2 = store.clone();
        let grads = vec![
            (a, Matrix::filled(2, 2, 0.3)),
            (b, Matrix::filled(1, 3, -0.2)),
        ];
        adam.step(&mut store, &grads);
        resumed.step(&mut store2, &grads);
        assert_eq!(store.to_bytes(), store2.to_bytes());
    }

    #[test]
    fn adam_state_rejects_corruption() {
        let mut store = ParamStore::new();
        let id = store.add("p", Matrix::filled(3, 2, 0.5));
        let mut adam = Adam::paper_defaults();
        adam.step(&mut store, &[(id, Matrix::filled(3, 2, 1.0))]);
        let good = adam.to_bytes();
        assert!(matches!(
            Adam::from_bytes(b"short"),
            Err(NnError::Truncated)
        ));
        assert!(matches!(
            Adam::from_bytes(b"XXXXXXXX\0\0\0\0"),
            Err(NnError::BadFormat(_))
        ));
        for pos in [0, 10, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert!(
                Adam::from_bytes(&bad).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
        let mut truncated = good.clone();
        truncated.truncate(good.len() - 5);
        assert!(Adam::from_bytes(&truncated).is_err());
    }

    #[test]
    fn adam_handles_sparse_param_ids() {
        // Params created out of order / grads for a subset only.
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 1));
        let b = store.add("b", Matrix::zeros(1, 1));
        let mut adam = Adam::with_rate(0.1);
        adam.step(&mut store, &[(b, Matrix::filled(1, 1, 1.0))]);
        assert_eq!(store.get(a).get(0, 0), 0.0);
        assert!(store.get(b).get(0, 0) < 0.0);
    }
}
