//! First-order optimizers: SGD (with optional momentum) and Adam.
//!
//! The paper trains every model with Adam at learning rate `0.001`
//! (Table III); [`Adam::paper_defaults`] mirrors that configuration.

use crate::params::{ParamId, ParamStore};
use vaer_linalg::Matrix;

/// A gradient-descent optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update from accumulated `(param, gradient)` pairs.
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// SGD with the given rate and no momentum.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn slot(&mut self, id: ParamId, shape: (usize, usize)) -> &mut Matrix {
        if self.velocity.len() <= id.0 {
            self.velocity.resize(id.0 + 1, None);
        }
        self.velocity[id.0].get_or_insert_with(|| Matrix::zeros(shape.0, shape.1))
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        for (id, grad) in grads {
            if self.momentum > 0.0 {
                let m = self.momentum;
                let v = self.slot(*id, grad.shape());
                *v = v.scale(m);
                v.axpy_inplace(1.0, grad);
                let vc = v.clone();
                store.get_mut(*id).axpy_inplace(-self.lr, &vc);
            } else {
                store.get_mut(*id).axpy_inplace(-self.lr, grad);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction and optional decoupled
/// weight decay (AdamW; Loshchilov & Hutter, 2019).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with custom hyper-parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables decoupled (AdamW-style) weight decay: every updated
    /// parameter additionally shrinks by `lr · decay` per step.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        self.weight_decay = decay;
        self
    }

    /// Adam with standard `β₁ = 0.9, β₂ = 0.999, ε = 1e-8` at rate `lr`.
    pub fn with_rate(lr: f32) -> Self {
        Self::new(lr, 0.9, 0.999, 1e-8)
    }

    /// The paper's configuration: Adam at learning rate `0.001` (Table III).
    pub fn paper_defaults() -> Self {
        Self::with_rate(1e-3)
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (id, grad) in grads {
            if self.m.len() <= id.0 {
                self.m.resize(id.0 + 1, None);
                self.v.resize(id.0 + 1, None);
            }
            let (rows, cols) = grad.shape();
            let m = self.m[id.0].get_or_insert_with(|| Matrix::zeros(rows, cols));
            for (mi, &gi) in m.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let v = self.v[id.0].get_or_insert_with(|| Matrix::zeros(rows, cols));
            for (vi, &gi) in v.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let m = self.m[id.0].as_ref().expect("just initialised");
            let v = self.v[id.0].as_ref().expect("just initialised");
            let p = store.get_mut(*id);
            let decay = self.lr * self.weight_decay;
            for ((pi, &mi), &vi) in p
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let m_hat = mi / b1t;
                let v_hat = vi / b2t;
                *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps) + decay * *pi;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Scales `grads` in place so their global L2 norm is at most `max_norm`
/// (standard gradient clipping; a no-op when already within bounds).
pub fn clip_grad_norm(grads: &mut [(ParamId, Matrix)], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total_sq: f32 = grads
        .iter()
        .map(|(_, g)| g.as_slice().iter().map(|&x| x * x).sum::<f32>())
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for (_, g) in grads.iter_mut() {
            for x in g.as_mut_slice() {
                *x *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(p) = (p - 3)² with each optimizer; both must converge.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let id = store.add("p", Matrix::filled(1, 1, 0.0));
        for _ in 0..500 {
            let p = store.get(id).get(0, 0);
            let grad = Matrix::from_vec(1, 1, vec![2.0 * (p - 3.0)]);
            opt.step(&mut store, &[(id, grad)]);
        }
        store.get(id).get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = converges(&mut Sgd::new(0.1));
        assert!((p - 3.0).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let p = converges(&mut Sgd::with_momentum(0.05, 0.9));
        assert!((p - 3.0).abs() < 1e-2, "p = {p}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = converges(&mut Adam::with_rate(0.1));
        assert!((p - 3.0).abs() < 1e-2, "p = {p}");
    }

    #[test]
    fn adam_step_counter_and_lr() {
        let mut adam = Adam::paper_defaults();
        assert_eq!(adam.learning_rate(), 1e-3);
        adam.set_learning_rate(0.5);
        assert_eq!(adam.learning_rate(), 0.5);
        let mut store = ParamStore::new();
        let id = store.add("p", Matrix::zeros(1, 1));
        adam.step(&mut store, &[(id, Matrix::filled(1, 1, 1.0))]);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn weight_decay_shrinks_unused_directions() {
        // With zero gradients and positive decay, parameters decay toward 0.
        let mut store = ParamStore::new();
        let id = store.add("p", Matrix::filled(1, 1, 1.0));
        let mut adam = Adam::with_rate(0.1).with_weight_decay(0.5);
        for _ in 0..20 {
            adam.step(&mut store, &[(id, Matrix::zeros(1, 1))]);
        }
        let p = store.get(id).get(0, 0);
        assert!(p < 0.5, "decay did not shrink parameter: {p}");
    }

    #[test]
    fn clip_grad_norm_bounds_and_preserves_direction() {
        let mut store = ParamStore::new();
        let id = store.add("p", Matrix::zeros(1, 2));
        let _ = &store;
        let mut grads = vec![(id, Matrix::from_vec(1, 2, vec![3.0, 4.0]))];
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-5);
        let g = &grads[0].1;
        let new_norm = (g.get(0, 0).powi(2) + g.get(0, 1).powi(2)).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);
        // Direction preserved (3:4 ratio).
        assert!((g.get(0, 1) / g.get(0, 0) - 4.0 / 3.0).abs() < 1e-5);
        // No-op when within bounds.
        let mut small = vec![(id, Matrix::from_vec(1, 2, vec![0.1, 0.1]))];
        let before = small[0].1.clone();
        clip_grad_norm(&mut small, 10.0);
        assert_eq!(small[0].1, before);
    }

    #[test]
    fn adam_handles_sparse_param_ids() {
        // Params created out of order / grads for a subset only.
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 1));
        let b = store.add("b", Matrix::zeros(1, 1));
        let mut adam = Adam::with_rate(0.1);
        adam.step(&mut store, &[(b, Matrix::filled(1, 1, 1.0))]);
        assert_eq!(store.get(a).get(0, 0), 0.0);
        assert!(store.get(b).get(0, 0) < 0.0);
    }
}
