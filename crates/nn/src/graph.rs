//! The define-by-run autodiff tape.
//!
//! A [`Graph`] is an append-only arena of nodes; every op pushes a node
//! holding its forward value, so node indices are already a topological
//! order and [`Graph::backward`] is a single reverse sweep.

use crate::params::{ParamId, ParamStore};
use vaer_linalg::Matrix;

/// Handle to a node (tensor) inside a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tensor(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input (no gradient requested).
    Input,
    /// Input leaf that opts into gradient recording (input sensitivities).
    InputGrad,
    /// Leaf bound to a persistent parameter.
    Param(ParamId),
    /// `A * B`.
    MatMul(usize, usize),
    /// `A + B` (same shape).
    Add(usize, usize),
    /// `A - B` (same shape).
    Sub(usize, usize),
    /// Hadamard `A ∘ B`.
    Mul(usize, usize),
    /// Element-wise `A / B`.
    Div(usize, usize),
    /// `A + 1 bᵀ` where `b` is a `1 x n` row parameter/tensor.
    AddBias(usize, usize),
    /// `max(A, 0)`.
    Relu(usize),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// Element-wise exponential.
    Exp(usize),
    /// Element-wise square.
    Square(usize),
    /// `c * A`.
    Scale(usize, f32),
    /// `A + c` element-wise.
    AddScalar(usize),
    /// Sum of all elements (scalar `1 x 1`).
    SumAll(usize),
    /// Mean of all elements (scalar `1 x 1`).
    MeanAll(usize),
    /// Per-row sum: `N x D` → `N x 1`.
    RowSum(usize),
    /// Horizontal concatenation of several tensors with equal row counts.
    ConcatCols(Vec<usize>),
    /// Column slice `[start, end)`.
    SliceCols(usize, usize, usize),
    /// Fused mean binary-cross-entropy with logits against constant targets.
    BceWithLogits { logits: usize, targets: Matrix },
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Matrix,
    /// Whether any parameter is reachable below this node; gradients are
    /// only propagated into subgraphs that need them.
    needs_grad: bool,
}

/// A single forward/backward tape.
///
/// Created per training step from a [`ParamStore`]; parameter values are
/// snapshotted into the graph at bind time (they are small relative to the
/// activations, so the copy is in the noise).
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// New empty tape.
    pub fn new() -> Self {
        Self {
            nodes: Vec::with_capacity(64),
            grads: Vec::new(),
        }
    }

    fn push(&mut self, op: Op, value: Matrix) -> Tensor {
        let needs_grad = match &op {
            Op::Input => false,
            Op::InputGrad | Op::Param(_) => true,
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::Div(a, b)
            | Op::AddBias(a, b) => self.nodes[*a].needs_grad || self.nodes[*b].needs_grad,
            Op::Relu(a)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Exp(a)
            | Op::Square(a)
            | Op::Scale(a, _)
            | Op::AddScalar(a)
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::RowSum(a)
            | Op::SliceCols(a, _, _) => self.nodes[*a].needs_grad,
            Op::ConcatCols(parts) => parts.iter().any(|&p| self.nodes[p].needs_grad),
            Op::BceWithLogits { logits, .. } => self.nodes[*logits].needs_grad,
        };
        self.nodes.push(Node {
            op,
            value,
            needs_grad,
        });
        Tensor(self.nodes.len() - 1)
    }

    /// Forward value of a tensor.
    #[inline]
    pub fn value(&self, t: Tensor) -> &Matrix {
        &self.nodes[t.0].value
    }

    /// Gradient of the last [`backward`](Self::backward) loss w.r.t. `t`.
    ///
    /// `None` if `t` did not participate in the loss or backward has not
    /// been run.
    pub fn grad(&self, t: Tensor) -> Option<&Matrix> {
        self.grads.get(t.0).and_then(|g| g.as_ref())
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- leaf constructors ------------------------------------------------

    /// A constant input. No gradient is recorded for it — backward
    /// prunes subgraphs that contain no trainable leaf, so
    /// [`grad`](Self::grad) returns `None` for plain inputs. Use
    /// [`input_with_grad`](Self::input_with_grad) when the loss's
    /// sensitivity to an input is itself of interest.
    pub fn input(&mut self, value: Matrix) -> Tensor {
        self.push(Op::Input, value)
    }

    /// An input leaf that opts into gradient recording: after
    /// [`backward`](Self::backward), [`grad`](Self::grad) returns
    /// `d(loss)/d(input)`. The leaf is not a parameter — it never appears
    /// in [`param_grads`](Self::param_grads) — but it does mark its
    /// subgraph as gradient-carrying, so prefer [`input`](Self::input)
    /// for ordinary constants.
    pub fn input_with_grad(&mut self, value: Matrix) -> Tensor {
        self.push(Op::InputGrad, value)
    }

    /// Binds parameter `id` into the tape, snapshotting its current value.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Tensor {
        let value = store.get(id).clone();
        self.push(Op::Param(id), value)
    }

    // ---- ops ---------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Tensor, b: Tensor) -> Tensor {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(Op::MatMul(a.0, b.0), v)
    }

    /// Element-wise sum (same shapes).
    pub fn add(&mut self, a: Tensor, b: Tensor) -> Tensor {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(Op::Add(a.0, b.0), v)
    }

    /// Element-wise difference (same shapes).
    pub fn sub(&mut self, a: Tensor, b: Tensor) -> Tensor {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(Op::Sub(a.0, b.0), v)
    }

    /// Hadamard product (same shapes).
    pub fn mul(&mut self, a: Tensor, b: Tensor) -> Tensor {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(Op::Mul(a.0, b.0), v)
    }

    /// Element-wise division `a / b` (same shapes). The caller must keep
    /// `b` bounded away from zero (as the Mahalanobis distance layer does
    /// with its variance floor).
    pub fn div(&mut self, a: Tensor, b: Tensor) -> Tensor {
        let v = self.nodes[a.0]
            .value
            .zip_with(&self.nodes[b.0].value, |x, y| x / y);
        self.push(Op::Div(a.0, b.0), v)
    }

    /// Adds a `1 x n` bias row to every row of `a`.
    pub fn add_bias(&mut self, a: Tensor, bias: Tensor) -> Tensor {
        let b = &self.nodes[bias.0].value;
        assert_eq!(b.rows(), 1, "bias must be a 1 x n row vector");
        let v = self.nodes[a.0].value.add_row_broadcast(b.row(0));
        self.push(Op::AddBias(a.0, bias.0), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Tensor) -> Tensor {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(Op::Relu(a.0), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Tensor) -> Tensor {
        let v = self.nodes[a.0].value.map(stable_sigmoid);
        self.push(Op::Sigmoid(a.0), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Tensor) -> Tensor {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(Op::Tanh(a.0), v)
    }

    /// Element-wise exponential (inputs clamped to ±30 for stability).
    pub fn exp(&mut self, a: Tensor) -> Tensor {
        let v = self.nodes[a.0].value.map(|x| x.clamp(-30.0, 30.0).exp());
        self.push(Op::Exp(a.0), v)
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Tensor) -> Tensor {
        let v = self.nodes[a.0].value.map(|x| x * x);
        self.push(Op::Square(a.0), v)
    }

    /// Multiplies every element by the constant `c`.
    pub fn scale(&mut self, a: Tensor, c: f32) -> Tensor {
        let v = self.nodes[a.0].value.scale(c);
        self.push(Op::Scale(a.0, c), v)
    }

    /// Adds the constant `c` to every element.
    pub fn add_scalar(&mut self, a: Tensor, c: f32) -> Tensor {
        let v = self.nodes[a.0].value.map(|x| x + c);
        self.push(Op::AddScalar(a.0), v)
    }

    /// Sum of all elements as a `1 x 1` tensor.
    pub fn sum_all(&mut self, a: Tensor) -> Tensor {
        let v = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.sum()]);
        self.push(Op::SumAll(a.0), v)
    }

    /// Mean of all elements as a `1 x 1` tensor.
    pub fn mean_all(&mut self, a: Tensor) -> Tensor {
        let v = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.mean()]);
        self.push(Op::MeanAll(a.0), v)
    }

    /// Per-row sum: `N x D` → `N x 1`.
    pub fn row_sum(&mut self, a: Tensor) -> Tensor {
        let m = &self.nodes[a.0].value;
        let data: Vec<f32> = (0..m.rows()).map(|i| m.row(i).iter().sum()).collect();
        let v = Matrix::from_vec(m.rows(), 1, data);
        self.push(Op::RowSum(a.0), v)
    }

    /// Horizontally concatenates tensors with equal row counts.
    ///
    /// # Panics
    /// Panics on an empty list or mismatched row counts.
    pub fn concat_cols(&mut self, parts: &[Tensor]) -> Tensor {
        assert!(
            !parts.is_empty(),
            "concat_cols requires at least one tensor"
        );
        let mut v = self.nodes[parts[0].0].value.clone();
        for p in &parts[1..] {
            v = v.hconcat(&self.nodes[p.0].value);
        }
        self.push(Op::ConcatCols(parts.iter().map(|t| t.0).collect()), v)
    }

    /// Keeps columns `[start, end)`.
    pub fn slice_cols(&mut self, a: Tensor, start: usize, end: usize) -> Tensor {
        let m = &self.nodes[a.0].value;
        assert!(
            start <= end && end <= m.cols(),
            "slice_cols {start}..{end} out of bounds"
        );
        let mut v = Matrix::zeros(m.rows(), end - start);
        for i in 0..m.rows() {
            v.row_mut(i).copy_from_slice(&m.row(i)[start..end]);
        }
        self.push(Op::SliceCols(a.0, start, end), v)
    }

    /// Fused, numerically stable mean binary cross-entropy with logits.
    ///
    /// `targets` is a constant matrix of the same shape as `logits` with
    /// entries in `[0, 1]`. Returns a scalar `1 x 1` tensor whose backward
    /// rule is `(sigmoid(z) - y) / count`.
    pub fn bce_with_logits(&mut self, logits: Tensor, targets: Matrix) -> Tensor {
        let z = &self.nodes[logits.0].value;
        assert_eq!(z.shape(), targets.shape(), "bce target shape mismatch");
        let n = z.as_slice().len().max(1) as f32;
        // mean over elements of: softplus(z) - z*y  ==  -[y ln σ + (1-y) ln(1-σ)]
        let loss = z
            .as_slice()
            .iter()
            .zip(targets.as_slice())
            .map(|(&z, &y)| softplus(z) - z * y)
            .sum::<f32>()
            / n;
        self.push(
            Op::BceWithLogits {
                logits: logits.0,
                targets,
            },
            Matrix::from_vec(1, 1, vec![loss]),
        )
    }

    // ---- backward ----------------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Tensor) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar loss"
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        if !self.nodes[loss.0].needs_grad {
            // A loss with no trainable parameters below it has nothing to
            // differentiate; leave all gradients empty.
            return;
        }
        self.grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));
        for i in (0..self.nodes.len()).rev() {
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            // Re-insert so callers can still read the gradient afterwards.
            self.propagate(i, &g);
            self.grads[i] = Some(g);
        }
    }

    fn accumulate(&mut self, node: usize, delta: Matrix) {
        if !self.nodes[node].needs_grad {
            return;
        }
        match &mut self.grads[node] {
            Some(g) => g.axpy_inplace(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, i: usize, g: &Matrix) {
        // Clone the op descriptor (cheap: indices + small matrices only for BCE).
        let op = self.nodes[i].op.clone();
        match op {
            Op::Input | Op::InputGrad | Op::Param(_) => {}
            Op::MatMul(a, b) => {
                if self.nodes[a].needs_grad {
                    let da = g.matmul_t(&self.nodes[b].value);
                    self.accumulate(a, da);
                }
                if self.nodes[b].needs_grad {
                    let db = self.nodes[a].value.t_matmul(g);
                    self.accumulate(b, db);
                }
            }
            Op::Add(a, b) => {
                self.accumulate(a, g.clone());
                self.accumulate(b, g.clone());
            }
            Op::Sub(a, b) => {
                self.accumulate(a, g.clone());
                self.accumulate(b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let da = g.hadamard(&self.nodes[b].value);
                let db = g.hadamard(&self.nodes[a].value);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::Div(a, b) => {
                // d(a/b)/da = 1/b ; d(a/b)/db = -a/b².
                let da = g.zip_with(&self.nodes[b].value, |gv, bv| gv / bv);
                let db = g
                    .zip_with(&self.nodes[a].value, |gv, av| gv * av)
                    .zip_with(&self.nodes[b].value, |n, bv| -n / (bv * bv));
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::AddBias(a, bias) => {
                self.accumulate(a, g.clone());
                // Bias gradient: column sums of g, as a 1 x n row.
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &v) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += v;
                    }
                }
                self.accumulate(bias, db);
            }
            Op::Relu(a) => {
                let da = g.zip_with(
                    &self.nodes[a].value,
                    |gv, av| if av > 0.0 { gv } else { 0.0 },
                );
                self.accumulate(a, da);
            }
            Op::Sigmoid(a) => {
                let da = g.zip_with(&self.nodes[i].value, |gv, s| gv * s * (1.0 - s));
                self.accumulate(a, da);
            }
            Op::Tanh(a) => {
                let da = g.zip_with(&self.nodes[i].value, |gv, y| gv * (1.0 - y * y));
                self.accumulate(a, da);
            }
            Op::Exp(a) => {
                let da = g.hadamard(&self.nodes[i].value);
                self.accumulate(a, da);
            }
            Op::Square(a) => {
                let da = g.zip_with(&self.nodes[a].value, |gv, av| 2.0 * gv * av);
                self.accumulate(a, da);
            }
            Op::Scale(a, c) => self.accumulate(a, g.scale(c)),
            Op::AddScalar(a) => self.accumulate(a, g.clone()),
            Op::SumAll(a) => {
                let (r, c) = self.nodes[a].value.shape();
                self.accumulate(a, Matrix::filled(r, c, g.get(0, 0)));
            }
            Op::MeanAll(a) => {
                let (r, c) = self.nodes[a].value.shape();
                let n = (r * c).max(1) as f32;
                self.accumulate(a, Matrix::filled(r, c, g.get(0, 0) / n));
            }
            Op::RowSum(a) => {
                let (r, c) = self.nodes[a].value.shape();
                let mut da = Matrix::zeros(r, c);
                for row in 0..r {
                    let gv = g.get(row, 0);
                    for v in da.row_mut(row) {
                        *v = gv;
                    }
                }
                self.accumulate(a, da);
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for p in parts {
                    let cols = self.nodes[p].value.cols();
                    let rows = self.nodes[p].value.rows();
                    let mut dp = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        dp.row_mut(r)
                            .copy_from_slice(&g.row(r)[offset..offset + cols]);
                    }
                    offset += cols;
                    self.accumulate(p, dp);
                }
            }
            Op::SliceCols(a, start, end) => {
                let (r, c) = self.nodes[a].value.shape();
                let mut da = Matrix::zeros(r, c);
                for row in 0..r {
                    da.row_mut(row)[start..end].copy_from_slice(g.row(row));
                }
                self.accumulate(a, da);
            }
            Op::BceWithLogits { logits, targets } => {
                let z = &self.nodes[logits].value;
                let n = z.as_slice().len().max(1) as f32;
                let scale = g.get(0, 0) / n;
                let dz = z.zip_with(&targets, |zv, yv| (stable_sigmoid(zv) - yv) * scale);
                self.accumulate(logits, dz);
            }
        }
    }

    /// Accumulated parameter gradients, summed over all tape bindings of
    /// each [`ParamId`] (this is what makes Siamese weight sharing work).
    pub fn param_grads(&self) -> Vec<(ParamId, Matrix)> {
        let mut acc: Vec<(ParamId, Matrix)> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let Op::Param(id) = node.op else { continue };
            let Some(g) = self.grads.get(i).and_then(|g| g.as_ref()) else {
                continue;
            };
            match acc.iter_mut().find(|(pid, _)| *pid == id) {
                Some((_, total)) => total.axpy_inplace(1.0, g),
                None => acc.push((id, g.clone())),
            }
        }
        acc
    }
}

#[inline]
fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[inline]
fn softplus(x: f32) -> f32 {
    // ln(1 + e^x) computed stably.
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::XorShiftRng;

    /// Numerically checks d(loss)/d(param) via central differences.
    fn gradient_check(build: impl Fn(&mut Graph, Tensor) -> Tensor, init: Matrix) {
        let mut store = ParamStore::new();
        let pid = store.add("p", init.clone());

        // Analytic gradient.
        let analytic = {
            let mut g = Graph::new();
            let p = g.param(&store, pid);
            let loss = build(&mut g, p);
            g.backward(loss);
            g.grad(p).expect("param must receive a gradient").clone()
        };

        // Numeric gradient.
        let eps = 1e-2f32;
        let (r, c) = init.shape();
        for i in 0..r {
            for j in 0..c {
                let orig = store.get(pid).get(i, j);
                store.get_mut(pid).set(i, j, orig + eps);
                let lp = {
                    let mut g = Graph::new();
                    let p = g.param(&store, pid);
                    let loss = build(&mut g, p);
                    g.value(loss).get(0, 0)
                };
                store.get_mut(pid).set(i, j, orig - eps);
                let lm = {
                    let mut g = Graph::new();
                    let p = g.param(&store, pid);
                    let loss = build(&mut g, p);
                    g.value(loss).get(0, 0)
                };
                store.get_mut(pid).set(i, j, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                let got = analytic.get(i, j);
                assert!(
                    (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs().max(got.abs())),
                    "grad mismatch at ({i},{j}): numeric {numeric}, analytic {got}"
                );
            }
        }
    }

    #[test]
    fn grad_check_dense_relu_mse() {
        let mut rng = XorShiftRng::new(3);
        let w = Matrix::gaussian(3, 2, &mut rng).scale(0.5);
        let x = Matrix::gaussian(4, 3, &mut rng);
        let y = Matrix::gaussian(4, 2, &mut rng);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let h0 = g.matmul(xt, p);
                // Shift pre-activations away from the ReLU kink so central
                // differences don't straddle the non-differentiable point.
                let h = g.add_scalar(h0, 0.75);
                let a = g.relu(h);
                let yt = g.input(y.clone());
                let d = g.sub(a, yt);
                let s = g.square(d);
                g.mean_all(s)
            },
            w,
        );
    }

    #[test]
    fn grad_check_sigmoid_tanh_exp_chain() {
        let mut rng = XorShiftRng::new(5);
        let w = Matrix::gaussian(2, 2, &mut rng).scale(0.3);
        let x = Matrix::gaussian(3, 2, &mut rng);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let h = g.matmul(xt, p);
                let s = g.sigmoid(h);
                let t = g.tanh(s);
                let e = g.exp(t);
                g.sum_all(e)
            },
            w,
        );
    }

    #[test]
    fn grad_check_bias_and_rowsum() {
        let b = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let h = g.add_bias(xt, p);
                let sq = g.square(h);
                let rs = g.row_sum(sq);
                g.mean_all(rs)
            },
            b,
        );
    }

    #[test]
    fn grad_check_concat_and_slice() {
        let mut rng = XorShiftRng::new(7);
        let w = Matrix::gaussian(2, 4, &mut rng).scale(0.4);
        let x = Matrix::gaussian(3, 2, &mut rng);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let h = g.matmul(xt, p); // 3 x 4
                let left = g.slice_cols(h, 0, 2);
                let right = g.slice_cols(h, 2, 4);
                let prod = g.mul(left, right);
                let cat = g.concat_cols(&[prod, left]);
                let sq = g.square(cat);
                g.sum_all(sq)
            },
            w,
        );
    }

    #[test]
    fn grad_check_bce_with_logits() {
        let mut rng = XorShiftRng::new(11);
        let w = Matrix::gaussian(2, 1, &mut rng).scale(0.6);
        let x = Matrix::gaussian(5, 2, &mut rng);
        let y = Matrix::from_vec(5, 1, vec![1.0, 0.0, 1.0, 0.0, 1.0]);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let z = g.matmul(xt, p);
                g.bce_with_logits(z, y.clone())
            },
            w,
        );
    }

    #[test]
    fn grad_check_div() {
        let w = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        gradient_check(
            move |g, p| {
                // Divide by a strictly positive denominator built from p.
                let sq = g.square(p);
                let denom = g.add_scalar(sq, 1.0);
                let num = g.add_scalar(p, 2.0);
                let q = g.div(num, denom);
                let s = g.square(q);
                g.mean_all(s)
            },
            w,
        );
    }

    #[test]
    fn grad_check_scale_addscalar_sub() {
        let w = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]);
        gradient_check(
            move |g, p| {
                let s = g.scale(p, 3.0);
                let t = g.add_scalar(s, -1.0);
                let u = g.sub(t, p);
                let sq = g.square(u);
                g.mean_all(sq)
            },
            w,
        );
    }

    #[test]
    fn shared_param_grads_accumulate() {
        // loss = sum(p) + sum(p) ⇒ dp = 2 everywhere.
        let mut store = ParamStore::new();
        let pid = store.add("p", Matrix::filled(2, 2, 1.0));
        let mut g = Graph::new();
        let p1 = g.param(&store, pid);
        let p2 = g.param(&store, pid);
        let s1 = g.sum_all(p1);
        let s2 = g.sum_all(p2);
        let loss = g.add(s1, s2);
        g.backward(loss);
        let grads = g.param_grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].1, Matrix::filled(2, 2, 2.0));
    }

    #[test]
    fn bce_matches_manual_cross_entropy() {
        let mut g = Graph::new();
        let z = g.input(Matrix::from_vec(2, 1, vec![0.7, -1.3]));
        let y = Matrix::from_vec(2, 1, vec![1.0, 0.0]);
        let loss = g.bce_with_logits(z, y);
        let p0 = stable_sigmoid(0.7);
        let p1 = stable_sigmoid(-1.3);
        let manual = -(p0.ln() + (1.0 - p1).ln()) / 2.0;
        assert!((g.value(loss).get(0, 0) - manual).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_is_stable_for_extreme_logits() {
        let mut g = Graph::new();
        let z = g.input(Matrix::from_vec(1, 2, vec![100.0, -100.0]));
        let s = g.sigmoid(z);
        let v = g.value(s);
        assert!(v.get(0, 0) > 0.999 && v.get(0, 0).is_finite());
        assert!(v.get(0, 1) < 1e-3 && v.get(0, 1) >= 0.0);
    }

    #[test]
    #[should_panic]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let t = g.input(Matrix::zeros(2, 2));
        g.backward(t);
    }

    #[test]
    fn unused_branches_have_no_grad() {
        let mut store = ParamStore::new();
        let pid = store.add("p", Matrix::filled(1, 1, 1.0));
        let mut g = Graph::new();
        let p = g.param(&store, pid);
        let unused = g.input(Matrix::filled(1, 1, 5.0));
        let loss = g.sum_all(p);
        g.backward(loss);
        assert!(g.grad(unused).is_none());
        assert!(g.grad(p).is_some());
    }

    #[test]
    fn input_grads_are_opt_in() {
        // Plain inputs never receive a gradient; `input_with_grad` leaves
        // record d(loss)/d(input) — and never show up in param_grads().
        let x_val = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        let build = |with_grad: bool| {
            let mut g = Graph::new();
            let x = if with_grad {
                g.input_with_grad(x_val.clone())
            } else {
                g.input(x_val.clone())
            };
            let sq = g.square(x);
            let loss = g.sum_all(sq);
            g.backward(loss);
            (g.grad(x).cloned(), g.param_grads().len())
        };
        let (plain, n_params) = build(false);
        assert!(plain.is_none(), "plain input must not record a gradient");
        assert_eq!(n_params, 0);
        let (opt_in, n_params) = build(true);
        // d(Σ x²)/dx = 2x.
        let got = opt_in.expect("input_with_grad must record a gradient");
        for (g_val, x) in got.as_slice().iter().zip(x_val.as_slice()) {
            assert!((g_val - 2.0 * x).abs() < 1e-6, "{g_val} vs {}", 2.0 * x);
        }
        assert_eq!(
            n_params, 0,
            "input gradients must not appear in param_grads"
        );
    }
}
