//! The define-by-run autodiff tape.
//!
//! A [`Graph`] is an append-only arena of nodes; every op pushes a node
//! holding its forward value, so node indices are already a topological
//! order and [`Graph::backward`] is a single reverse sweep.
//!
//! # Zero-realloc reuse
//!
//! The tape owns a pool of recycled `Vec<f32>` buffers. Every forward
//! value and every gradient buffer is drawn from the pool and returned
//! to it by [`Graph::reset`] (and by `backward`, for the previous
//! step's gradients). A trainer that calls `reset()` between
//! minibatches of the same shape therefore reaches a steady state after
//! the first step in which **no** heap allocation happens at all —
//! observable via [`Graph::fresh_allocs`]. Backward accumulates
//! gradient deltas **in place** into the destination grad buffer
//! instead of materialising a `Matrix` per delta.

use crate::params::{ParamId, ParamStore};
use vaer_linalg::Matrix;

/// Handle to a node (tensor) inside a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tensor(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input (no gradient requested).
    Input,
    /// Input leaf that opts into gradient recording (input sensitivities).
    InputGrad,
    /// Leaf bound to a persistent parameter.
    Param(ParamId),
    /// `A * B`.
    MatMul(usize, usize),
    /// `A + B` (same shape).
    Add(usize, usize),
    /// `A - B` (same shape).
    Sub(usize, usize),
    /// Hadamard `A ∘ B`.
    Mul(usize, usize),
    /// Element-wise `A / B`.
    Div(usize, usize),
    /// `A + 1 bᵀ` where `b` is a `1 x n` row parameter/tensor.
    AddBias(usize, usize),
    /// `max(A, 0)`.
    Relu(usize),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// Element-wise exponential.
    Exp(usize),
    /// Element-wise square.
    Square(usize),
    /// `c * A`.
    Scale(usize, f32),
    /// `A + c` element-wise.
    AddScalar(usize),
    /// Sum of all elements (scalar `1 x 1`).
    SumAll(usize),
    /// Mean of all elements (scalar `1 x 1`).
    MeanAll(usize),
    /// Per-row sum: `N x D` → `N x 1`.
    RowSum(usize),
    /// Horizontal concatenation of several tensors with equal row counts.
    ConcatCols(Vec<usize>),
    /// Column slice `[start, end)`.
    SliceCols(usize, usize, usize),
    /// Fused mean binary-cross-entropy with logits against constant targets.
    BceWithLogits { logits: usize, targets: Matrix },
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Matrix,
    /// Whether any parameter is reachable below this node; gradients are
    /// only propagated into subgraphs that need them.
    needs_grad: bool,
}

/// A single forward/backward tape.
///
/// Parameter values are snapshotted into the graph at bind time (they
/// are small relative to the activations, so the copy is in the noise).
/// Reuse one `Graph` across training steps via [`Graph::reset`] — the
/// node arena, gradient table, and every value/grad buffer keep their
/// capacity between steps.
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
    /// Recycled backing buffers, LIFO. `reset` pushes buffers in reverse
    /// node order so a same-shaped next step pops each buffer back into
    /// the node position (and hence size) it previously served.
    pool: Vec<Vec<f32>>,
    stats: PoolStats,
}

/// Buffer-pool accounting, shared by forward allocation and the backward
/// sweep's split borrow. `hit rate = 1 - fresh_allocs / buf_requests`.
#[derive(Default)]
struct PoolStats {
    /// Buffer requests the pool could not serve without allocating.
    fresh_allocs: usize,
    /// Total buffer requests.
    buf_requests: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

/// Pops a pooled buffer resized (zero-filled) to `len`, counting a fresh
/// allocation on pool miss or capacity growth.
fn take_buf(pool: &mut Vec<Vec<f32>>, stats: &mut PoolStats, len: usize) -> Vec<f32> {
    stats.buf_requests += 1;
    match pool.pop() {
        Some(mut v) => {
            if v.capacity() < len {
                stats.fresh_allocs += 1;
            }
            v.clear();
            v.resize(len, 0.0);
            v
        }
        None => {
            stats.fresh_allocs += 1;
            vec![0.0; len]
        }
    }
}

impl Graph {
    /// New empty tape.
    pub fn new() -> Self {
        Self {
            nodes: Vec::with_capacity(64),
            grads: Vec::new(),
            pool: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Clears the tape for reuse, returning every node value, gradient,
    /// and op-owned buffer to the internal pool. Arena and pool
    /// capacity are retained, so rebuilding a same-shaped step performs
    /// no heap allocation.
    pub fn reset(&mut self) {
        // Push gradients first and node values last (in reverse node
        // order): the pool is a LIFO, so the next forward pass pops each
        // value buffer back into the node slot whose size it already
        // matches, and the subsequent backward sweep (which runs in
        // reverse node order) finds the grad buffers underneath in the
        // matching order too.
        for g in self.grads.drain(..).flatten() {
            self.pool.push(g.into_vec());
        }
        for node in self.nodes.drain(..).rev() {
            if let Op::BceWithLogits { targets, .. } = node.op {
                self.pool.push(targets.into_vec());
            }
            self.pool.push(node.value.into_vec());
        }
    }

    /// Buffer requests that could not be served from the pool without
    /// allocating (monotonic over the graph's lifetime). A steady-state
    /// `reset()` + rebuild cycle keeps this constant.
    pub fn fresh_allocs(&self) -> usize {
        self.stats.fresh_allocs
    }

    /// Total pooled-buffer requests over the graph's lifetime. With
    /// [`Graph::fresh_allocs`] this yields the tape-pool hit rate:
    /// `1 - fresh_allocs / buf_requests`.
    pub fn buf_requests(&self) -> usize {
        self.stats.buf_requests
    }

    fn take_buf(&mut self, len: usize) -> Vec<f32> {
        take_buf(&mut self.pool, &mut self.stats, len)
    }

    /// A zeroed `rows x cols` matrix backed by a pooled buffer.
    fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        let buf = self.take_buf(rows * cols);
        Matrix::from_vec(rows, cols, buf)
    }

    fn push(&mut self, op: Op, value: Matrix) -> Tensor {
        let needs_grad = match &op {
            Op::Input => false,
            Op::InputGrad | Op::Param(_) => true,
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::Div(a, b)
            | Op::AddBias(a, b) => self.nodes[*a].needs_grad || self.nodes[*b].needs_grad,
            Op::Relu(a)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Exp(a)
            | Op::Square(a)
            | Op::Scale(a, _)
            | Op::AddScalar(a)
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::RowSum(a)
            | Op::SliceCols(a, _, _) => self.nodes[*a].needs_grad,
            Op::ConcatCols(parts) => parts.iter().any(|&p| self.nodes[p].needs_grad),
            Op::BceWithLogits { logits, .. } => self.nodes[*logits].needs_grad,
        };
        self.nodes.push(Node {
            op,
            value,
            needs_grad,
        });
        Tensor(self.nodes.len() - 1)
    }

    /// Forward value of a tensor.
    #[inline]
    pub fn value(&self, t: Tensor) -> &Matrix {
        &self.nodes[t.0].value
    }

    /// Gradient of the last [`backward`](Self::backward) loss w.r.t. `t`.
    ///
    /// `None` if `t` did not participate in the loss or backward has not
    /// been run.
    pub fn grad(&self, t: Tensor) -> Option<&Matrix> {
        self.grads.get(t.0).and_then(|g| g.as_ref())
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- leaf constructors ------------------------------------------------

    /// A constant input. No gradient is recorded for it — backward
    /// prunes subgraphs that contain no trainable leaf, so
    /// [`grad`](Self::grad) returns `None` for plain inputs. Use
    /// [`input_with_grad`](Self::input_with_grad) when the loss's
    /// sensitivity to an input is itself of interest.
    pub fn input(&mut self, value: Matrix) -> Tensor {
        self.push(Op::Input, value)
    }

    /// A constant input copied from `value` into a pooled buffer —
    /// prefer this over `input(value.clone())` on hot paths.
    pub fn input_ref(&mut self, value: &Matrix) -> Tensor {
        let (r, c) = value.shape();
        let mut v = self.alloc(r, c);
        v.as_mut_slice().copy_from_slice(value.as_slice());
        self.push(Op::Input, v)
    }

    /// A constant input holding rows `start..end` of `value`, copied
    /// into a pooled buffer — the zero-realloc equivalent of
    /// `input(value.slice_rows(start, end))`.
    ///
    /// # Panics
    /// Panics on an out-of-range row window.
    pub fn input_rows(&mut self, value: &Matrix, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= value.rows(),
            "input_rows {start}..{end} out of bounds"
        );
        let c = value.cols();
        let mut v = self.alloc(end - start, c);
        v.as_mut_slice()
            .copy_from_slice(&value.as_slice()[start * c..end * c]);
        self.push(Op::Input, v)
    }

    /// A constant `rows x cols` input with every element set to `value`,
    /// backed by a pooled buffer.
    pub fn input_filled(&mut self, rows: usize, cols: usize, value: f32) -> Tensor {
        let mut v = self.alloc(rows, cols);
        v.as_mut_slice().fill(value);
        self.push(Op::Input, v)
    }

    /// An input leaf that opts into gradient recording: after
    /// [`backward`](Self::backward), [`grad`](Self::grad) returns
    /// `d(loss)/d(input)`. The leaf is not a parameter — it never appears
    /// in [`param_grads`](Self::param_grads) — but it does mark its
    /// subgraph as gradient-carrying, so prefer [`input`](Self::input)
    /// for ordinary constants.
    pub fn input_with_grad(&mut self, value: Matrix) -> Tensor {
        self.push(Op::InputGrad, value)
    }

    /// Binds parameter `id` into the tape, snapshotting its current
    /// value into a pooled buffer.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Tensor {
        let (r, c) = store.get(id).shape();
        let mut v = self.alloc(r, c);
        v.as_mut_slice().copy_from_slice(store.get(id).as_slice());
        self.push(Op::Param(id), v)
    }

    // ---- ops ---------------------------------------------------------------

    /// Element-wise unary op into a pooled output buffer.
    fn unary(&mut self, a: Tensor, op: Op, f: impl Fn(f32) -> f32) -> Tensor {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut out = self.alloc(r, c);
        for (o, &x) in out
            .as_mut_slice()
            .iter_mut()
            .zip(self.nodes[a.0].value.as_slice())
        {
            *o = f(x);
        }
        self.push(op, out)
    }

    /// Element-wise binary op into a pooled output buffer.
    ///
    /// # Panics
    /// Panics when the operand shapes differ.
    fn binary(&mut self, a: Tensor, b: Tensor, op: Op, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let (r, c) = self.nodes[a.0].value.shape();
        assert_eq!(
            (r, c),
            self.nodes[b.0].value.shape(),
            "element-wise op shape mismatch: {:?} vs {:?}",
            (r, c),
            self.nodes[b.0].value.shape()
        );
        let mut out = self.alloc(r, c);
        let av = self.nodes[a.0].value.as_slice();
        let bv = self.nodes[b.0].value.as_slice();
        for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(av).zip(bv) {
            *o = f(x, y);
        }
        self.push(op, out)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Tensor, b: Tensor) -> Tensor {
        let m = self.nodes[a.0].value.rows();
        let n = self.nodes[b.0].value.cols();
        let mut out = self.alloc(m, n);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut out);
        self.push(Op::MatMul(a.0, b.0), out)
    }

    /// Element-wise sum (same shapes).
    pub fn add(&mut self, a: Tensor, b: Tensor) -> Tensor {
        self.binary(a, b, Op::Add(a.0, b.0), |x, y| x + y)
    }

    /// Element-wise difference (same shapes).
    pub fn sub(&mut self, a: Tensor, b: Tensor) -> Tensor {
        self.binary(a, b, Op::Sub(a.0, b.0), |x, y| x - y)
    }

    /// Hadamard product (same shapes).
    pub fn mul(&mut self, a: Tensor, b: Tensor) -> Tensor {
        self.binary(a, b, Op::Mul(a.0, b.0), |x, y| x * y)
    }

    /// Element-wise division `a / b` (same shapes). The caller must keep
    /// `b` bounded away from zero (as the Mahalanobis distance layer does
    /// with its variance floor).
    pub fn div(&mut self, a: Tensor, b: Tensor) -> Tensor {
        self.binary(a, b, Op::Div(a.0, b.0), |x, y| x / y)
    }

    /// Adds a `1 x n` bias row to every row of `a`.
    ///
    /// # Panics
    /// Panics unless `bias` is a `1 x n` row vector matching `a`'s columns.
    pub fn add_bias(&mut self, a: Tensor, bias: Tensor) -> Tensor {
        let b = &self.nodes[bias.0].value;
        assert_eq!(b.rows(), 1, "bias must be a 1 x n row vector");
        let (r, c) = self.nodes[a.0].value.shape();
        assert_eq!(c, b.cols(), "broadcast row length mismatch");
        let mut out = self.alloc(r, c);
        let av = self.nodes[a.0].value.as_slice();
        let brow = self.nodes[bias.0].value.row(0);
        if c > 0 {
            for (orow, arow) in out
                .as_mut_slice()
                .chunks_exact_mut(c)
                .zip(av.chunks_exact(c))
            {
                for ((o, &x), &b) in orow.iter_mut().zip(arow).zip(brow) {
                    *o = x + b;
                }
            }
        }
        self.push(Op::AddBias(a.0, bias.0), out)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Tensor) -> Tensor {
        self.unary(a, Op::Relu(a.0), |x| x.max(0.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Tensor) -> Tensor {
        self.unary(a, Op::Sigmoid(a.0), stable_sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Tensor) -> Tensor {
        self.unary(a, Op::Tanh(a.0), f32::tanh)
    }

    /// Element-wise exponential (inputs clamped to ±30 for stability).
    pub fn exp(&mut self, a: Tensor) -> Tensor {
        self.unary(a, Op::Exp(a.0), |x| x.clamp(-30.0, 30.0).exp())
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Tensor) -> Tensor {
        self.unary(a, Op::Square(a.0), |x| x * x)
    }

    /// Multiplies every element by the constant `c`.
    pub fn scale(&mut self, a: Tensor, c: f32) -> Tensor {
        self.unary(a, Op::Scale(a.0, c), |x| x * c)
    }

    /// Adds the constant `c` to every element.
    pub fn add_scalar(&mut self, a: Tensor, c: f32) -> Tensor {
        self.unary(a, Op::AddScalar(a.0), |x| x + c)
    }

    /// Sum of all elements as a `1 x 1` tensor.
    pub fn sum_all(&mut self, a: Tensor) -> Tensor {
        let s = self.nodes[a.0].value.sum();
        let mut v = self.alloc(1, 1);
        v.as_mut_slice()[0] = s;
        self.push(Op::SumAll(a.0), v)
    }

    /// Mean of all elements as a `1 x 1` tensor.
    pub fn mean_all(&mut self, a: Tensor) -> Tensor {
        let m = self.nodes[a.0].value.mean();
        let mut v = self.alloc(1, 1);
        v.as_mut_slice()[0] = m;
        self.push(Op::MeanAll(a.0), v)
    }

    /// Per-row sum: `N x D` → `N x 1`, written into a pooled buffer.
    pub fn row_sum(&mut self, a: Tensor) -> Tensor {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut out = self.alloc(r, 1);
        if c > 0 {
            let src = self.nodes[a.0].value.as_slice();
            for (o, row) in out.as_mut_slice().iter_mut().zip(src.chunks_exact(c)) {
                *o = row.iter().sum();
            }
        }
        self.push(Op::RowSum(a.0), out)
    }

    /// Horizontally concatenates tensors with equal row counts.
    ///
    /// # Panics
    /// Panics on an empty list or mismatched row counts.
    pub fn concat_cols(&mut self, parts: &[Tensor]) -> Tensor {
        assert!(
            !parts.is_empty(),
            "concat_cols requires at least one tensor"
        );
        let r = self.nodes[parts[0].0].value.rows();
        let mut total = 0;
        for p in parts {
            assert_eq!(
                self.nodes[p.0].value.rows(),
                r,
                "concat_cols requires equal row counts"
            );
            total += self.nodes[p.0].value.cols();
        }
        let mut out = self.alloc(r, total);
        let mut offset = 0;
        for p in parts {
            let part = &self.nodes[p.0].value;
            let c = part.cols();
            for i in 0..r {
                out.row_mut(i)[offset..offset + c].copy_from_slice(part.row(i));
            }
            offset += c;
        }
        self.push(Op::ConcatCols(parts.iter().map(|t| t.0).collect()), out)
    }

    /// Keeps columns `[start, end)`.
    ///
    /// # Panics
    /// Panics on an out-of-range column window.
    pub fn slice_cols(&mut self, a: Tensor, start: usize, end: usize) -> Tensor {
        let (r, c) = self.nodes[a.0].value.shape();
        assert!(
            start <= end && end <= c,
            "slice_cols {start}..{end} out of bounds"
        );
        let mut out = self.alloc(r, end - start);
        for i in 0..r {
            out.row_mut(i)
                .copy_from_slice(&self.nodes[a.0].value.row(i)[start..end]);
        }
        self.push(Op::SliceCols(a.0, start, end), out)
    }

    /// Fused, numerically stable mean binary cross-entropy with logits.
    ///
    /// `targets` is a constant matrix of the same shape as `logits` with
    /// entries in `[0, 1]`. Returns a scalar `1 x 1` tensor whose backward
    /// rule is `(sigmoid(z) - y) / count`.
    ///
    /// # Panics
    /// Panics when the target and logit shapes differ.
    pub fn bce_with_logits(&mut self, logits: Tensor, targets: Matrix) -> Tensor {
        let z = &self.nodes[logits.0].value;
        assert_eq!(z.shape(), targets.shape(), "bce target shape mismatch");
        let n = z.as_slice().len().max(1) as f32;
        // mean over elements of: softplus(z) - z*y  ==  -[y ln σ + (1-y) ln(1-σ)]
        let loss = z
            .as_slice()
            .iter()
            .zip(targets.as_slice())
            .map(|(&z, &y)| softplus(z) - z * y)
            .sum::<f32>()
            / n;
        let mut v = self.alloc(1, 1);
        v.as_mut_slice()[0] = loss;
        self.push(
            Op::BceWithLogits {
                logits: logits.0,
                targets,
            },
            v,
        )
    }

    /// [`bce_with_logits`](Self::bce_with_logits) against rows
    /// `start..end` of `targets`, copied into a pooled buffer — the
    /// zero-realloc variant for sharded training loops.
    ///
    /// # Panics
    /// Panics on an out-of-range target row window.
    pub fn bce_with_logits_rows(
        &mut self,
        logits: Tensor,
        targets: &Matrix,
        start: usize,
        end: usize,
    ) -> Tensor {
        assert!(
            start <= end && end <= targets.rows(),
            "bce target rows {start}..{end} out of bounds"
        );
        let c = targets.cols();
        let mut y = self.alloc(end - start, c);
        y.as_mut_slice()
            .copy_from_slice(&targets.as_slice()[start * c..end * c]);
        self.bce_with_logits(logits, y)
    }

    // ---- backward ----------------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Tensor) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar loss"
        );
        // Recycle the previous sweep's gradient buffers, then re-init.
        for g in self.grads.drain(..).flatten() {
            self.pool.push(g.into_vec());
        }
        self.grads.resize_with(self.nodes.len(), || None);
        if !self.nodes[loss.0].needs_grad {
            // A loss with no trainable parameters below it has nothing to
            // differentiate; leave all gradients empty.
            return;
        }
        let mut seed = self.alloc(1, 1);
        seed.as_mut_slice()[0] = 1.0;
        self.grads[loss.0] = Some(seed);
        for i in (0..self.nodes.len()).rev() {
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            let mut ctx = BackwardCtx {
                nodes: &self.nodes,
                grads: &mut self.grads,
                pool: &mut self.pool,
                stats: &mut self.stats,
            };
            ctx.propagate(i, &g);
            // Re-insert so callers can still read the gradient afterwards.
            self.grads[i] = Some(g);
        }
    }

    /// Accumulated parameter gradients, summed over all tape bindings of
    /// each [`ParamId`] (this is what makes Siamese weight sharing work).
    pub fn param_grads(&self) -> Vec<(ParamId, Matrix)> {
        let mut acc: Vec<(ParamId, Matrix)> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let Op::Param(id) = node.op else { continue };
            let Some(g) = self.grads.get(i).and_then(|g| g.as_ref()) else {
                continue;
            };
            match acc.iter_mut().find(|(pid, _)| *pid == id) {
                Some((_, total)) => total.axpy_inplace(1.0, g),
                None => acc.push((id, g.clone())),
            }
        }
        acc
    }
}

/// Split borrow of a [`Graph`] during the backward sweep: node values
/// and ops are read-only, while gradients and the buffer pool mutate.
/// Holding the op by reference (instead of cloning it per node, as the
/// tape used to) is what lets `BceWithLogits` keep its targets matrix
/// un-copied.
struct BackwardCtx<'a> {
    nodes: &'a [Node],
    grads: &'a mut Vec<Option<Matrix>>,
    pool: &'a mut Vec<Vec<f32>>,
    stats: &'a mut PoolStats,
}

impl BackwardCtx<'_> {
    fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, take_buf(self.pool, self.stats, rows * cols))
    }

    /// Adds the delta `f(element_index)` into `node`'s gradient — in
    /// place when a buffer already exists, else into a pooled buffer.
    fn accumulate_with(&mut self, node: usize, rows: usize, cols: usize, f: impl Fn(usize) -> f32) {
        if !self.nodes[node].needs_grad {
            return;
        }
        match &mut self.grads[node] {
            Some(g) => {
                debug_assert_eq!(g.shape(), (rows, cols));
                for (i, o) in g.as_mut_slice().iter_mut().enumerate() {
                    *o += f(i);
                }
            }
            slot @ None => {
                let mut buf = take_buf(self.pool, self.stats, rows * cols);
                for (i, o) in buf.iter_mut().enumerate() {
                    *o = f(i);
                }
                *slot = Some(Matrix::from_vec(rows, cols, buf));
            }
        }
    }

    /// Adds an already-materialised delta into `node`'s gradient,
    /// recycling the delta's buffer when it is not kept.
    fn accumulate_owned(&mut self, node: usize, delta: Matrix) {
        if !self.nodes[node].needs_grad {
            self.pool.push(delta.into_vec());
            return;
        }
        match &mut self.grads[node] {
            Some(g) => {
                g.axpy_inplace(1.0, &delta);
                self.pool.push(delta.into_vec());
            }
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, i: usize, g: &Matrix) {
        let nodes = self.nodes;
        let gv = g.as_slice();
        match &nodes[i].op {
            Op::Input | Op::InputGrad | Op::Param(_) => {}
            &Op::MatMul(a, b) => {
                if nodes[a].needs_grad {
                    let (r, c) = nodes[a].value.shape();
                    let mut da = self.alloc(r, c);
                    g.matmul_t_into(&nodes[b].value, &mut da);
                    self.accumulate_owned(a, da);
                }
                if nodes[b].needs_grad {
                    let (r, c) = nodes[b].value.shape();
                    let mut db = self.alloc(r, c);
                    nodes[a].value.t_matmul_into(g, &mut db);
                    self.accumulate_owned(b, db);
                }
            }
            &Op::Add(a, b) => {
                let (r, c) = g.shape();
                self.accumulate_with(a, r, c, |i| gv[i]);
                self.accumulate_with(b, r, c, |i| gv[i]);
            }
            &Op::Sub(a, b) => {
                let (r, c) = g.shape();
                self.accumulate_with(a, r, c, |i| gv[i]);
                self.accumulate_with(b, r, c, |i| -gv[i]);
            }
            &Op::Mul(a, b) => {
                let (r, c) = g.shape();
                let av = nodes[a].value.as_slice();
                let bv = nodes[b].value.as_slice();
                self.accumulate_with(a, r, c, |i| gv[i] * bv[i]);
                self.accumulate_with(b, r, c, |i| gv[i] * av[i]);
            }
            &Op::Div(a, b) => {
                // d(a/b)/da = 1/b ; d(a/b)/db = -a/b².
                let (r, c) = g.shape();
                let av = nodes[a].value.as_slice();
                let bv = nodes[b].value.as_slice();
                self.accumulate_with(a, r, c, |i| gv[i] / bv[i]);
                self.accumulate_with(b, r, c, |i| -(gv[i] * av[i]) / (bv[i] * bv[i]));
            }
            &Op::AddBias(a, bias) => {
                let (r, c) = g.shape();
                self.accumulate_with(a, r, c, |i| gv[i]);
                // Bias gradient: column sums of g, as a 1 x n row.
                self.accumulate_with(bias, 1, c, |j| {
                    let mut s = 0.0;
                    for row in 0..r {
                        s += gv[row * c + j];
                    }
                    s
                });
            }
            &Op::Relu(a) => {
                let (r, c) = g.shape();
                let av = nodes[a].value.as_slice();
                self.accumulate_with(a, r, c, |i| if av[i] > 0.0 { gv[i] } else { 0.0 });
            }
            &Op::Sigmoid(a) => {
                let (r, c) = g.shape();
                let sv = nodes[i].value.as_slice();
                self.accumulate_with(a, r, c, |i| gv[i] * sv[i] * (1.0 - sv[i]));
            }
            &Op::Tanh(a) => {
                let (r, c) = g.shape();
                let yv = nodes[i].value.as_slice();
                self.accumulate_with(a, r, c, |i| gv[i] * (1.0 - yv[i] * yv[i]));
            }
            &Op::Exp(a) => {
                let (r, c) = g.shape();
                let yv = nodes[i].value.as_slice();
                self.accumulate_with(a, r, c, |i| gv[i] * yv[i]);
            }
            &Op::Square(a) => {
                let (r, c) = g.shape();
                let av = nodes[a].value.as_slice();
                self.accumulate_with(a, r, c, |i| 2.0 * gv[i] * av[i]);
            }
            &Op::Scale(a, s) => {
                let (r, c) = g.shape();
                self.accumulate_with(a, r, c, |i| gv[i] * s);
            }
            &Op::AddScalar(a) => {
                let (r, c) = g.shape();
                self.accumulate_with(a, r, c, |i| gv[i]);
            }
            &Op::SumAll(a) => {
                let (r, c) = nodes[a].value.shape();
                let val = gv[0];
                self.accumulate_with(a, r, c, |_| val);
            }
            &Op::MeanAll(a) => {
                let (r, c) = nodes[a].value.shape();
                let val = gv[0] / (r * c).max(1) as f32;
                self.accumulate_with(a, r, c, |_| val);
            }
            &Op::RowSum(a) => {
                let (r, c) = nodes[a].value.shape();
                if c > 0 {
                    self.accumulate_with(a, r, c, |i| gv[i / c]);
                }
            }
            Op::ConcatCols(parts) => {
                let gcols = g.cols();
                let mut offset = 0;
                for &p in parts {
                    let (r, c) = nodes[p].value.shape();
                    if c > 0 {
                        let off = offset;
                        self.accumulate_with(p, r, c, |i| gv[(i / c) * gcols + off + i % c]);
                    }
                    offset += c;
                }
            }
            &Op::SliceCols(a, start, end) => {
                let (r, c) = nodes[a].value.shape();
                let width = end - start;
                if c > 0 {
                    self.accumulate_with(a, r, c, |i| {
                        let col = i % c;
                        if col >= start && col < end {
                            gv[(i / c) * width + (col - start)]
                        } else {
                            0.0
                        }
                    });
                }
            }
            Op::BceWithLogits { logits, targets } => {
                let logits = *logits;
                let z = &nodes[logits].value;
                let (r, c) = z.shape();
                let n = z.as_slice().len().max(1) as f32;
                let scale = gv[0] / n;
                let zv = z.as_slice();
                let yv = targets.as_slice();
                self.accumulate_with(logits, r, c, |i| (stable_sigmoid(zv[i]) - yv[i]) * scale);
            }
        }
    }
}

#[inline]
fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[inline]
fn softplus(x: f32) -> f32 {
    // ln(1 + e^x) computed stably.
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::XorShiftRng;

    /// Numerically checks d(loss)/d(param) via central differences.
    fn gradient_check(build: impl Fn(&mut Graph, Tensor) -> Tensor, init: Matrix) {
        let mut store = ParamStore::new();
        let pid = store.add("p", init.clone());

        // Analytic gradient.
        let analytic = {
            let mut g = Graph::new();
            let p = g.param(&store, pid);
            let loss = build(&mut g, p);
            g.backward(loss);
            g.grad(p).expect("param must receive a gradient").clone()
        };

        // Numeric gradient.
        let eps = 1e-2f32;
        let (r, c) = init.shape();
        for i in 0..r {
            for j in 0..c {
                let orig = store.get(pid).get(i, j);
                store.get_mut(pid).set(i, j, orig + eps);
                let lp = {
                    let mut g = Graph::new();
                    let p = g.param(&store, pid);
                    let loss = build(&mut g, p);
                    g.value(loss).get(0, 0)
                };
                store.get_mut(pid).set(i, j, orig - eps);
                let lm = {
                    let mut g = Graph::new();
                    let p = g.param(&store, pid);
                    let loss = build(&mut g, p);
                    g.value(loss).get(0, 0)
                };
                store.get_mut(pid).set(i, j, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                let got = analytic.get(i, j);
                assert!(
                    (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs().max(got.abs())),
                    "grad mismatch at ({i},{j}): numeric {numeric}, analytic {got}"
                );
            }
        }
    }

    #[test]
    fn grad_check_dense_relu_mse() {
        let mut rng = XorShiftRng::new(3);
        let w = Matrix::gaussian(3, 2, &mut rng).scale(0.5);
        let x = Matrix::gaussian(4, 3, &mut rng);
        let y = Matrix::gaussian(4, 2, &mut rng);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let h0 = g.matmul(xt, p);
                // Shift pre-activations away from the ReLU kink so central
                // differences don't straddle the non-differentiable point.
                let h = g.add_scalar(h0, 0.75);
                let a = g.relu(h);
                let yt = g.input(y.clone());
                let d = g.sub(a, yt);
                let s = g.square(d);
                g.mean_all(s)
            },
            w,
        );
    }

    #[test]
    fn grad_check_sigmoid_tanh_exp_chain() {
        let mut rng = XorShiftRng::new(5);
        let w = Matrix::gaussian(2, 2, &mut rng).scale(0.3);
        let x = Matrix::gaussian(3, 2, &mut rng);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let h = g.matmul(xt, p);
                let s = g.sigmoid(h);
                let t = g.tanh(s);
                let e = g.exp(t);
                g.sum_all(e)
            },
            w,
        );
    }

    #[test]
    fn grad_check_bias_and_rowsum() {
        let b = Matrix::from_rows(&[&[0.1, -0.2, 0.3]]);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let h = g.add_bias(xt, p);
                let sq = g.square(h);
                let rs = g.row_sum(sq);
                g.mean_all(rs)
            },
            b,
        );
    }

    #[test]
    fn grad_check_concat_and_slice() {
        let mut rng = XorShiftRng::new(7);
        let w = Matrix::gaussian(2, 4, &mut rng).scale(0.4);
        let x = Matrix::gaussian(3, 2, &mut rng);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let h = g.matmul(xt, p); // 3 x 4
                let left = g.slice_cols(h, 0, 2);
                let right = g.slice_cols(h, 2, 4);
                let prod = g.mul(left, right);
                let cat = g.concat_cols(&[prod, left]);
                let sq = g.square(cat);
                g.sum_all(sq)
            },
            w,
        );
    }

    #[test]
    fn grad_check_bce_with_logits() {
        let mut rng = XorShiftRng::new(11);
        let w = Matrix::gaussian(2, 1, &mut rng).scale(0.6);
        let x = Matrix::gaussian(5, 2, &mut rng);
        let y = Matrix::from_vec(5, 1, vec![1.0, 0.0, 1.0, 0.0, 1.0]);
        gradient_check(
            move |g, p| {
                let xt = g.input(x.clone());
                let z = g.matmul(xt, p);
                g.bce_with_logits(z, y.clone())
            },
            w,
        );
    }

    #[test]
    fn grad_check_div() {
        let w = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        gradient_check(
            move |g, p| {
                // Divide by a strictly positive denominator built from p.
                let sq = g.square(p);
                let denom = g.add_scalar(sq, 1.0);
                let num = g.add_scalar(p, 2.0);
                let q = g.div(num, denom);
                let s = g.square(q);
                g.mean_all(s)
            },
            w,
        );
    }

    #[test]
    fn grad_check_scale_addscalar_sub() {
        let w = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]);
        gradient_check(
            move |g, p| {
                let s = g.scale(p, 3.0);
                let t = g.add_scalar(s, -1.0);
                let u = g.sub(t, p);
                let sq = g.square(u);
                g.mean_all(sq)
            },
            w,
        );
    }

    #[test]
    fn shared_param_grads_accumulate() {
        // loss = sum(p) + sum(p) ⇒ dp = 2 everywhere.
        let mut store = ParamStore::new();
        let pid = store.add("p", Matrix::filled(2, 2, 1.0));
        let mut g = Graph::new();
        let p1 = g.param(&store, pid);
        let p2 = g.param(&store, pid);
        let s1 = g.sum_all(p1);
        let s2 = g.sum_all(p2);
        let loss = g.add(s1, s2);
        g.backward(loss);
        let grads = g.param_grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].1, Matrix::filled(2, 2, 2.0));
    }

    #[test]
    fn bce_matches_manual_cross_entropy() {
        let mut g = Graph::new();
        let z = g.input(Matrix::from_vec(2, 1, vec![0.7, -1.3]));
        let y = Matrix::from_vec(2, 1, vec![1.0, 0.0]);
        let loss = g.bce_with_logits(z, y);
        let p0 = stable_sigmoid(0.7);
        let p1 = stable_sigmoid(-1.3);
        let manual = -(p0.ln() + (1.0 - p1).ln()) / 2.0;
        assert!((g.value(loss).get(0, 0) - manual).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_is_stable_for_extreme_logits() {
        let mut g = Graph::new();
        let z = g.input(Matrix::from_vec(1, 2, vec![100.0, -100.0]));
        let s = g.sigmoid(z);
        let v = g.value(s);
        assert!(v.get(0, 0) > 0.999 && v.get(0, 0).is_finite());
        assert!(v.get(0, 1) < 1e-3 && v.get(0, 1) >= 0.0);
    }

    #[test]
    #[should_panic]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let t = g.input(Matrix::zeros(2, 2));
        g.backward(t);
    }

    #[test]
    fn unused_branches_have_no_grad() {
        let mut store = ParamStore::new();
        let pid = store.add("p", Matrix::filled(1, 1, 1.0));
        let mut g = Graph::new();
        let p = g.param(&store, pid);
        let unused = g.input(Matrix::filled(1, 1, 5.0));
        let loss = g.sum_all(p);
        g.backward(loss);
        assert!(g.grad(unused).is_none());
        assert!(g.grad(p).is_some());
    }

    #[test]
    fn input_grads_are_opt_in() {
        // Plain inputs never receive a gradient; `input_with_grad` leaves
        // record d(loss)/d(input) — and never show up in param_grads().
        let x_val = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        let build = |with_grad: bool| {
            let mut g = Graph::new();
            let x = if with_grad {
                g.input_with_grad(x_val.clone())
            } else {
                g.input(x_val.clone())
            };
            let sq = g.square(x);
            let loss = g.sum_all(sq);
            g.backward(loss);
            (g.grad(x).cloned(), g.param_grads().len())
        };
        let (plain, n_params) = build(false);
        assert!(plain.is_none(), "plain input must not record a gradient");
        assert_eq!(n_params, 0);
        let (opt_in, n_params) = build(true);
        // d(Σ x²)/dx = 2x.
        let got = opt_in.expect("input_with_grad must record a gradient");
        for (g_val, x) in got.as_slice().iter().zip(x_val.as_slice()) {
            assert!((g_val - 2.0 * x).abs() < 1e-6, "{g_val} vs {}", 2.0 * x);
        }
        assert_eq!(
            n_params, 0,
            "input gradients must not appear in param_grads"
        );
    }

    #[test]
    fn input_rows_matches_slice_rows() {
        let mut rng = XorShiftRng::new(21);
        let x = Matrix::gaussian(6, 3, &mut rng);
        let mut g = Graph::new();
        let a = g.input(x.slice_rows(2, 5));
        let b = g.input_rows(&x, 2, 5);
        assert_eq!(g.value(a), g.value(b));
        let c = g.input_ref(&x);
        assert_eq!(g.value(c), &x);
    }

    #[test]
    fn reset_reuses_buffers_and_grads_are_identical() {
        // Two consecutive reset() + forward + backward cycles must produce
        // bit-identical gradients, and the tape must stop allocating once
        // warm (zero growth in pool capacity or fresh allocations).
        let mut rng = XorShiftRng::new(13);
        let x = Matrix::gaussian(12, 5, &mut rng);
        let y = Matrix::gaussian(12, 2, &mut rng);
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::gaussian(5, 2, &mut rng));
        let b = store.add("b", Matrix::zeros(1, 2));

        let step = |g: &mut Graph| {
            g.reset();
            let xt = g.input_ref(&x);
            let wt = g.param(&store, w);
            let bt = g.param(&store, b);
            let h = g.matmul(xt, wt);
            let hb = g.add_bias(h, bt);
            let act = g.tanh(hb);
            let yt = g.input_ref(&y);
            let d = g.sub(act, yt);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            g.backward(loss);
            g.param_grads()
        };

        let mut g = Graph::new();
        let first = step(&mut g);
        let warm_allocs = g.fresh_allocs();
        let second = step(&mut g);
        let third = step(&mut g);
        assert_eq!(
            g.fresh_allocs(),
            warm_allocs,
            "tape allocated after warm-up"
        );
        for ((ida, ga), (idb, gb)) in first.iter().zip(&second) {
            assert_eq!(ida, idb);
            assert_eq!(ga.as_slice(), gb.as_slice(), "grads differ bitwise");
        }
        for ((ida, ga), (idb, gb)) in second.iter().zip(&third) {
            assert_eq!(ida, idb);
            assert_eq!(ga.as_slice(), gb.as_slice(), "grads differ bitwise");
        }
    }

    #[test]
    fn reset_graph_matches_fresh_graph() {
        // A reused tape must produce the same values and gradients as a
        // brand-new one.
        let mut rng = XorShiftRng::new(17);
        let x = Matrix::gaussian(4, 3, &mut rng);
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::gaussian(3, 3, &mut rng));

        let build = |g: &mut Graph| {
            let xt = g.input_ref(&x);
            let wt = g.param(&store, w);
            let h = g.matmul(xt, wt);
            let s = g.sigmoid(h);
            let loss = g.mean_all(s);
            g.backward(loss);
            (g.value(loss).get(0, 0), g.param_grads())
        };

        let mut reused = Graph::new();
        // Pollute the pool with a differently-shaped step first.
        let junk = reused.input(Matrix::gaussian(7, 2, &mut rng));
        let js = reused.square(junk);
        let jl = reused.mean_all(js);
        reused.backward(jl);
        reused.reset();
        let (loss_reused, grads_reused) = build(&mut reused);

        let mut fresh = Graph::new();
        let (loss_fresh, grads_fresh) = build(&mut fresh);

        assert_eq!(loss_reused, loss_fresh);
        assert_eq!(grads_reused.len(), grads_fresh.len());
        for ((ida, ga), (idb, gb)) in grads_reused.iter().zip(&grads_fresh) {
            assert_eq!(ida, idb);
            assert_eq!(ga.as_slice(), gb.as_slice());
        }
    }
}
