//! Weight initialisation schemes.

use crate::NnRng;
use rand::RngExt;
use vaer_linalg::Matrix;

/// Initialisation scheme for dense layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initializer {
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    /// Suited to sigmoid/tanh layers.
    Xavier,
    /// He/Kaiming uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
    /// Suited to ReLU layers.
    He,
    /// All zeros (used for biases).
    Zeros,
}

impl Initializer {
    /// Draws a `fan_in x fan_out` weight matrix.
    pub fn sample(self, fan_in: usize, fan_out: usize, rng: &mut NnRng) -> Matrix {
        match self {
            Initializer::Zeros => Matrix::zeros(fan_in, fan_out),
            Initializer::Xavier => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Self::uniform(fan_in, fan_out, a, rng)
            }
            Initializer::He => {
                let a = (6.0 / fan_in.max(1) as f32).sqrt();
                Self::uniform(fan_in, fan_out, a, rng)
            }
        }
    }

    fn uniform(rows: usize, cols: usize, a: f32, rng: &mut NnRng) -> Matrix {
        let data = (0..rows * cols).map(|_| rng.random_range(-a..a)).collect();
        Matrix::from_vec(rows, cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = NnRng::seed_from_u64(1);
        let w = Initializer::Xavier.sample(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= a));
        // Not all zero.
        assert!(w.fro_norm() > 0.0);
    }

    #[test]
    fn he_bounds() {
        let mut rng = NnRng::seed_from_u64(2);
        let w = Initializer::He.sample(8, 4, &mut rng);
        let a = (6.0f32 / 8.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = NnRng::seed_from_u64(3);
        let w = Initializer::Zeros.sample(3, 3, &mut rng);
        assert_eq!(w, Matrix::zeros(3, 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Initializer::Xavier.sample(4, 4, &mut NnRng::seed_from_u64(9));
        let b = Initializer::Xavier.sample(4, 4, &mut NnRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
