//! Property-based verification of the autodiff engine: for randomly
//! generated smooth computation graphs, analytic gradients must agree
//! with central finite differences.

use proptest::prelude::*;
use vaer_linalg::Matrix;
use vaer_nn::{Graph, ParamStore, Tensor};

/// A smooth unary/binary op applied at one step of a random chain.
#[derive(Debug, Clone, Copy)]
enum SmoothOp {
    Tanh,
    Sigmoid,
    Square,
    Scale,
    AddInput,
    MulInput,
    AddScalar,
}

fn op_strategy() -> impl Strategy<Value = SmoothOp> {
    prop_oneof![
        Just(SmoothOp::Tanh),
        Just(SmoothOp::Sigmoid),
        Just(SmoothOp::Square),
        Just(SmoothOp::Scale),
        Just(SmoothOp::AddInput),
        Just(SmoothOp::MulInput),
        Just(SmoothOp::AddScalar),
    ]
}

/// Applies the op chain to the parameter tensor, returning a scalar loss.
fn build(g: &mut Graph, p: Tensor, chain: &[SmoothOp], aux: &Matrix) -> Tensor {
    let mut x = p;
    for (i, op) in chain.iter().enumerate() {
        x = match op {
            SmoothOp::Tanh => g.tanh(x),
            SmoothOp::Sigmoid => g.sigmoid(x),
            SmoothOp::Square => g.square(x),
            SmoothOp::Scale => g.scale(x, 0.7 + i as f32 * 0.1),
            SmoothOp::AddInput => {
                let t = g.input(aux.clone());
                g.add(x, t)
            }
            SmoothOp::MulInput => {
                let t = g.input(aux.clone());
                g.mul(x, t)
            }
            SmoothOp::AddScalar => g.add_scalar(x, -0.3),
        };
    }
    g.mean_all(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analytic_gradients_match_finite_differences(
        chain in proptest::collection::vec(op_strategy(), 1..6),
        values in proptest::collection::vec(-1.5f32..1.5, 4),
        aux_values in proptest::collection::vec(-1.5f32..1.5, 4),
    ) {
        let init = Matrix::from_vec(2, 2, values.clone());
        let aux = Matrix::from_vec(2, 2, aux_values);
        let mut store = ParamStore::new();
        let pid = store.add("p", init);

        // Analytic gradient.
        let analytic = {
            let mut g = Graph::new();
            let p = g.param(&store, pid);
            let loss = build(&mut g, p, &chain, &aux);
            g.backward(loss);
            g.grad(p).expect("param gradient").clone()
        };

        // Central differences.
        let eps = 1e-2f32;
        for i in 0..2 {
            for j in 0..2 {
                let orig = store.get(pid).get(i, j);
                let eval = |store: &ParamStore| {
                    let mut g = Graph::new();
                    let p = g.param(store, pid);
                    let loss = build(&mut g, p, &chain, &aux);
                    g.value(loss).get(0, 0)
                };
                store.get_mut(pid).set(i, j, orig + eps);
                let up = eval(&store);
                store.get_mut(pid).set(i, j, orig - eps);
                let down = eval(&store);
                store.get_mut(pid).set(i, j, orig);
                let numeric = (up - down) / (2.0 * eps);
                let got = analytic.get(i, j);
                prop_assert!(
                    (numeric - got).abs() < 5e-2 * (1.0 + numeric.abs().max(got.abs())),
                    "chain {:?} cell ({i},{j}): numeric {numeric} vs analytic {got}",
                    chain
                );
            }
        }
    }

    #[test]
    fn backward_is_idempotent_on_values(
        values in proptest::collection::vec(-2.0f32..2.0, 4),
    ) {
        // Running backward must not mutate forward values.
        let mut store = ParamStore::new();
        let pid = store.add("p", Matrix::from_vec(2, 2, values));
        let mut g = Graph::new();
        let p = g.param(&store, pid);
        let s = g.square(p);
        let loss = g.mean_all(s);
        let before = g.value(s).clone();
        g.backward(loss);
        prop_assert_eq!(g.value(s), &before);
    }
}
