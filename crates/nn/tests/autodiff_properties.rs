//! Property-style verification of the autodiff engine: for randomly
//! generated smooth computation graphs, analytic gradients must agree
//! with central finite differences.
//!
//! Uses a seeded RNG loop instead of an external property-testing
//! framework (the workspace is dependency-free by construction); each
//! case prints enough context on failure to replay it.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use vaer_linalg::Matrix;
use vaer_nn::{Graph, ParamStore, Tensor};

/// A smooth unary/binary op applied at one step of a random chain.
#[derive(Debug, Clone, Copy)]
enum SmoothOp {
    Tanh,
    Sigmoid,
    Square,
    Scale,
    AddInput,
    MulInput,
    AddScalar,
}

const OPS: [SmoothOp; 7] = [
    SmoothOp::Tanh,
    SmoothOp::Sigmoid,
    SmoothOp::Square,
    SmoothOp::Scale,
    SmoothOp::AddInput,
    SmoothOp::MulInput,
    SmoothOp::AddScalar,
];

/// Applies the op chain to the parameter tensor, returning a scalar loss.
fn build(g: &mut Graph, p: Tensor, chain: &[SmoothOp], aux: &Matrix) -> Tensor {
    let mut x = p;
    for (i, op) in chain.iter().enumerate() {
        x = match op {
            SmoothOp::Tanh => g.tanh(x),
            SmoothOp::Sigmoid => g.sigmoid(x),
            SmoothOp::Square => g.square(x),
            SmoothOp::Scale => g.scale(x, 0.7 + i as f32 * 0.1),
            SmoothOp::AddInput => {
                let t = g.input(aux.clone());
                g.add(x, t)
            }
            SmoothOp::MulInput => {
                let t = g.input(aux.clone());
                g.mul(x, t)
            }
            SmoothOp::AddScalar => g.add_scalar(x, -0.3),
        };
    }
    g.mean_all(x)
}

fn random_values(rng: &mut StdRng, n: usize, bound: f32) -> Vec<f32> {
    (0..n).map(|_| rng.random_range(-bound..bound)).collect()
}

#[test]
fn analytic_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(0xAD1F);
    for case in 0..48 {
        let chain: Vec<SmoothOp> = (0..rng.random_range(1..6usize))
            .map(|_| OPS[rng.random_range(0..OPS.len())])
            .collect();
        let init = Matrix::from_vec(2, 2, random_values(&mut rng, 4, 1.5));
        let aux = Matrix::from_vec(2, 2, random_values(&mut rng, 4, 1.5));
        let mut store = ParamStore::new();
        let pid = store.add("p", init);

        // Analytic gradient.
        let analytic = {
            let mut g = Graph::new();
            let p = g.param(&store, pid);
            let loss = build(&mut g, p, &chain, &aux);
            g.backward(loss);
            g.grad(p).expect("param gradient").clone()
        };

        // Central differences.
        let eps = 1e-2f32;
        for i in 0..2 {
            for j in 0..2 {
                let orig = store.get(pid).get(i, j);
                let eval = |store: &ParamStore| {
                    let mut g = Graph::new();
                    let p = g.param(store, pid);
                    let loss = build(&mut g, p, &chain, &aux);
                    g.value(loss).get(0, 0)
                };
                store.get_mut(pid).set(i, j, orig + eps);
                let up = eval(&store);
                store.get_mut(pid).set(i, j, orig - eps);
                let down = eval(&store);
                store.get_mut(pid).set(i, j, orig);
                let numeric = (up - down) / (2.0 * eps);
                let got = analytic.get(i, j);
                assert!(
                    (numeric - got).abs() < 5e-2 * (1.0 + numeric.abs().max(got.abs())),
                    "case {case} chain {chain:?} cell ({i},{j}): numeric {numeric} vs analytic {got}"
                );
            }
        }
    }
}

#[test]
fn backward_is_idempotent_on_values() {
    let mut rng = StdRng::seed_from_u64(0xB0B0);
    for _case in 0..32 {
        // Running backward must not mutate forward values.
        let mut store = ParamStore::new();
        let pid = store.add("p", Matrix::from_vec(2, 2, random_values(&mut rng, 4, 2.0)));
        let mut g = Graph::new();
        let p = g.param(&store, pid);
        let s = g.square(p);
        let loss = g.mean_all(s);
        let before = g.value(s).clone();
        g.backward(loss);
        assert_eq!(g.value(s), &before);
    }
}
