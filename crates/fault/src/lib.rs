//! Deterministic, env-driven failpoints.
//!
//! Production code sprinkles named failpoints at the places where the
//! real world fails — checkpoint writes, label journals, epoch and round
//! boundaries — and tests (or an operator, via the `VAER_FAILPOINTS`
//! environment variable) arm them to inject IO errors, torn writes,
//! panics, or NaN gradients at an exact, reproducible hit count. When no
//! failpoint is armed, [`check`] is a single relaxed atomic load, so the
//! hooks are free on hot paths.
//!
//! # Spec syntax
//!
//! A spec is a comma-separated list of `name=action[@N[+]]` or
//! `name=action~p` clauses:
//!
//! ```text
//! VAER_FAILPOINTS=checkpoint.write=err@2,al.round=panic@3
//! VAER_FAILPOINTS=exec.score=err~0.25
//! ```
//!
//! - `action` is one of `err`, `panic`, `torn`, `nan`.
//! - `@N` fires on the Nth hit only (1-based).
//! - `@N+` fires on the Nth and every later hit.
//! - `~p` fires each hit independently with probability `p` in `(0, 1]`,
//!   drawn from a per-failpoint deterministic RNG (seed it with
//!   [`configure_seeded`]; plain [`configure`] uses seed 0). Same spec +
//!   same seed + same hit order = same firing schedule — the substrate
//!   chaos-soak harnesses randomise over.
//! - No `@`/`~` clause fires on every hit.
//!
//! The environment variable is read once, on the first [`check`] call;
//! tests arm failpoints programmatically with [`configure`] and disarm
//! them with [`clear`]. Failpoint state is process-global — tests that
//! arm failpoints must serialise against each other (e.g. behind a
//! `Mutex`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

/// Central registry of every failpoint site in the workspace (sorted,
/// unique). The `failpoint-registry` rule of `vaer-lint` rejects any
/// [`check`]/[`trigger`] call whose name is missing here, and flags
/// entries no code references — so this list is always exactly the
/// injectable surface, and fault-matrix tests can iterate it instead of
/// relying on tribal knowledge of where the hooks live.
pub const FAILPOINTS: &[&str] = &[
    // Label-arrival boundary in the active-learning loop.
    "al.labels",
    // Per-round boundary in the active-learning loop.
    "al.round",
    // Durable snapshot write (supports err/torn/panic).
    "checkpoint.write",
    // Resolution executor stage boundaries (support err/panic): LSH
    // blocking, feature encoding, matcher scoring, link selection, and
    // entity clustering.
    "exec.block",
    "exec.cluster",
    "exec.encode",
    "exec.link",
    "exec.score",
    // Label journal append (supports err).
    "journal.append",
    // Matcher gradient step (supports nan).
    "matcher.grads",
    // VAE epoch boundary (the kill-switch used by crash tests).
    "vae.epoch",
    // VAE gradient step (supports nan).
    "vae.grads",
];

/// What an armed failpoint injects at its trigger site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return an injected IO error.
    Err,
    /// Panic (simulates a crash / kill at the failpoint).
    Panic,
    /// Write a torn (truncated) file instead of the full payload.
    Torn,
    /// Poison a value with NaN (simulates numeric divergence).
    Nan,
}

impl Action {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "err" => Ok(Action::Err),
            "panic" => Ok(Action::Panic),
            "torn" => Ok(Action::Torn),
            "nan" => Ok(Action::Nan),
            other => Err(format!(
                "unknown failpoint action '{other}' (expected err|panic|torn|nan)"
            )),
        }
    }
}

#[derive(Debug, Clone)]
struct Failpoint {
    name: String,
    action: Action,
    /// First hit (1-based) the failpoint fires on.
    from: u64,
    /// Last hit it fires on (`u64::MAX` = open-ended).
    to: u64,
    hits: u64,
    /// Hits that actually fired (≤ `hits`; differs under `~p`).
    fired: u64,
    /// `~p` clause: per-hit firing probability.
    prob: Option<f64>,
    /// Deterministic per-failpoint RNG state for `~p` draws.
    rng: u64,
}

/// FNV-1a, folding a failpoint name into its RNG stream so two `~p`
/// clauses under one seed still draw independent schedules.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 step: advances `state` and returns a uniform draw.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<Failpoint>> = Mutex::new(Vec::new());
static ENV_INIT: Once = Once::new();

fn registry() -> MutexGuard<'static, Vec<Failpoint>> {
    // Survive poisoning: a failpoint-induced panic in one test must not
    // wedge every later check in the process.
    REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms the failpoints described by `spec` (see the module docs for the
/// syntax), replacing any previously armed set and resetting hit counts.
///
/// # Errors
/// Returns a description of the first malformed clause; the previously
/// armed set is left untouched in that case.
pub fn configure(spec: &str) -> Result<(), String> {
    configure_seeded(spec, 0)
}

/// Like [`configure`], but seeds the RNG streams behind `~p` clauses:
/// each probabilistic failpoint draws from `seed ^ fnv1a(name)`, so a
/// chaos harness gets a reproducible firing schedule per `(spec, seed)`
/// pair while distinct sites stay decorrelated.
///
/// # Errors
/// Returns a description of the first malformed clause; the previously
/// armed set is left untouched in that case.
pub fn configure_seeded(spec: &str, seed: u64) -> Result<(), String> {
    let mut parsed = Vec::new();
    for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        let (name, rhs) = clause
            .split_once('=')
            .ok_or_else(|| format!("failpoint clause '{clause}' is missing '='"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("failpoint clause '{clause}' has an empty name"));
        }
        let (action, from, to, prob) = if let Some((action, p)) = rhs.split_once('~') {
            let action = Action::parse(action.trim())?;
            let p: f64 = p
                .trim()
                .parse()
                .map_err(|_| format!("failpoint clause '{clause}' has a bad probability"))?;
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!(
                    "failpoint clause '{clause}': probability must be in (0, 1]"
                ));
            }
            (action, 1, u64::MAX, Some(p))
        } else {
            match rhs.split_once('@') {
                None => (Action::parse(rhs.trim())?, 1, u64::MAX, None),
                Some((action, count)) => {
                    let action = Action::parse(action.trim())?;
                    let (count, open) = match count.strip_suffix('+') {
                        Some(c) => (c, true),
                        None => (count, false),
                    };
                    let n: u64 = count
                        .trim()
                        .parse()
                        .map_err(|_| format!("failpoint clause '{clause}' has a bad hit count"))?;
                    if n == 0 {
                        return Err(format!("failpoint clause '{clause}': hits are 1-based"));
                    }
                    (action, n, if open { u64::MAX } else { n }, None)
                }
            }
        };
        parsed.push(Failpoint {
            name: name.to_string(),
            action,
            from,
            to,
            hits: 0,
            fired: 0,
            prob,
            rng: seed ^ fnv1a(name),
        });
    }
    let armed = !parsed.is_empty();
    *registry() = parsed;
    ARMED.store(armed, Ordering::Release);
    Ok(())
}

/// Disarms every failpoint and resets hit counts.
pub fn clear() {
    registry().clear();
    ARMED.store(false, Ordering::Release);
}

/// Number of times the named failpoint site has been reached since it was
/// armed (0 if it is not armed).
pub fn hits(name: &str) -> u64 {
    registry()
        .iter()
        .find(|fp| fp.name == name)
        .map_or(0, |fp| fp.hits)
}

/// Number of times the named failpoint actually *fired* (injected its
/// action) since it was armed. Equals [`hits`] inside the window for
/// deterministic clauses; under `~p` it counts the successful draws, so
/// chaos harnesses can reconcile injected faults against the health
/// report a run returned.
pub fn fired(name: &str) -> u64 {
    registry()
        .iter()
        .find(|fp| fp.name == name)
        .map_or(0, |fp| fp.fired)
}

/// Checks the named failpoint site. Returns the action to inject if the
/// site is armed and this hit falls inside the configured window.
///
/// When nothing is armed this is a single relaxed atomic load — cheap
/// enough for per-batch hot loops.
pub fn check(name: &str) -> Option<Action> {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("VAER_FAILPOINTS") {
            if let Err(e) = configure(&spec) {
                eprintln!("vaer-fault: ignoring VAER_FAILPOINTS: {e}");
            }
        }
    });
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(name)
}

#[cold]
fn check_slow(name: &str) -> Option<Action> {
    let mut fps = registry();
    let fp = fps.iter_mut().find(|fp| fp.name == name)?;
    fp.hits += 1;
    if fp.hits < fp.from || fp.hits > fp.to {
        return None;
    }
    if let Some(p) = fp.prob {
        // Every in-window hit consumes exactly one draw, so schedules
        // are a pure function of (spec, seed, hit order).
        let draw = (next_u64(&mut fp.rng) >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= p {
            return None;
        }
    }
    fp.fired += 1;
    Some(fp.action)
}

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serialises tests that arm failpoints. Failpoint state is
/// process-global, so any test calling [`configure`] should hold this
/// guard for its whole body (poisoning from an injected panic is
/// absorbed).
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Like [`check`], but executes [`Action::Panic`] on the spot (the
/// standard kill-switch shape). The other actions are returned for the
/// call site to inject, since only it knows what "an IO error" or "a torn
/// write" means there.
///
/// # Panics
/// Panics when the site is armed with [`Action::Panic`] and the hit falls
/// inside the configured window — that is the feature.
pub fn trigger(name: &str) -> Option<Action> {
    match check(name) {
        Some(Action::Panic) => panic!("vaer-fault: injected panic at failpoint '{name}'"),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn unarmed_sites_are_silent() {
        let _g = guard();
        clear();
        assert_eq!(check("nothing.here"), None);
        assert_eq!(hits("nothing.here"), 0);
    }

    #[test]
    fn nth_hit_fires_exactly_once() {
        let _g = guard();
        configure("x=err@3").unwrap();
        assert_eq!(check("x"), None);
        assert_eq!(check("x"), None);
        assert_eq!(check("x"), Some(Action::Err));
        assert_eq!(check("x"), None);
        assert_eq!(hits("x"), 4);
        clear();
    }

    #[test]
    fn open_window_fires_from_n_onward() {
        let _g = guard();
        configure("y=torn@2+").unwrap();
        assert_eq!(check("y"), None);
        assert_eq!(check("y"), Some(Action::Torn));
        assert_eq!(check("y"), Some(Action::Torn));
        clear();
    }

    #[test]
    fn bare_action_fires_every_hit_and_names_are_scoped() {
        let _g = guard();
        configure("a=nan, b=err@1").unwrap();
        assert_eq!(check("a"), Some(Action::Nan));
        assert_eq!(check("a"), Some(Action::Nan));
        assert_eq!(check("b"), Some(Action::Err));
        assert_eq!(check("b"), None);
        assert_eq!(check("c"), None);
        clear();
    }

    #[test]
    fn trigger_panics_on_panic_action() {
        let _g = guard();
        configure("kill=panic@1").unwrap();
        let r = std::panic::catch_unwind(|| trigger("kill"));
        assert!(r.is_err(), "panic action must panic");
        clear();
    }

    #[test]
    fn registry_is_sorted_unique_and_armable() {
        let _g = guard();
        for pair in FAILPOINTS.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?} out of order or duplicated");
        }
        // Every registered site can actually be armed and tripped — the
        // registry is a live surface, not documentation.
        for name in FAILPOINTS {
            configure(&format!("{name}=err@1")).unwrap();
            assert_eq!(check(name), Some(Action::Err), "site `{name}` did not fire");
            clear();
        }
    }

    #[test]
    fn probabilistic_clause_is_seed_deterministic() {
        let _g = guard();
        let schedule = |seed: u64| -> Vec<bool> {
            configure_seeded("p=err~0.5", seed).unwrap();
            let s = (0..64).map(|_| check("p").is_some()).collect();
            clear();
            s
        };
        let a = schedule(42);
        let b = schedule(42);
        assert_eq!(a, b, "same (spec, seed) must give the same schedule");
        let c = schedule(43);
        assert_ne!(a, c, "different seeds should differ over 64 draws");
        let fires = a.iter().filter(|&&f| f).count();
        assert!(
            (8..=56).contains(&fires),
            "p=0.5 over 64 draws fired {fires} times — draw mapping broken?"
        );
    }

    #[test]
    fn probabilistic_fired_counts_successful_draws() {
        let _g = guard();
        configure_seeded("p=err~0.5", 7).unwrap();
        let mut expect = 0;
        for _ in 0..32 {
            if check("p").is_some() {
                expect += 1;
            }
        }
        assert_eq!(hits("p"), 32);
        assert_eq!(fired("p"), expect);
        assert!(fired("p") < hits("p"), "p=0.5 over 32 draws never skipped?");
        clear();
    }

    #[test]
    fn probability_one_fires_every_hit() {
        let _g = guard();
        configure_seeded("p=nan~1.0", 9).unwrap();
        for _ in 0..8 {
            assert_eq!(check("p"), Some(Action::Nan));
        }
        assert_eq!(fired("p"), 8);
        clear();
    }

    #[test]
    fn malformed_probabilities_are_rejected() {
        let _g = guard();
        clear();
        assert!(configure("x=err~0").is_err());
        assert!(configure("x=err~1.5").is_err());
        assert!(configure("x=err~nope").is_err());
        assert!(configure("x=err~-0.1").is_err());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = guard();
        clear();
        assert!(configure("noequals").is_err());
        assert!(configure("x=explode").is_err());
        assert!(configure("x=err@0").is_err());
        assert!(configure("x=err@abc").is_err());
        assert!(configure("=err").is_err());
        // A rejected spec leaves the armed set untouched.
        configure("ok=err").unwrap();
        assert!(configure("bad=").is_err());
        assert_eq!(check("ok"), Some(Action::Err));
        clear();
    }
}
