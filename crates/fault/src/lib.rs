//! Deterministic, env-driven failpoints.
//!
//! Production code sprinkles named failpoints at the places where the
//! real world fails — checkpoint writes, label journals, epoch and round
//! boundaries — and tests (or an operator, via the `VAER_FAILPOINTS`
//! environment variable) arm them to inject IO errors, torn writes,
//! panics, or NaN gradients at an exact, reproducible hit count. When no
//! failpoint is armed, [`check`] is a single relaxed atomic load, so the
//! hooks are free on hot paths.
//!
//! # Spec syntax
//!
//! A spec is a comma-separated list of `name=action[@N[+]]` clauses:
//!
//! ```text
//! VAER_FAILPOINTS=checkpoint.write=err@2,al.round=panic@3
//! ```
//!
//! - `action` is one of `err`, `panic`, `torn`, `nan`.
//! - `@N` fires on the Nth hit only (1-based).
//! - `@N+` fires on the Nth and every later hit.
//! - No `@` clause fires on every hit.
//!
//! The environment variable is read once, on the first [`check`] call;
//! tests arm failpoints programmatically with [`configure`] and disarm
//! them with [`clear`]. Failpoint state is process-global — tests that
//! arm failpoints must serialise against each other (e.g. behind a
//! `Mutex`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once};

/// Central registry of every failpoint site in the workspace (sorted,
/// unique). The `failpoint-registry` rule of `vaer-lint` rejects any
/// [`check`]/[`trigger`] call whose name is missing here, and flags
/// entries no code references — so this list is always exactly the
/// injectable surface, and fault-matrix tests can iterate it instead of
/// relying on tribal knowledge of where the hooks live.
pub const FAILPOINTS: &[&str] = &[
    // Label-arrival boundary in the active-learning loop.
    "al.labels",
    // Per-round boundary in the active-learning loop.
    "al.round",
    // Durable snapshot write (supports err/torn/panic).
    "checkpoint.write",
    // Resolution executor stage boundaries (support err/panic): LSH
    // blocking, feature encoding, matcher scoring, link selection, and
    // entity clustering.
    "exec.block",
    "exec.cluster",
    "exec.encode",
    "exec.link",
    "exec.score",
    // Label journal append (supports err).
    "journal.append",
    // Matcher gradient step (supports nan).
    "matcher.grads",
    // VAE epoch boundary (the kill-switch used by crash tests).
    "vae.epoch",
    // VAE gradient step (supports nan).
    "vae.grads",
];

/// What an armed failpoint injects at its trigger site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return an injected IO error.
    Err,
    /// Panic (simulates a crash / kill at the failpoint).
    Panic,
    /// Write a torn (truncated) file instead of the full payload.
    Torn,
    /// Poison a value with NaN (simulates numeric divergence).
    Nan,
}

impl Action {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "err" => Ok(Action::Err),
            "panic" => Ok(Action::Panic),
            "torn" => Ok(Action::Torn),
            "nan" => Ok(Action::Nan),
            other => Err(format!(
                "unknown failpoint action '{other}' (expected err|panic|torn|nan)"
            )),
        }
    }
}

#[derive(Debug, Clone)]
struct Failpoint {
    name: String,
    action: Action,
    /// First hit (1-based) the failpoint fires on.
    from: u64,
    /// Last hit it fires on (`u64::MAX` = open-ended).
    to: u64,
    hits: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<Failpoint>> = Mutex::new(Vec::new());
static ENV_INIT: Once = Once::new();

fn registry() -> MutexGuard<'static, Vec<Failpoint>> {
    // Survive poisoning: a failpoint-induced panic in one test must not
    // wedge every later check in the process.
    REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms the failpoints described by `spec` (see the module docs for the
/// syntax), replacing any previously armed set and resetting hit counts.
///
/// # Errors
/// Returns a description of the first malformed clause; the previously
/// armed set is left untouched in that case.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        let (name, rhs) = clause
            .split_once('=')
            .ok_or_else(|| format!("failpoint clause '{clause}' is missing '='"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("failpoint clause '{clause}' has an empty name"));
        }
        let (action, from, to) = match rhs.split_once('@') {
            None => (Action::parse(rhs.trim())?, 1, u64::MAX),
            Some((action, count)) => {
                let action = Action::parse(action.trim())?;
                let (count, open) = match count.strip_suffix('+') {
                    Some(c) => (c, true),
                    None => (count, false),
                };
                let n: u64 = count
                    .trim()
                    .parse()
                    .map_err(|_| format!("failpoint clause '{clause}' has a bad hit count"))?;
                if n == 0 {
                    return Err(format!("failpoint clause '{clause}': hits are 1-based"));
                }
                (action, n, if open { u64::MAX } else { n })
            }
        };
        parsed.push(Failpoint {
            name: name.to_string(),
            action,
            from,
            to,
            hits: 0,
        });
    }
    let armed = !parsed.is_empty();
    *registry() = parsed;
    ARMED.store(armed, Ordering::Release);
    Ok(())
}

/// Disarms every failpoint and resets hit counts.
pub fn clear() {
    registry().clear();
    ARMED.store(false, Ordering::Release);
}

/// Number of times the named failpoint site has been reached since it was
/// armed (0 if it is not armed).
pub fn hits(name: &str) -> u64 {
    registry()
        .iter()
        .find(|fp| fp.name == name)
        .map_or(0, |fp| fp.hits)
}

/// Checks the named failpoint site. Returns the action to inject if the
/// site is armed and this hit falls inside the configured window.
///
/// When nothing is armed this is a single relaxed atomic load — cheap
/// enough for per-batch hot loops.
pub fn check(name: &str) -> Option<Action> {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("VAER_FAILPOINTS") {
            if let Err(e) = configure(&spec) {
                eprintln!("vaer-fault: ignoring VAER_FAILPOINTS: {e}");
            }
        }
    });
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(name)
}

#[cold]
fn check_slow(name: &str) -> Option<Action> {
    let mut fps = registry();
    let fp = fps.iter_mut().find(|fp| fp.name == name)?;
    fp.hits += 1;
    if fp.hits >= fp.from && fp.hits <= fp.to {
        Some(fp.action)
    } else {
        None
    }
}

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serialises tests that arm failpoints. Failpoint state is
/// process-global, so any test calling [`configure`] should hold this
/// guard for its whole body (poisoning from an injected panic is
/// absorbed).
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Like [`check`], but executes [`Action::Panic`] on the spot (the
/// standard kill-switch shape). The other actions are returned for the
/// call site to inject, since only it knows what "an IO error" or "a torn
/// write" means there.
///
/// # Panics
/// Panics when the site is armed with [`Action::Panic`] and the hit falls
/// inside the configured window — that is the feature.
pub fn trigger(name: &str) -> Option<Action> {
    match check(name) {
        Some(Action::Panic) => panic!("vaer-fault: injected panic at failpoint '{name}'"),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn unarmed_sites_are_silent() {
        let _g = guard();
        clear();
        assert_eq!(check("nothing.here"), None);
        assert_eq!(hits("nothing.here"), 0);
    }

    #[test]
    fn nth_hit_fires_exactly_once() {
        let _g = guard();
        configure("x=err@3").unwrap();
        assert_eq!(check("x"), None);
        assert_eq!(check("x"), None);
        assert_eq!(check("x"), Some(Action::Err));
        assert_eq!(check("x"), None);
        assert_eq!(hits("x"), 4);
        clear();
    }

    #[test]
    fn open_window_fires_from_n_onward() {
        let _g = guard();
        configure("y=torn@2+").unwrap();
        assert_eq!(check("y"), None);
        assert_eq!(check("y"), Some(Action::Torn));
        assert_eq!(check("y"), Some(Action::Torn));
        clear();
    }

    #[test]
    fn bare_action_fires_every_hit_and_names_are_scoped() {
        let _g = guard();
        configure("a=nan, b=err@1").unwrap();
        assert_eq!(check("a"), Some(Action::Nan));
        assert_eq!(check("a"), Some(Action::Nan));
        assert_eq!(check("b"), Some(Action::Err));
        assert_eq!(check("b"), None);
        assert_eq!(check("c"), None);
        clear();
    }

    #[test]
    fn trigger_panics_on_panic_action() {
        let _g = guard();
        configure("kill=panic@1").unwrap();
        let r = std::panic::catch_unwind(|| trigger("kill"));
        assert!(r.is_err(), "panic action must panic");
        clear();
    }

    #[test]
    fn registry_is_sorted_unique_and_armable() {
        let _g = guard();
        for pair in FAILPOINTS.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?} out of order or duplicated");
        }
        // Every registered site can actually be armed and tripped — the
        // registry is a live surface, not documentation.
        for name in FAILPOINTS {
            configure(&format!("{name}=err@1")).unwrap();
            assert_eq!(check(name), Some(Action::Err), "site `{name}` did not fire");
            clear();
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = guard();
        clear();
        assert!(configure("noequals").is_err());
        assert!(configure("x=explode").is_err());
        assert!(configure("x=err@0").is_err());
        assert!(configure("x=err@abc").is_err());
        assert!(configure("=err").is_err());
        // A rejected spec leaves the armed set untouched.
        configure("ok=err").unwrap();
        assert!(configure("bad=").is_err());
        assert_eq!(check("ok"), Some(Action::Err));
        clear();
    }
}
