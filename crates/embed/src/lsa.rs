//! Latent Semantic Analysis IRs: TF-IDF + sparse randomized truncated SVD.
//!
//! The most robust IR family in the paper's Table IV. Documents are the
//! attribute-value sentences; the fitted model keeps the right-singular
//! projection so *new* sentences fold into the same latent space, which is
//! what makes LSA IRs usable under a transferred representation model.

use crate::sparse::SparseMatrix;
use crate::IrModel;
use vaer_linalg::{jacobi_eigh, qr_thin, Matrix, XorShiftRng};
use vaer_text::{tfidf, Corpus, TfIdfModel};

/// LSA configuration.
#[derive(Debug, Clone)]
pub struct LsaConfig {
    /// Latent dimensionality `k`.
    pub dims: usize,
    /// Seed for the randomized SVD sketch.
    pub seed: u64,
}

impl Default for LsaConfig {
    fn default() -> Self {
        Self {
            dims: 64,
            seed: 0x15A,
        }
    }
}

/// A fitted LSA model.
pub struct LsaModel {
    corpus: Corpus,
    tfidf: TfIdfModel,
    /// `vocab_size x k` fold-in projection, scaled by `1/σ`.
    projection: Matrix,
    dims: usize,
}

impl LsaModel {
    /// Fits LSA on the sentence corpus.
    ///
    /// The effective dimensionality is clamped to the corpus rank bound
    /// `min(docs, terms)`; [`IrModel::dims`] still reports the requested
    /// width (extra dimensions stay zero) so downstream shapes are stable.
    pub fn fit<S: AsRef<str>>(sentences: &[S], config: &LsaConfig) -> Self {
        let raw: Vec<&str> = sentences.iter().map(AsRef::as_ref).collect();
        let corpus = Corpus::build(&raw, 1);
        let (tfidf_model, docs) = tfidf(&corpus);
        let n_terms = corpus.vocab().len();
        let x = SparseMatrix::from_rows(docs, n_terms.max(1));
        let k = config.dims.min(x.nrows().max(1)).min(n_terms.max(1));
        let projection = if n_terms == 0 || x.nrows() == 0 || k == 0 {
            Matrix::zeros(n_terms.max(1), config.dims)
        } else {
            sparse_right_singular_projection(&x, k, config.dims, config.seed)
        };
        Self {
            corpus,
            tfidf: tfidf_model,
            projection,
            dims: config.dims,
        }
    }
}

/// Computes a `terms x dims` projection `V diag(1/σ)` from the sparse
/// doc-term matrix via a randomized range finder (2 power iterations).
fn sparse_right_singular_projection(
    x: &SparseMatrix,
    k: usize,
    out_dims: usize,
    seed: u64,
) -> Matrix {
    let sketch = (k + 8).min(x.nrows()).min(x.ncols());
    let mut rng = XorShiftRng::new(seed);
    let omega = Matrix::gaussian(x.ncols(), sketch, &mut rng);
    let mut q = qr_thin(&x.matmul_dense(&omega)).q;
    for _ in 0..2 {
        let z = qr_thin(&x.t_matmul_dense(&q)).q;
        q = qr_thin(&x.matmul_dense(&z)).q;
    }
    // B = Qᵀ X  (sketch x terms), computed as (Xᵀ Q)ᵀ without densifying X.
    let bt = x.t_matmul_dense(&q); // terms x sketch
    let gram = bt.t_matmul(&bt); // sketch x sketch = B Bᵀ
    let eig = match jacobi_eigh(&gram) {
        Ok(e) => e,
        Err(_) => return Matrix::zeros(x.ncols(), out_dims),
    };
    // V diag(1/σ) = Bᵀ W diag(1/λ) where columns of W are eigenvectors.
    let mut proj = Matrix::zeros(x.ncols(), out_dims);
    for comp in 0..k.min(eig.eigenvalues.len()) {
        let lambda = eig.eigenvalues[comp].max(0.0);
        if lambda <= 1e-10 {
            continue;
        }
        let w = eig.eigenvectors.col(comp);
        for t in 0..x.ncols() {
            let bt_row = bt.row(t);
            let dot: f32 = bt_row.iter().zip(w.iter()).map(|(&b, &wv)| b * wv).sum();
            proj.set(t, comp, dot / lambda);
        }
    }
    proj
}

impl IrModel for LsaModel {
    fn dims(&self) -> usize {
        self.dims
    }

    fn encode(&self, raw_sentence: &str) -> Vec<f32> {
        let ids = self.corpus.encode(raw_sentence);
        let sparse = self.tfidf.transform(&ids);
        let mut out = vec![0.0f32; self.dims];
        for &(t, w) in &sparse {
            let proj_row = self.projection.row(t as usize);
            for (o, &p) in out.iter_mut().zip(proj_row) {
                *o += w * p;
            }
        }
        vaer_linalg::vector::l2_normalize(&mut out);
        out
    }

    fn name(&self) -> &'static str {
        "LSA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::vector::cosine;

    fn fit_demo() -> LsaModel {
        let sentences = vec![
            "italian pasta restaurant downtown",
            "italian pizza restaurant downtown",
            "sushi bar japanese cuisine",
            "japanese sushi restaurant",
            "car repair garage service",
            "auto repair service center",
        ];
        LsaModel::fit(&sentences, &LsaConfig { dims: 4, seed: 9 })
    }

    #[test]
    fn similar_sentences_are_close() {
        let m = fit_demo();
        let a = m.encode("italian pasta restaurant downtown");
        let b = m.encode("italian pizza restaurant downtown");
        let c = m.encode("car repair garage service");
        assert!(
            cosine(&a, &b) > cosine(&a, &c) + 0.1,
            "{} vs {}",
            cosine(&a, &b),
            cosine(&a, &c)
        );
    }

    #[test]
    fn encodings_are_unit_norm_or_zero() {
        let m = fit_demo();
        let v = m.encode("sushi bar");
        let n = vaer_linalg::vector::norm(&v);
        assert!((n - 1.0).abs() < 1e-4);
        let z = m.encode("completely unseen glorp");
        assert!(vaer_linalg::vector::norm(&z) < 1e-6);
    }

    #[test]
    fn requested_dims_respected_even_when_rank_small() {
        let m = LsaModel::fit(&["a b", "b c"], &LsaConfig { dims: 32, seed: 1 });
        assert_eq!(m.dims(), 32);
        assert_eq!(m.encode("a").len(), 32);
    }

    #[test]
    fn empty_corpus_does_not_panic() {
        let m = LsaModel::fit::<&str>(&[], &LsaConfig { dims: 8, seed: 1 });
        assert_eq!(m.encode("anything").len(), 8);
    }

    #[test]
    fn deterministic() {
        let s = vec!["x y z", "x y w", "q r s"];
        let a = LsaModel::fit(&s, &LsaConfig { dims: 4, seed: 5 });
        let b = LsaModel::fit(&s, &LsaConfig { dims: 4, seed: 5 });
        assert_eq!(a.encode("x y"), b.encode("x y"));
    }
}
