//! BERT-style contextual IRs via deterministic feature hashing.
//!
//! The paper feeds attribute values through a *pre-trained* BERT model and
//! uses the sentence vector as the IR. No pretrained transformer is
//! available offline, so this module implements the documented
//! substitution (DESIGN.md): what VAER consumes from BERT is a fixed,
//! similarity-preserving, *contextual* sentence encoder — reproduced here
//! with three deterministic stages:
//!
//! 1. **Subword features**: each token is the mean of hashed character
//!    trigram vectors (robust to typos, like WordPiece is to rare words);
//!    hashing seeds a tiny RNG per trigram, so the "embedding table" is
//!    implicit and vocabulary-free — exactly the property that makes the
//!    real BERT transferable across domains.
//! 2. **Context mixing**: one scaled-dot-product self-attention pass with
//!    *fixed* random query/key projections, so a token's vector shifts
//!    with its neighbours (contextuality).
//! 3. **Pooling**: mean over tokens, `tanh` squashing, L2 normalisation.

use crate::IrModel;
use vaer_linalg::vector::{dot, l2_normalize};
use vaer_linalg::{Matrix, XorShiftRng};
use vaer_text::{char_ngrams, tokenize};

/// Configuration of the hashed contextual encoder.
#[derive(Debug, Clone)]
pub struct BertSimConfig {
    /// Output dimensionality.
    pub dims: usize,
    /// Character n-gram size.
    pub ngram: usize,
    /// Attention softmax temperature scale (multiplied by `1/sqrt(dims)`).
    pub attention_scale: f32,
    /// Blend factor between the token vector and its attention context in
    /// `[0, 1]`; 0 disables context mixing.
    pub context_blend: f32,
    /// Seed for the fixed projections.
    pub seed: u64,
}

impl Default for BertSimConfig {
    fn default() -> Self {
        Self {
            dims: 64,
            ngram: 3,
            attention_scale: 1.0,
            context_blend: 0.35,
            seed: 0xBE27,
        }
    }
}

/// The deterministic contextual sentence encoder.
pub struct BertSimModel {
    config: BertSimConfig,
    /// Fixed random query projection (`dims x dims`).
    wq: Matrix,
    /// Fixed random key projection (`dims x dims`).
    wk: Matrix,
}

impl BertSimModel {
    /// Builds the encoder (no fitting required — it is vocabulary-free).
    pub fn new(config: &BertSimConfig) -> Self {
        let mut rng = XorShiftRng::new(config.seed);
        let scale = 1.0 / (config.dims as f32).sqrt();
        let wq = Matrix::gaussian(config.dims, config.dims, &mut rng).scale(scale);
        let wk = Matrix::gaussian(config.dims, config.dims, &mut rng).scale(scale);
        Self {
            config: config.clone(),
            wq,
            wk,
        }
    }

    /// Deterministic vector for one token: mean of hashed trigram vectors.
    fn token_vector(&self, token: &str) -> Vec<f32> {
        let grams = char_ngrams(token, self.config.ngram);
        let mut v = vec![0.0f32; self.config.dims];
        if grams.is_empty() {
            return v;
        }
        for gram in &grams {
            let mut rng = XorShiftRng::new(fnv1a(gram.as_bytes()) ^ self.config.seed);
            for o in v.iter_mut() {
                *o += rng.gaussian();
            }
        }
        let inv = 1.0 / grams.len() as f32;
        for o in &mut v {
            *o *= inv;
        }
        l2_normalize(&mut v);
        v
    }

    fn project(&self, v: &[f32], w: &Matrix) -> Vec<f32> {
        (0..w.cols())
            .map(|j| v.iter().enumerate().map(|(i, &x)| x * w.get(i, j)).sum())
            .collect()
    }
}

impl IrModel for BertSimModel {
    fn dims(&self) -> usize {
        self.config.dims
    }

    fn encode(&self, raw_sentence: &str) -> Vec<f32> {
        let tokens = tokenize(raw_sentence);
        if tokens.is_empty() {
            return vec![0.0; self.config.dims];
        }
        let vecs: Vec<Vec<f32>> = tokens.iter().map(|t| self.token_vector(t)).collect();
        // One self-attention pass with fixed projections.
        let queries: Vec<Vec<f32>> = vecs.iter().map(|v| self.project(v, &self.wq)).collect();
        let keys: Vec<Vec<f32>> = vecs.iter().map(|v| self.project(v, &self.wk)).collect();
        let temp = self.config.attention_scale / (self.config.dims as f32).sqrt();
        let blend = self.config.context_blend.clamp(0.0, 1.0);
        let mut pooled = vec![0.0f32; self.config.dims];
        for (i, q) in queries.iter().enumerate() {
            // Softmax attention of token i over all tokens.
            let scores: Vec<f32> = keys.iter().map(|k| dot(q, k) * temp).collect();
            let max = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let exps: Vec<f32> = scores.iter().map(|&s| (s - max).exp()).collect();
            let total: f32 = exps.iter().sum();
            let mut context = vec![0.0f32; self.config.dims];
            for (w, v) in exps.iter().zip(vecs.iter()) {
                let a = w / total;
                for (c, &x) in context.iter_mut().zip(v) {
                    *c += a * x;
                }
            }
            for ((p, &t), &c) in pooled.iter_mut().zip(&vecs[i]).zip(&context) {
                *p += (1.0 - blend) * t + blend * c;
            }
        }
        let inv = 1.0 / tokens.len() as f32;
        for p in &mut pooled {
            *p = (*p * inv).tanh();
        }
        l2_normalize(&mut pooled);
        pooled
    }

    fn name(&self) -> &'static str {
        "BERT"
    }
}

/// FNV-1a hash (64-bit) for trigram seeding.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::vector::{cosine, norm};

    fn model() -> BertSimModel {
        BertSimModel::new(&BertSimConfig {
            dims: 32,
            ..Default::default()
        })
    }

    #[test]
    fn typo_robustness() {
        let m = model();
        let a = m.encode("grand hyatt seattle hotel");
        let b = m.encode("grand hyat seattle hotel"); // typo
        let c = m.encode("cheap engine oil filter");
        assert!(cosine(&a, &b) > 0.8, "typo similarity {}", cosine(&a, &b));
        assert!(cosine(&a, &b) > cosine(&a, &c) + 0.2);
    }

    #[test]
    fn contextuality_changes_tokens() {
        // Same word in different contexts should produce different
        // sentence-level geometry than a bag-of-words would.
        let ctx = BertSimModel::new(&BertSimConfig {
            dims: 32,
            context_blend: 0.9,
            ..Default::default()
        });
        let no_ctx = BertSimModel::new(&BertSimConfig {
            dims: 32,
            context_blend: 0.0,
            ..Default::default()
        });
        let s1 = "bank river water";
        let s2 = "bank money account";
        let with = cosine(&ctx.encode(s1), &ctx.encode(s2));
        let without = cosine(&no_ctx.encode(s1), &no_ctx.encode(s2));
        // Context mixing should pull the shared token toward its
        // neighbours, reducing cross-context similarity.
        assert!(with < without + 1e-3, "with {with} vs without {without}");
    }

    #[test]
    fn deterministic_and_vocabulary_free() {
        let a = model();
        let b = model();
        // A sentence never "seen" before encodes identically in both.
        assert_eq!(
            a.encode("totally novel gibberish xyzzy"),
            b.encode("totally novel gibberish xyzzy")
        );
        assert!(norm(&a.encode("xyzzy")) > 0.0);
    }

    #[test]
    fn empty_input_is_zero_vector() {
        let m = model();
        assert_eq!(m.encode(""), vec![0.0; 32]);
        assert_eq!(m.encode("!!!"), vec![0.0; 32]);
    }

    #[test]
    fn unit_norm_output() {
        let m = model();
        let v = m.encode("some normal words");
        assert!((norm(&v) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn different_seeds_differ() {
        let a = BertSimModel::new(&BertSimConfig {
            seed: 1,
            ..Default::default()
        });
        let b = BertSimModel::new(&BertSimConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.encode("hello world"), b.encode("hello world"));
    }
}
