//! GloVe embeddings (Pennington, Socher & Manning, EMNLP 2014).
//!
//! The paper's §III-B cites GloVe alongside word2vec as a source of
//! pre-trained word embeddings for IRs. Like the W2V family, no
//! pretrained vectors are available offline, so the model is trained on
//! the task corpus: a windowed co-occurrence matrix followed by AdaGrad
//! on the weighted least-squares objective
//!
//! ```text
//! J = Σᵢⱼ f(Xᵢⱼ) (wᵢ·w̃ⱼ + bᵢ + b̃ⱼ - ln Xᵢⱼ)²
//! ```
//!
//! Sentence IRs are the L2-normalised mean of `w + w̃` token vectors,
//! mirroring the W2V averaging contract.

use crate::IrModel;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use vaer_text::Corpus;

/// GloVe hyper-parameters.
#[derive(Debug, Clone)]
pub struct GloVeConfig {
    /// Embedding (and IR) dimensionality.
    pub dims: usize,
    /// Co-occurrence window radius (weighted by `1/offset`).
    pub window: usize,
    /// Training epochs over the non-zero co-occurrence cells.
    pub epochs: usize,
    /// AdaGrad initial learning rate.
    pub learning_rate: f32,
    /// Weighting-function cap `x_max`.
    pub x_max: f32,
    /// Minimum token frequency to keep.
    pub min_count: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GloVeConfig {
    fn default() -> Self {
        Self {
            dims: 64,
            window: 3,
            epochs: 12,
            learning_rate: 0.05,
            x_max: 20.0,
            min_count: 1,
            seed: 0x610E,
        }
    }
}

/// A fitted GloVe IR model.
pub struct GloVeModel {
    corpus: Corpus,
    /// Combined `w + w̃` vectors, one per vocabulary id.
    vectors: Vec<Vec<f32>>,
    dims: usize,
}

impl GloVeModel {
    /// Builds the co-occurrence matrix and trains the factorisation.
    pub fn fit<S: AsRef<str>>(sentences: &[S], config: &GloVeConfig) -> Self {
        let raw: Vec<&str> = sentences.iter().map(AsRef::as_ref).collect();
        let corpus = Corpus::build(&raw, config.min_count);
        let v = corpus.vocab().len();
        if v == 0 {
            return Self {
                corpus,
                vectors: Vec::new(),
                dims: config.dims,
            };
        }
        // Windowed co-occurrence with 1/offset weighting (GloVe §4.2).
        let mut cooc: BTreeMap<(u32, u32), f32> = BTreeMap::new();
        for sent in corpus.sentences() {
            for (i, &wi) in sent.iter().enumerate() {
                let hi = (i + config.window + 1).min(sent.len());
                for (offset, &wj) in sent[i + 1..hi].iter().enumerate() {
                    let weight = 1.0 / (offset + 1) as f32;
                    *cooc.entry((wi, wj)).or_insert(0.0) += weight;
                    *cooc.entry((wj, wi)).or_insert(0.0) += weight;
                }
            }
        }
        // `BTreeMap` iteration is key-ordered, so the cells start out
        // deterministic before shuffling with the seeded RNG.
        let mut cells: Vec<((u32, u32), f32)> = cooc.into_iter().collect();

        let dims = config.dims;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut init = |n: usize| -> Vec<Vec<f32>> {
            (0..n)
                .map(|_| {
                    (0..dims)
                        .map(|_| rng.random_range(-0.5f32..0.5) / dims as f32)
                        .collect()
                })
                .collect()
        };
        let mut w = init(v);
        let mut w_ctx = init(v);
        let mut b = vec![0.0f32; v];
        let mut b_ctx = vec![0.0f32; v];
        // AdaGrad accumulators.
        let mut gw = vec![vec![1e-8f32; dims]; v];
        let mut gw_ctx = vec![vec![1e-8f32; dims]; v];
        let mut gb = vec![1e-8f32; v];
        let mut gb_ctx = vec![1e-8f32; v];
        let lr = config.learning_rate;
        for _epoch in 0..config.epochs {
            // Shuffle cells each epoch.
            for i in (1..cells.len()).rev() {
                let j = rng.random_range(0..=i);
                cells.swap(i, j);
            }
            for &((i, j), x) in &cells {
                let (i, j) = (i as usize, j as usize);
                let weight = (x / config.x_max).powf(0.75).min(1.0);
                let dot: f32 = w[i].iter().zip(w_ctx[j].iter()).map(|(&a, &c)| a * c).sum();
                let diff = dot + b[i] + b_ctx[j] - x.ln();
                let grad_coeff = (weight * diff).clamp(-10.0, 10.0);
                for d in 0..dims {
                    let gi = grad_coeff * w_ctx[j][d];
                    let gj = grad_coeff * w[i][d];
                    gw[i][d] += gi * gi;
                    gw_ctx[j][d] += gj * gj;
                    w[i][d] -= lr * gi / gw[i][d].sqrt();
                    w_ctx[j][d] -= lr * gj / gw_ctx[j][d].sqrt();
                }
                gb[i] += grad_coeff * grad_coeff;
                gb_ctx[j] += grad_coeff * grad_coeff;
                b[i] -= lr * grad_coeff / gb[i].sqrt();
                b_ctx[j] -= lr * grad_coeff / gb_ctx[j].sqrt();
            }
        }
        // Combined vectors, as recommended by the GloVe paper.
        let vectors = w
            .into_iter()
            .zip(w_ctx)
            .map(|(a, c)| a.iter().zip(c.iter()).map(|(&x, &y)| x + y).collect())
            .collect();
        Self {
            corpus,
            vectors,
            dims,
        }
    }

    /// Number of embedded tokens.
    pub fn vocab_size(&self) -> usize {
        self.vectors.len()
    }
}

impl IrModel for GloVeModel {
    fn dims(&self) -> usize {
        self.dims
    }

    fn encode(&self, raw_sentence: &str) -> Vec<f32> {
        let ids = self.corpus.encode(raw_sentence);
        let mut out = vec![0.0f32; self.dims];
        if ids.is_empty() || self.vectors.is_empty() {
            return out;
        }
        for &t in &ids {
            for (o, &v) in out.iter_mut().zip(&self.vectors[t as usize]) {
                *o += v;
            }
        }
        let inv = 1.0 / ids.len() as f32;
        for o in &mut out {
            *o *= inv;
        }
        vaer_linalg::vector::l2_normalize(&mut out);
        out
    }

    fn name(&self) -> &'static str {
        "GloVe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::vector::{cosine, norm};

    fn demo_corpus() -> Vec<String> {
        let mut s = Vec::new();
        for _ in 0..40 {
            s.push("hot coffee morning drink".to_string());
            s.push("hot tea morning drink".to_string());
            s.push("fast car road engine".to_string());
            s.push("fast truck road engine".to_string());
        }
        s
    }

    #[test]
    fn cooccurring_words_cluster() {
        let m = GloVeModel::fit(
            &demo_corpus(),
            &GloVeConfig {
                dims: 16,
                ..Default::default()
            },
        );
        let coffee = m.encode("coffee");
        let tea = m.encode("tea");
        let car = m.encode("car");
        assert!(
            cosine(&coffee, &tea) > cosine(&coffee, &car),
            "coffee-tea {} vs coffee-car {}",
            cosine(&coffee, &tea),
            cosine(&coffee, &car)
        );
    }

    #[test]
    fn encodings_unit_norm_or_zero() {
        let m = GloVeModel::fit(
            &demo_corpus(),
            &GloVeConfig {
                dims: 8,
                epochs: 2,
                ..Default::default()
            },
        );
        assert!((norm(&m.encode("hot drink")) - 1.0).abs() < 1e-4);
        assert_eq!(norm(&m.encode("zzz unseen")), 0.0);
    }

    #[test]
    fn empty_corpus_is_safe() {
        let m = GloVeModel::fit::<&str>(&[], &GloVeConfig::default());
        assert_eq!(m.vocab_size(), 0);
        assert_eq!(m.encode("anything"), vec![0.0; 64]);
    }

    #[test]
    fn deterministic() {
        let cfg = GloVeConfig {
            dims: 8,
            epochs: 2,
            seed: 5,
            ..Default::default()
        };
        let a = GloVeModel::fit(&demo_corpus(), &cfg);
        let b = GloVeModel::fit(&demo_corpus(), &cfg);
        assert_eq!(a.encode("coffee"), b.encode("coffee"));
    }
}
