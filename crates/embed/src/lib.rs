//! Intermediate-representation (IR) generators — paper §III-B.
//!
//! VAER converts each attribute value ("sentence") into a dense,
//! similarity-preserving vector *before* the VAE sees it. The paper
//! evaluates four generator families, all reimplemented here:
//!
//! | Paper | This crate | Notes |
//! |---|---|---|
//! | LSA (topic modelling over the corpus) | [`LsaModel`] | TF-IDF + randomized truncated SVD (from scratch, sparse-aware) |
//! | W2V (pre-trained word2vec, sentence-averaged) | [`W2vModel`] | skip-gram with negative sampling trained on the task corpus — see DESIGN.md substitutions |
//! | BERT (pre-trained contextual embeddings) | [`BertSimModel`] | deterministic hashed char-trigram token features + one fixed random-projection attention mixing layer — see DESIGN.md substitutions |
//! | EmbDI (relational embeddings, SIGMOD'20) | [`EmbDiModel`] | full reimplementation: tripartite token/row/column graph, random walks, skip-gram over walks |
//!
//! All four implement [`IrModel`], the interface the VAE representation
//! model consumes: `encode` one sentence to a fixed-dimensional vector.

mod bert_sim;
mod embdi;
mod glove;
mod lsa;
mod sgns;
mod sparse;
mod w2v;

pub use bert_sim::{BertSimConfig, BertSimModel};
pub use embdi::{EmbDiConfig, EmbDiModel};
pub use glove::{GloVeConfig, GloVeModel};
pub use lsa::{LsaConfig, LsaModel};
pub use sgns::{SgnsConfig, SgnsEmbeddings};
pub use sparse::SparseMatrix;
pub use w2v::{W2vConfig, W2vModel};

/// A fitted intermediate-representation model: sentence → dense vector.
pub trait IrModel: Send + Sync {
    /// Output dimensionality.
    fn dims(&self) -> usize;

    /// Encodes a raw sentence (attribute value). Returns a zero vector for
    /// text with no usable signal (empty / all out-of-vocabulary).
    fn encode(&self, raw_sentence: &str) -> Vec<f32>;

    /// Short human-readable name (`"LSA"`, `"W2V"`, `"BERT"`, `"EmbDI"`).
    fn name(&self) -> &'static str;

    /// Encodes a batch of sentences into row vectors.
    fn encode_batch(&self, sentences: &[String]) -> vaer_linalg::Matrix {
        let mut out = vaer_linalg::Matrix::zeros(sentences.len(), self.dims());
        for (i, s) in sentences.iter().enumerate() {
            let v = self.encode(s);
            out.row_mut(i).copy_from_slice(&v);
        }
        out
    }
}

/// Which IR family to fit — used by experiment harnesses that sweep all
/// four (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrKind {
    /// Latent semantic analysis.
    Lsa,
    /// Word2vec skip-gram, sentence-averaged.
    W2v,
    /// BERT-style contextual hashing.
    Bert,
    /// EmbDI relational embeddings.
    EmbDi,
    /// GloVe co-occurrence embeddings (extra family; §III-B cites GloVe
    /// as a word2vec alternative but Table IV does not sweep it).
    GloVe,
}

impl IrKind {
    /// The four kinds of the paper's Table IV, in column order.
    pub const ALL: [IrKind; 4] = [IrKind::Lsa, IrKind::W2v, IrKind::Bert, IrKind::EmbDi];

    /// All implemented kinds, including the GloVe extra.
    pub const ALL_EXTENDED: [IrKind; 5] = [
        IrKind::Lsa,
        IrKind::W2v,
        IrKind::Bert,
        IrKind::EmbDi,
        IrKind::GloVe,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            IrKind::Lsa => "LSA",
            IrKind::W2v => "W2V",
            IrKind::Bert => "BERT",
            IrKind::EmbDi => "EmbDI",
            IrKind::GloVe => "GloVe",
        }
    }
}

impl std::fmt::Display for IrKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fits an IR model of the requested kind on a sentence corpus.
///
/// `tables` supplies relational context (rows of attribute values) and is
/// required by [`IrKind::EmbDi`]; the other kinds use only the flattened
/// sentences. `dims` is the IR dimensionality, `seed` drives all
/// randomness.
pub fn fit_ir_model(
    kind: IrKind,
    sentences: &[String],
    tables: &[Vec<Vec<String>>],
    dims: usize,
    seed: u64,
) -> Box<dyn IrModel> {
    match kind {
        IrKind::Lsa => Box::new(LsaModel::fit(sentences, &LsaConfig { dims, seed })),
        IrKind::W2v => Box::new(W2vModel::fit(
            sentences,
            &W2vConfig {
                dims,
                seed,
                ..Default::default()
            },
        )),
        IrKind::Bert => Box::new(BertSimModel::new(&BertSimConfig {
            dims,
            seed,
            ..Default::default()
        })),
        IrKind::EmbDi => Box::new(EmbDiModel::fit(
            tables,
            &EmbDiConfig {
                dims,
                seed,
                ..Default::default()
            },
        )),
        IrKind::GloVe => Box::new(GloVeModel::fit(
            sentences,
            &GloVeConfig {
                dims,
                seed,
                ..Default::default()
            },
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_order() {
        assert_eq!(
            IrKind::ALL.map(|k| k.name()),
            ["LSA", "W2V", "BERT", "EmbDI"]
        );
        assert_eq!(IrKind::Lsa.to_string(), "LSA");
    }

    #[test]
    fn extended_list_includes_glove() {
        assert_eq!(IrKind::ALL_EXTENDED.len(), 5);
        assert_eq!(IrKind::GloVe.name(), "GloVe");
    }

    #[test]
    fn fit_dispatch_produces_requested_dims() {
        let sentences: Vec<String> = vec![
            "red apple pie".into(),
            "green apple tart".into(),
            "blue suede shoes".into(),
            "red apple cake".into(),
        ];
        let tables = vec![vec![
            vec!["red apple pie".to_string()],
            vec!["green apple tart".to_string()],
            vec!["blue suede shoes".to_string()],
            vec!["red apple cake".to_string()],
        ]];
        for kind in IrKind::ALL_EXTENDED {
            let model = fit_ir_model(kind, &sentences, &tables, 16, 3);
            assert_eq!(model.dims(), 16, "{kind}");
            let v = model.encode("red apple pie");
            assert_eq!(v.len(), 16, "{kind}");
        }
    }
}
