//! Skip-gram with negative sampling (SGNS; Mikolov et al., 2013).
//!
//! One trainer serves two IR families: [`crate::W2vModel`] feeds it the
//! attribute-value sentences directly, and [`crate::EmbDiModel`] feeds it
//! random walks over the tripartite relational graph.

use rand::{RngExt, SeedableRng};

/// SGNS hyper-parameters.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dims: usize,
    /// Symmetric context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Number of passes over the sequences.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10% across training).
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dims: 64,
            window: 3,
            negatives: 5,
            epochs: 3,
            learning_rate: 0.05,
            seed: 0x5916,
        }
    }
}

/// Trained input-side embeddings, one row per vocabulary id.
#[derive(Debug, Clone)]
pub struct SgnsEmbeddings {
    vectors: Vec<Vec<f32>>,
    dims: usize,
}

impl SgnsEmbeddings {
    /// Trains SGNS over token-id `sequences` with vocabulary size
    /// `vocab_size` and per-id occurrence `counts` (used to build the
    /// unigram^0.75 negative-sampling table).
    ///
    /// # Panics
    /// Panics if any sequence references an id `>= vocab_size` or if
    /// `counts.len() != vocab_size`.
    pub fn train(
        sequences: &[Vec<u32>],
        vocab_size: usize,
        counts: &[u64],
        config: &SgnsConfig,
    ) -> Self {
        assert_eq!(
            counts.len(),
            vocab_size,
            "counts length must equal vocab size"
        );
        for seq in sequences {
            for &t in seq {
                assert!((t as usize) < vocab_size, "token id {t} out of range");
            }
        }
        let dims = config.dims;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        // Input vectors small-random, output vectors zero (word2vec default).
        let mut w_in: Vec<Vec<f32>> = (0..vocab_size)
            .map(|_| {
                (0..dims)
                    .map(|_| (rng.random_range(0.0f32..1.0) - 0.5) / dims as f32)
                    .collect()
            })
            .collect();
        let mut w_out: Vec<Vec<f32>> = vec![vec![0.0; dims]; vocab_size];
        let neg_table = build_negative_table(counts);
        if neg_table.is_empty() {
            return Self {
                vectors: w_in,
                dims,
            };
        }
        let total_steps = (config.epochs * sequences.iter().map(Vec::len).sum::<usize>()).max(1);
        let mut step = 0usize;
        let mut grad_in = vec![0.0f32; dims];
        for _epoch in 0..config.epochs {
            for seq in sequences {
                for (center_pos, &center) in seq.iter().enumerate() {
                    step += 1;
                    let progress = step as f32 / total_steps as f32;
                    let lr = config.learning_rate * (1.0 - 0.9 * progress);
                    // Dynamic window as in word2vec: radius in [1, window].
                    let radius = rng.random_range(1..=config.window.max(1));
                    let lo = center_pos.saturating_sub(radius);
                    let hi = (center_pos + radius + 1).min(seq.len());
                    for (ctx_pos, &ctx_tok) in seq.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == center_pos {
                            continue;
                        }
                        let context = ctx_tok as usize;
                        grad_in.iter_mut().for_each(|g| *g = 0.0);
                        // Positive pair.
                        sgns_pair(
                            &mut w_in[center as usize],
                            &mut w_out[context],
                            1.0,
                            lr,
                            &mut grad_in,
                        );
                        // Negative pairs.
                        for _ in 0..config.negatives {
                            let neg = neg_table[rng.random_range(0..neg_table.len())] as usize;
                            if neg == context {
                                continue;
                            }
                            sgns_pair(
                                &mut w_in[center as usize],
                                &mut w_out[neg],
                                0.0,
                                lr,
                                &mut grad_in,
                            );
                        }
                        let center_vec = &mut w_in[center as usize];
                        for (v, &g) in center_vec.iter_mut().zip(grad_in.iter()) {
                            *v += g;
                        }
                    }
                }
            }
        }
        Self {
            vectors: w_in,
            dims,
        }
    }

    /// Embedding dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of embedded ids.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the embedding table is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The vector for id `t`.
    pub fn vector(&self, t: u32) -> &[f32] {
        &self.vectors[t as usize]
    }

    /// Mean of the vectors for `ids`, L2-normalised; zero vector when
    /// `ids` is empty.
    pub fn mean_vector(&self, ids: &[u32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dims];
        if ids.is_empty() {
            return out;
        }
        for &t in ids {
            for (o, &v) in out.iter_mut().zip(self.vector(t)) {
                *o += v;
            }
        }
        let inv = 1.0 / ids.len() as f32;
        for o in &mut out {
            *o *= inv;
        }
        vaer_linalg::vector::l2_normalize(&mut out);
        out
    }
}

/// One SGNS update for a (center, output) pair with label 1 (positive) or
/// 0 (negative). Updates `w_out` in place and accumulates the center-word
/// gradient into `grad_in` (applied once per context for stability).
#[inline]
fn sgns_pair(w_in: &mut [f32], w_out: &mut [f32], label: f32, lr: f32, grad_in: &mut [f32]) {
    let dot: f32 = w_in.iter().zip(w_out.iter()).map(|(&a, &b)| a * b).sum();
    let pred = 1.0 / (1.0 + (-dot.clamp(-8.0, 8.0)).exp());
    let g = (label - pred) * lr;
    for ((gi, &o), i) in grad_in.iter_mut().zip(w_out.iter()).zip(w_in.iter()) {
        *gi += g * o;
        let _ = i;
    }
    for (o, &i) in w_out.iter_mut().zip(w_in.iter()) {
        *o += g * i;
    }
}

/// Unigram^(3/4) table for negative sampling, ~1e5 slots.
fn build_negative_table(counts: &[u64]) -> Vec<u32> {
    const TABLE_SIZE: usize = 100_000;
    let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut table = Vec::with_capacity(TABLE_SIZE);
    for (id, &w) in weights.iter().enumerate() {
        let slots = ((w / total) * TABLE_SIZE as f64).round() as usize;
        for _ in 0..slots.max(if w > 0.0 { 1 } else { 0 }) {
            table.push(id as u32);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::vector::cosine;

    /// Two token "topics" that never co-occur; within-topic tokens should
    /// end up closer than across-topic tokens.
    fn topic_sequences() -> (Vec<Vec<u32>>, Vec<u64>) {
        let mut seqs = Vec::new();
        // Topic A: ids 0..4, topic B: ids 4..8.
        for i in 0..60 {
            let base = if i % 2 == 0 { 0u32 } else { 4u32 };
            seqs.push(vec![
                base,
                base + 1,
                base + 2,
                base + 3,
                base + (i as u32 % 4),
            ]);
        }
        let mut counts = vec![0u64; 8];
        for s in &seqs {
            for &t in s {
                counts[t as usize] += 1;
            }
        }
        (seqs, counts)
    }

    #[test]
    fn cooccurring_tokens_become_similar() {
        let (seqs, counts) = topic_sequences();
        let emb = SgnsEmbeddings::train(
            &seqs,
            8,
            &counts,
            &SgnsConfig {
                dims: 16,
                epochs: 8,
                seed: 3,
                ..Default::default()
            },
        );
        let within = cosine(emb.vector(0), emb.vector(1));
        let across = cosine(emb.vector(0), emb.vector(5));
        assert!(within > across + 0.2, "within {within} vs across {across}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (seqs, counts) = topic_sequences();
        let cfg = SgnsConfig {
            dims: 8,
            epochs: 2,
            seed: 11,
            ..Default::default()
        };
        let a = SgnsEmbeddings::train(&seqs, 8, &counts, &cfg);
        let b = SgnsEmbeddings::train(&seqs, 8, &counts, &cfg);
        assert_eq!(a.vector(3), b.vector(3));
    }

    #[test]
    fn mean_vector_unit_norm_or_zero() {
        let (seqs, counts) = topic_sequences();
        let emb = SgnsEmbeddings::train(
            &seqs,
            8,
            &counts,
            &SgnsConfig {
                dims: 8,
                epochs: 1,
                seed: 1,
                ..Default::default()
            },
        );
        let m = emb.mean_vector(&[0, 1, 2]);
        assert!((vaer_linalg::vector::norm(&m) - 1.0).abs() < 1e-4);
        assert_eq!(emb.mean_vector(&[]), vec![0.0; 8]);
    }

    #[test]
    fn empty_vocab_trains_without_panic() {
        let emb = SgnsEmbeddings::train(&[], 0, &[], &SgnsConfig::default());
        assert!(emb.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_token_panics() {
        SgnsEmbeddings::train(&[vec![5]], 2, &[1, 1], &SgnsConfig::default());
    }

    #[test]
    fn negative_table_proportional() {
        let table = build_negative_table(&[100, 1, 0]);
        assert!(!table.is_empty());
        let zeros = table.iter().filter(|&&t| t == 0).count();
        let ones = table.iter().filter(|&&t| t == 1).count();
        let twos = table.iter().filter(|&&t| t == 2).count();
        assert!(zeros > ones);
        assert!(ones >= 1);
        assert_eq!(twos, 0);
    }
}
