//! A minimal row-sparse matrix for the LSA pipeline.

use vaer_linalg::Matrix;

/// A sparse matrix stored as per-row `(column, value)` lists.
///
/// Only the two products the randomized SVD range-finder needs are
/// implemented: `S · D` and `Sᵀ · D` against dense matrices.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    rows: Vec<Vec<(u32, f32)>>,
    cols: usize,
}

impl SparseMatrix {
    /// Builds from per-row sparse vectors; `cols` is the full width.
    ///
    /// # Panics
    /// Panics if any entry's column exceeds `cols`.
    pub fn from_rows(rows: Vec<Vec<(u32, f32)>>, cols: usize) -> Self {
        for (i, r) in rows.iter().enumerate() {
            for &(c, _) in r {
                assert!((c as usize) < cols, "row {i} has column {c} >= {cols}");
            }
        }
        Self { rows, cols }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Sparse row accessor.
    pub fn row(&self, i: usize) -> &[(u32, f32)] {
        &self.rows[i]
    }

    /// Dense product `self · d` (`nrows x d.cols()`).
    ///
    /// # Panics
    /// Panics on incompatible shapes.
    pub fn matmul_dense(&self, d: &Matrix) -> Matrix {
        assert_eq!(self.cols, d.rows(), "sparse matmul shape mismatch");
        let mut out = Matrix::zeros(self.nrows(), d.cols());
        for (i, row) in self.rows.iter().enumerate() {
            let out_row = out.row_mut(i);
            for &(c, v) in row {
                let d_row = d.row(c as usize);
                for (o, &dv) in out_row.iter_mut().zip(d_row) {
                    *o += v * dv;
                }
            }
        }
        out
    }

    /// Dense product `selfᵀ · d` (`ncols x d.cols()`).
    ///
    /// # Panics
    /// Panics on incompatible shapes.
    pub fn t_matmul_dense(&self, d: &Matrix) -> Matrix {
        assert_eq!(self.nrows(), d.rows(), "sparse t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, d.cols());
        for (i, row) in self.rows.iter().enumerate() {
            let d_row = d.row(i);
            for &(c, v) in row {
                let out_row = out.row_mut(c as usize);
                for (o, &dv) in out_row.iter_mut().zip(d_row) {
                    *o += v * dv;
                }
            }
        }
        out
    }

    /// Densifies (test/debug helper; avoid on large matrices).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.nrows(), self.cols);
        for (i, row) in self.rows.iter().enumerate() {
            for &(c, v) in row {
                out.set(i, c as usize, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::XorShiftRng;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_rows(vec![vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)], vec![]], 3)
    }

    #[test]
    fn shape_and_nnz() {
        let s = sample();
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.nnz(), 3);
        assert!(s.row(2).is_empty());
    }

    #[test]
    fn matmul_matches_dense() {
        let s = sample();
        let mut rng = XorShiftRng::new(1);
        let d = Matrix::gaussian(3, 4, &mut rng);
        let sparse = s.matmul_dense(&d);
        let dense = s.to_dense().matmul(&d);
        assert!(sparse.max_abs_diff(&dense) < 1e-6);
    }

    #[test]
    fn t_matmul_matches_dense() {
        let s = sample();
        let mut rng = XorShiftRng::new(2);
        let d = Matrix::gaussian(3, 5, &mut rng);
        let sparse = s.t_matmul_dense(&d);
        let dense = s.to_dense().transpose().matmul(&d);
        assert!(sparse.max_abs_diff(&dense) < 1e-6);
    }

    #[test]
    #[should_panic]
    fn out_of_range_column_panics() {
        SparseMatrix::from_rows(vec![vec![(5, 1.0)]], 3);
    }
}
