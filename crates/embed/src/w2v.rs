//! Word2vec-style IRs: corpus-trained skip-gram, sentence-averaged.
//!
//! The paper uses a *pre-trained* word-embedding model and averages token
//! embeddings per attribute value. With no pretrained weights available
//! offline, we train SGNS on the task corpus itself (see DESIGN.md,
//! substitutions) — the sentence-averaging contract is identical.

use crate::sgns::{SgnsConfig, SgnsEmbeddings};
use crate::IrModel;
use vaer_text::Corpus;

/// W2V IR configuration.
#[derive(Debug, Clone)]
pub struct W2vConfig {
    /// Embedding (and IR) dimensionality.
    pub dims: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Minimum token frequency to keep.
    pub min_count: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for W2vConfig {
    fn default() -> Self {
        Self {
            dims: 64,
            window: 3,
            negatives: 5,
            epochs: 3,
            min_count: 1,
            seed: 0x32F,
        }
    }
}

/// A fitted word2vec IR model.
pub struct W2vModel {
    corpus: Corpus,
    embeddings: SgnsEmbeddings,
    dims: usize,
}

impl W2vModel {
    /// Tokenises `sentences`, trains SGNS, and returns the model.
    pub fn fit<S: AsRef<str>>(sentences: &[S], config: &W2vConfig) -> Self {
        let raw: Vec<&str> = sentences.iter().map(AsRef::as_ref).collect();
        let corpus = Corpus::build(&raw, config.min_count);
        let counts: Vec<u64> = (0..corpus.vocab().len())
            .map(|i| corpus.vocab().count(i as u32))
            .collect();
        let embeddings = SgnsEmbeddings::train(
            corpus.sentences(),
            corpus.vocab().len(),
            &counts,
            &SgnsConfig {
                dims: config.dims,
                window: config.window,
                negatives: config.negatives,
                epochs: config.epochs,
                learning_rate: 0.05,
                seed: config.seed,
            },
        );
        Self {
            corpus,
            embeddings,
            dims: config.dims,
        }
    }

    /// The trained token embeddings.
    pub fn embeddings(&self) -> &SgnsEmbeddings {
        &self.embeddings
    }

    /// The tokenised corpus / vocabulary used for training.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }
}

impl IrModel for W2vModel {
    fn dims(&self) -> usize {
        self.dims
    }

    fn encode(&self, raw_sentence: &str) -> Vec<f32> {
        let ids = self.corpus.encode(raw_sentence);
        self.embeddings.mean_vector(&ids)
    }

    fn name(&self) -> &'static str {
        "W2V"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::vector::{cosine, norm};

    fn fit_demo() -> W2vModel {
        // Repetitive mini-corpus with two clear topics.
        let mut sentences = Vec::new();
        for _ in 0..30 {
            sentences.push("cheap italian pizza restaurant".to_string());
            sentences.push("cozy italian pasta restaurant".to_string());
            sentences.push("fast car engine repair".to_string());
            sentences.push("quick car brake repair".to_string());
        }
        W2vModel::fit(
            &sentences,
            &W2vConfig {
                dims: 16,
                epochs: 4,
                seed: 5,
                ..Default::default()
            },
        )
    }

    #[test]
    fn topical_sentences_cluster() {
        let m = fit_demo();
        let a = m.encode("italian pizza restaurant");
        let b = m.encode("italian pasta restaurant");
        let c = m.encode("car engine repair");
        assert!(
            cosine(&a, &b) > cosine(&a, &c),
            "{} vs {}",
            cosine(&a, &b),
            cosine(&a, &c)
        );
    }

    #[test]
    fn oov_only_sentence_is_zero() {
        let m = fit_demo();
        let v = m.encode("zzz qqq www");
        assert_eq!(norm(&v), 0.0);
    }

    #[test]
    fn encodings_unit_norm() {
        let m = fit_demo();
        let v = m.encode("cheap pizza");
        assert!((norm(&v) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn deterministic() {
        let s: Vec<String> = (0..20)
            .map(|i| format!("token{} shared common", i % 5))
            .collect();
        let cfg = W2vConfig {
            dims: 8,
            epochs: 2,
            seed: 13,
            ..Default::default()
        };
        let a = W2vModel::fit(&s, &cfg);
        let b = W2vModel::fit(&s, &cfg);
        assert_eq!(a.encode("shared common"), b.encode("shared common"));
    }
}
