//! EmbDI relational embeddings (Cappuzzo, Papotti & Thirumuruganathan,
//! SIGMOD 2020) — reimplemented from scratch.
//!
//! EmbDI builds a tripartite graph over a relation:
//!
//! - **value nodes** — every distinct token appearing in a cell,
//! - **row nodes** (`RID`) — one per tuple,
//! - **column nodes** (`CID`) — one per attribute,
//!
//! with edges *token ↔ row* and *token ↔ column* for each cell occurrence.
//! Random walks over this graph interleave structural context (which rows
//! and columns a token appears in) with lexical context, and a skip-gram
//! model trained over the walks yields embeddings in which tokens that
//! share rows/columns — e.g. two spellings of the same artist — are close.
//! Sentence IRs are the normalised mean of token-node embeddings.

use crate::sgns::{SgnsConfig, SgnsEmbeddings};
use crate::IrModel;
use rand::{Rng, RngExt, SeedableRng};
use std::collections::BTreeMap;
use vaer_text::tokenize;

/// EmbDI configuration.
#[derive(Debug, Clone)]
pub struct EmbDiConfig {
    /// Embedding (and IR) dimensionality.
    pub dims: usize,
    /// Random walks started per graph node.
    pub walks_per_node: usize,
    /// Length of each walk (in nodes).
    pub walk_length: usize,
    /// Skip-gram window over walk sequences.
    pub window: usize,
    /// Skip-gram epochs over the generated walks.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmbDiConfig {
    fn default() -> Self {
        Self {
            dims: 64,
            walks_per_node: 6,
            walk_length: 12,
            window: 3,
            epochs: 2,
            seed: 0xE3BD,
        }
    }
}

/// Node ids: tokens first, then rows, then columns.
#[derive(Debug, Clone)]
struct Graph {
    /// token id → neighbouring structural nodes (row/col ids).
    token_adj: Vec<Vec<u32>>,
    /// structural node id (offset past tokens) → token ids it contains.
    struct_adj: Vec<Vec<u32>>,
    num_tokens: usize,
}

impl Graph {
    fn total_nodes(&self) -> usize {
        self.num_tokens + self.struct_adj.len()
    }
}

/// A fitted EmbDI model.
pub struct EmbDiModel {
    token_ids: BTreeMap<String, u32>,
    embeddings: SgnsEmbeddings,
    dims: usize,
}

impl EmbDiModel {
    /// Fits EmbDI over one or more tables. Each table is a list of rows;
    /// each row a list of raw attribute values.
    pub fn fit(tables: &[Vec<Vec<String>>], config: &EmbDiConfig) -> Self {
        let (graph, token_ids) = build_graph(tables);
        if graph.num_tokens == 0 {
            return Self {
                token_ids,
                embeddings: SgnsEmbeddings::train(&[], 0, &[], &SgnsConfig::default()),
                dims: config.dims,
            };
        }
        let walks = generate_walks(&graph, config);
        // Train over *all* node ids (tokens + structural); only token
        // embeddings are used at encode time, but structural nodes carry
        // the integration signal through the walks.
        let vocab_size = graph.total_nodes();
        let mut counts = vec![0u64; vocab_size];
        for w in &walks {
            for &n in w {
                counts[n as usize] += 1;
            }
        }
        let embeddings = SgnsEmbeddings::train(
            &walks,
            vocab_size,
            &counts,
            &SgnsConfig {
                dims: config.dims,
                window: config.window,
                negatives: 5,
                epochs: config.epochs,
                learning_rate: 0.05,
                seed: config.seed ^ 0x1111,
            },
        );
        Self {
            token_ids,
            embeddings,
            dims: config.dims,
        }
    }

    /// Number of distinct value tokens in the graph.
    pub fn num_tokens(&self) -> usize {
        self.token_ids.len()
    }
}

fn build_graph(tables: &[Vec<Vec<String>>]) -> (Graph, BTreeMap<String, u32>) {
    let mut token_ids: BTreeMap<String, u32> = BTreeMap::new();
    // First pass: token vocabulary in deterministic order.
    let mut ordered_tokens: Vec<String> = Vec::new();
    for table in tables {
        for row in table {
            for cell in row {
                for tok in tokenize(cell) {
                    if !token_ids.contains_key(&tok) {
                        token_ids.insert(tok.clone(), ordered_tokens.len() as u32);
                        ordered_tokens.push(tok);
                    }
                }
            }
        }
    }
    let num_tokens = ordered_tokens.len();
    let mut token_adj: Vec<Vec<u32>> = vec![Vec::new(); num_tokens];
    let mut struct_adj: Vec<Vec<u32>> = Vec::new();
    // Row and column nodes per table.
    for (t_idx, table) in tables.iter().enumerate() {
        let arity = table.first().map_or(0, Vec::len);
        // Column nodes for this table.
        let col_base = num_tokens + struct_adj.len();
        for _ in 0..arity {
            struct_adj.push(Vec::new());
        }
        for row in table {
            let row_node = (num_tokens + struct_adj.len()) as u32;
            struct_adj.push(Vec::new());
            for (c, cell) in row.iter().enumerate() {
                for tok in tokenize(cell) {
                    let tid = token_ids[&tok];
                    let col_node = (col_base + c.min(arity.saturating_sub(1))) as u32;
                    token_adj[tid as usize].push(row_node);
                    token_adj[tid as usize].push(col_node);
                    struct_adj[(row_node as usize) - num_tokens].push(tid);
                    struct_adj[(col_node as usize) - num_tokens].push(tid);
                }
            }
        }
        let _ = t_idx;
    }
    (
        Graph {
            token_adj,
            struct_adj,
            num_tokens,
        },
        token_ids,
    )
}

fn generate_walks(graph: &Graph, config: &EmbDiConfig) -> Vec<Vec<u32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut walks = Vec::with_capacity(graph.total_nodes() * config.walks_per_node);
    for start in 0..graph.total_nodes() as u32 {
        for _ in 0..config.walks_per_node {
            let walk = random_walk(graph, start, config.walk_length, &mut rng);
            if walk.len() >= 2 {
                walks.push(walk);
            }
        }
    }
    walks
}

/// One walk alternating between token and structural nodes.
fn random_walk<R: Rng>(graph: &Graph, start: u32, length: usize, rng: &mut R) -> Vec<u32> {
    let mut walk = Vec::with_capacity(length);
    let mut current = start;
    for _ in 0..length {
        walk.push(current);
        let neighbours: &[u32] = if (current as usize) < graph.num_tokens {
            &graph.token_adj[current as usize]
        } else {
            &graph.struct_adj[current as usize - graph.num_tokens]
        };
        if neighbours.is_empty() {
            break;
        }
        current = neighbours[rng.random_range(0..neighbours.len())];
    }
    walk
}

impl IrModel for EmbDiModel {
    fn dims(&self) -> usize {
        self.dims
    }

    fn encode(&self, raw_sentence: &str) -> Vec<f32> {
        let ids: Vec<u32> = tokenize(raw_sentence)
            .iter()
            .filter_map(|t| self.token_ids.get(t).copied())
            .collect();
        if self.embeddings.is_empty() {
            return vec![0.0; self.dims];
        }
        self.embeddings.mean_vector(&ids)
    }

    fn name(&self) -> &'static str {
        "EmbDI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::vector::{cosine, norm};

    /// Two-column table where rows pair a "canonical" artist with an album;
    /// variant spellings share rows with the same albums.
    fn demo_tables() -> Vec<Vec<Vec<String>>> {
        let mut rows = Vec::new();
        for i in 0..30 {
            let (artist, album) = match i % 3 {
                0 => ("coldplay", "parachutes"),
                1 => ("coldplay", "xandy"),
                _ => ("radiohead", "okcomputer"),
            };
            rows.push(vec![artist.to_string(), album.to_string()]);
        }
        // Variant spelling sharing album context with "coldplay".
        for _ in 0..10 {
            rows.push(vec!["coldpaly".to_string(), "parachutes".to_string()]);
        }
        vec![rows]
    }

    #[test]
    fn shared_context_tokens_are_close() {
        let m = EmbDiModel::fit(
            &demo_tables(),
            &EmbDiConfig {
                dims: 16,
                epochs: 3,
                seed: 7,
                ..Default::default()
            },
        );
        let canonical = m.encode("coldplay");
        let variant = m.encode("coldpaly");
        let other = m.encode("radiohead");
        let close = cosine(&canonical, &variant);
        let far = cosine(&canonical, &other);
        assert!(close > far, "variant {close} vs other {far}");
    }

    #[test]
    fn graph_shape() {
        let tables = demo_tables();
        let (graph, tokens) = build_graph(&tables);
        // 5 distinct tokens, 40 rows, 2 columns.
        assert_eq!(graph.num_tokens, 6);
        assert_eq!(tokens.len(), 6);
        assert_eq!(graph.struct_adj.len(), 40 + 2);
        // Every token has at least one structural neighbour.
        assert!(graph.token_adj.iter().all(|a| !a.is_empty()));
    }

    #[test]
    fn empty_tables_do_not_panic() {
        let m = EmbDiModel::fit(
            &[],
            &EmbDiConfig {
                dims: 8,
                ..Default::default()
            },
        );
        assert_eq!(m.encode("whatever"), vec![0.0; 8]);
        assert_eq!(m.num_tokens(), 0);
    }

    #[test]
    fn oov_encodes_to_zero() {
        let m = EmbDiModel::fit(
            &demo_tables(),
            &EmbDiConfig {
                dims: 8,
                epochs: 1,
                seed: 1,
                ..Default::default()
            },
        );
        assert_eq!(norm(&m.encode("unseen gibberish")), 0.0);
    }

    #[test]
    fn deterministic() {
        let cfg = EmbDiConfig {
            dims: 8,
            epochs: 1,
            seed: 21,
            ..Default::default()
        };
        let a = EmbDiModel::fit(&demo_tables(), &cfg);
        let b = EmbDiModel::fit(&demo_tables(), &cfg);
        assert_eq!(a.encode("coldplay"), b.encode("coldplay"));
    }
}
