//! Kernel-equivalence suite: the blocked, register-tiled matrix
//! products must be **bit-identical** to the retained naive reference
//! kernels on every shape — including tile-edge shapes (MR±1, NR±1),
//! degenerate shapes (1x1, k=1), and primes that divide into nothing —
//! at 1, 2, and 4 worker threads. The int8 GEMM and the fused distance
//! kernels are held to the same standard against their scalar
//! references.

use vaer_linalg::{
    distance_row, distance_row_scalar, i8_matmul_t, i8_matmul_t_reference, matmul_reference,
    matmul_t_reference, runtime, t_matmul_reference, DistanceOp, Matrix, QuantizedMatrix,
    XorShiftRng, MR, NR,
};

/// Serialises tests that touch the process-global thread override.
static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn edge_shapes() -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (1, 1, 1),
        (1, 7, 1),
        (2, 1, 3),
        (MR - 1, 3, NR - 1),
        (MR, 4, NR),
        (MR + 1, 5, NR + 1),
        (2 * MR + 1, 1, 2 * NR + 1),
        (7, 11, 13),
        (17, 31, 19),
        (37, 23, 41),
        (64, 64, 64),
        (130, 70, 110),
    ];
    // A shape large enough to cross the parallel cutoff.
    shapes.push((96, 64, 96));
    shapes
}

#[test]
fn blocked_products_match_references_bitwise_at_every_thread_count() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = XorShiftRng::new(0xC0FFEE);
    for &(m, k, n) in &edge_shapes() {
        let a = Matrix::gaussian(m, k, &mut rng);
        let b = Matrix::gaussian(k, n, &mut rng);
        let bt = b.transpose();
        let at = a.transpose();
        let want_mm = matmul_reference(&a, &b);
        let want_mmt = matmul_t_reference(&a, &bt);
        let want_tmm = t_matmul_reference(&at, &b);
        for threads in [1usize, 2, 4] {
            runtime::set_threads(threads);
            let got_mm = a.matmul(&b);
            let got_mmt = a.matmul_t(&bt);
            let got_tmm = at.t_matmul(&b);
            runtime::set_threads(0);
            assert_eq!(
                want_mm.as_slice(),
                got_mm.as_slice(),
                "matmul {m}x{k}x{n} at {threads} threads"
            );
            assert_eq!(
                want_mmt.as_slice(),
                got_mmt.as_slice(),
                "matmul_t {m}x{k}x{n} at {threads} threads"
            );
            assert_eq!(
                want_tmm.as_slice(),
                got_tmm.as_slice(),
                "t_matmul {m}x{k}x{n} at {threads} threads"
            );
        }
    }
}

#[test]
fn blocked_products_match_on_sparse_one_hot_inputs() {
    // IR construction feeds one-hot-ish matrices through matmul; the old
    // kernel special-cased zeros, the blocked kernel must not need to.
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = XorShiftRng::new(7);
    let (m, k, n) = (33, 50, 21);
    let mut a = Matrix::zeros(m, k);
    for i in 0..m {
        let j = (i * 13) % k;
        a.row_mut(i)[j] = 1.0;
    }
    let b = Matrix::gaussian(k, n, &mut rng);
    let want = matmul_reference(&a, &b);
    for threads in [1usize, 2, 4] {
        runtime::set_threads(threads);
        let got = a.matmul(&b);
        runtime::set_threads(0);
        assert_eq!(
            want.as_slice(),
            got.as_slice(),
            "one-hot at {threads} threads"
        );
    }
}

#[test]
fn into_variants_overwrite_stale_destinations() {
    let mut rng = XorShiftRng::new(99);
    let a = Matrix::gaussian(9, 5, &mut rng);
    let b = Matrix::gaussian(5, 11, &mut rng);
    let mut out = Matrix::filled(9, 11, f32::NAN);
    a.matmul_into(&b, &mut out);
    assert_eq!(out.as_slice(), matmul_reference(&a, &b).as_slice());

    let bt = b.transpose();
    let mut out_t = Matrix::filled(9, 11, -3.0);
    a.matmul_t_into(&bt, &mut out_t);
    assert_eq!(out_t.as_slice(), matmul_t_reference(&a, &bt).as_slice());

    let at = a.transpose();
    let mut out_tm = Matrix::filled(9, 11, 42.0);
    at.t_matmul_into(&b, &mut out_tm);
    assert_eq!(out_tm.as_slice(), t_matmul_reference(&at, &b).as_slice());
}

#[test]
fn int8_gemm_matches_reference_bitwise_at_every_thread_count() {
    // Integer accumulation is exact, so the blocked/packed kernel must
    // equal the naive reference *bitwise* on every shape and thread
    // count — there is no tolerance to hide behind.
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = XorShiftRng::new(0x1808);
    for &(m, k, n) in &edge_shapes() {
        let x = QuantizedMatrix::quantize_per_row(&Matrix::gaussian(m, k, &mut rng));
        let w = QuantizedMatrix::quantize_per_row(&Matrix::gaussian(n, k, &mut rng));
        let want = i8_matmul_t_reference(&x, &w);
        for threads in [1usize, 2, 4] {
            runtime::set_threads(threads);
            let got = i8_matmul_t(&x, &w);
            runtime::set_threads(0);
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "i8_matmul_t {m}x{k}x{n} at {threads} threads"
            );
        }
    }
}

#[test]
fn distance_kernels_match_scalar_bitwise_on_edge_lengths() {
    let mut rng = XorShiftRng::new(0x0D15);
    for &n in &[1usize, 7, 8, 9, 15, 16, 17, 64, 129, 257] {
        let mu_s = Matrix::gaussian(1, n, &mut rng);
        let mu_t = Matrix::gaussian(1, n, &mut rng);
        let sig_s = Matrix::gaussian(1, n, &mut rng).map(f32::abs);
        let sig_t = Matrix::gaussian(1, n, &mut rng).map(f32::abs);
        for op in [
            DistanceOp::W2,
            DistanceOp::MuOnly,
            DistanceOp::SigmaOnly,
            DistanceOp::Mahalanobis,
        ] {
            let mut fast = vec![0.0f32; n];
            let mut scalar = vec![0.0f32; n];
            distance_row(
                op,
                mu_s.row(0),
                mu_t.row(0),
                sig_s.row(0),
                sig_t.row(0),
                &mut fast,
            );
            distance_row_scalar(
                op,
                mu_s.row(0),
                mu_t.row(0),
                sig_s.row(0),
                sig_t.row(0),
                &mut scalar,
            );
            let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
            let scalar_bits: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, scalar_bits, "{op:?} n={n}");
        }
    }
}

#[test]
fn degenerate_dimensions_are_safe() {
    let a = Matrix::zeros(0, 4);
    let b = Matrix::zeros(4, 3);
    assert_eq!(a.matmul(&b).shape(), (0, 3));
    let a = Matrix::zeros(3, 0);
    let b = Matrix::zeros(0, 2);
    let c = a.matmul(&b);
    assert_eq!(c.shape(), (3, 2));
    assert!(c.as_slice().iter().all(|&v| v == 0.0));
    let a = Matrix::zeros(2, 5);
    let b = Matrix::zeros(5, 0);
    assert_eq!(a.matmul(&b).shape(), (2, 0));
}
