//! Metrics-registry concurrency: counters incremented from the data-
//! parallel runtime's worker threads must sum exactly, and histogram
//! buckets must not tear (total count == sum over buckets).
//!
//! This binary mutates the global observability level, so it holds all
//! level-dependent assertions in ONE #[test] — integration tests in the
//! same binary run on a shared process where a second test could observe
//! a level mid-change.

use vaer_linalg::runtime;
use vaer_obs::{Level, ObsSink};

#[test]
fn worker_thread_counters_sum_exactly() {
    vaer_obs::set_level(Level::Summary);
    vaer_obs::reset();
    runtime::set_threads(8);

    let counter = vaer_obs::counter("test.obs.worker_incr");
    let histogram = vaer_obs::histogram("test.obs.worker_hist");

    // 10_000 increments split across worker shards; each shard also
    // records one histogram sample per element at a spread of
    // magnitudes so multiple log2 buckets are hit concurrently.
    const TOTAL: usize = 10_000;
    let per_shard: Vec<usize> = runtime::map_shards_indexed(TOTAL, 1, |_, range| {
        for i in range.clone() {
            counter.incr();
            histogram.record_nanos(1u64 << (i % 20));
        }
        range.len()
    });
    assert_eq!(per_shard.iter().sum::<usize>(), TOTAL);
    assert_eq!(counter.get(), TOTAL as u64, "lost counter increments");

    let sink = ObsSink::snapshot();
    let hist = sink
        .histograms
        .iter()
        .find(|h| h.name == "test.obs.worker_hist")
        .expect("histogram registered");
    assert_eq!(hist.count, TOTAL as u64, "lost histogram samples");
    assert_eq!(
        hist.buckets.iter().sum::<u64>(),
        hist.count,
        "torn histogram buckets"
    );
    assert!(hist.min_nanos <= hist.max_nanos);
    assert!(
        hist.sum_nanos >= hist.count,
        "sum below one nano per sample"
    );

    // Matmul telemetry recorded from the instrumented kernels feeds the
    // derived-GFLOP/s pairs; one call is enough to register the shape
    // class under Summary.
    let mut rng = vaer_linalg::XorShiftRng::new(1);
    let a = vaer_linalg::Matrix::gaussian(48, 48, &mut rng);
    let b = vaer_linalg::Matrix::gaussian(48, 48, &mut rng);
    let _ = a.matmul(&b);
    let sink = ObsSink::snapshot();
    assert!(
        !sink.derived_gflops().is_empty(),
        "matmul under Summary should yield a derived GFLOP/s pair"
    );

    // Off means off: no records accumulate and counter handles no-op.
    vaer_obs::set_level(Level::Off);
    vaer_obs::reset();
    let _ = a.matmul(&b);
    counter.incr();
    assert_eq!(vaer_obs::records_len(), 0, "records collected while off");
    assert_eq!(counter.get(), 0, "counter advanced while off");

    runtime::set_threads(0);
}
