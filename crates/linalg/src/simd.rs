//! Fused row kernels for attribute-wise latent distance features.
//!
//! `vaer-core`'s `latent::distance_features` historically built each
//! feature block out of whole-matrix temporaries (`sub`, `hadamard`,
//! `add` — five allocations per attribute). These kernels compute one
//! output row in a single fused pass with zero allocations, and — like
//! the matmul micro-kernel in [`crate::ops`] — dispatch to an
//! AVX2-compiled copy of the identical scalar body under runtime feature
//! detection. The body performs the exact per-element operation sequence
//! of the old matrix-op pipeline (rustc never contracts `mul` + `add`
//! into FMA), so dispatch and vector width cannot change results: every
//! path is bit-identical to [`distance_row_scalar`].

/// Per-element distance feature between two diagonal Gaussians
/// `(μ_s, σ_s)` and `(μ_t, σ_t)`. Mirrors `vaer-core`'s `DistanceKind`
/// without depending on it (linalg sits below core in the crate DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceOp {
    /// Squared 2-Wasserstein: `(μ_s-μ_t)² + (σ_s-σ_t)²`.
    W2,
    /// Mean term only: `(μ_s-μ_t)²`.
    MuOnly,
    /// Scale term only: `(σ_s-σ_t)²`.
    SigmaOnly,
    /// Variance-normalised mean term:
    /// `(μ_s-μ_t)² / ((σ_s²+σ_t²)·0.5 + 1e-4)`.
    Mahalanobis,
}

/// Computes one distance-feature row into `out`, dispatching to the
/// AVX2-compiled body when the CPU supports it. Bit-identical to
/// [`distance_row_scalar`] on every dispatch path.
///
/// # Panics
/// Panics when the four input slices and `out` differ in length.
pub fn distance_row(
    op: DistanceOp,
    mu_s: &[f32],
    mu_t: &[f32],
    sig_s: &[f32],
    sig_t: &[f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by runtime CPU feature detection; the function
        // body contains no intrinsics, only code compiled for AVX2.
        unsafe { distance_row_avx2(op, mu_s, mu_t, sig_s, sig_t, out) };
        return;
    }
    distance_row_body(op, mu_s, mu_t, sig_s, sig_t, out);
}

/// Scalar reference instantiation of the kernel body, kept public so
/// equivalence tests (and the `micro` bench baseline) can pin the
/// dispatched kernel against it.
///
/// # Panics
/// Panics when the four input slices and `out` differ in length.
pub fn distance_row_scalar(
    op: DistanceOp,
    mu_s: &[f32],
    mu_t: &[f32],
    sig_s: &[f32],
    sig_t: &[f32],
    out: &mut [f32],
) {
    distance_row_body(op, mu_s, mu_t, sig_s, sig_t, out);
}

/// AVX2-compiled instantiation of [`distance_row_body`].
// SAFETY: callable only when the CPU supports AVX2 — `distance_row` is
// the sole caller and gates on `is_x86_feature_detected!("avx2")`. The
// body is plain safe Rust; the attribute only changes codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn distance_row_avx2(
    op: DistanceOp,
    mu_s: &[f32],
    mu_t: &[f32],
    sig_s: &[f32],
    sig_t: &[f32],
    out: &mut [f32],
) {
    distance_row_body(op, mu_s, mu_t, sig_s, sig_t, out);
}

/// Shared kernel body. Each arm preserves the exact floating-point
/// operation sequence of the matrix-op pipeline it replaced
/// (difference, square, halved-sum-plus-epsilon, divide), so the fused
/// kernel is bit-identical to the historical `sub`/`hadamard`/`add`
/// temporaries at every element.
///
/// # Panics
/// Panics when the four input slices and `out` differ in length.
#[inline(always)]
fn distance_row_body(
    op: DistanceOp,
    mu_s: &[f32],
    mu_t: &[f32],
    sig_s: &[f32],
    sig_t: &[f32],
    out: &mut [f32],
) {
    let n = out.len();
    assert!(
        mu_s.len() == n && mu_t.len() == n && sig_s.len() == n && sig_t.len() == n,
        "distance_row length mismatch: out {n}, mu {}x{}, sigma {}x{}",
        mu_s.len(),
        mu_t.len(),
        sig_s.len(),
        sig_t.len()
    );
    let mu = mu_s.iter().zip(mu_t);
    let sig = sig_s.iter().zip(sig_t);
    match op {
        DistanceOp::W2 => {
            for (o, ((&ms, &mt), (&ss, &st))) in out.iter_mut().zip(mu.zip(sig)) {
                let dm = ms - mt;
                let ds = ss - st;
                *o = dm * dm + ds * ds;
            }
        }
        DistanceOp::MuOnly => {
            for (o, (&ms, &mt)) in out.iter_mut().zip(mu) {
                let dm = ms - mt;
                *o = dm * dm;
            }
        }
        DistanceOp::SigmaOnly => {
            for (o, (&ss, &st)) in out.iter_mut().zip(sig) {
                let ds = ss - st;
                *o = ds * ds;
            }
        }
        DistanceOp::Mahalanobis => {
            for (o, ((&ms, &mt), (&ss, &st))) in out.iter_mut().zip(mu.zip(sig)) {
                let dm = ms - mt;
                let var = (ss * ss + st * st) * 0.5 + 1e-4;
                *o = (dm * dm) / var;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matrix, XorShiftRng};

    const OPS: [DistanceOp; 4] = [
        DistanceOp::W2,
        DistanceOp::MuOnly,
        DistanceOp::SigmaOnly,
        DistanceOp::Mahalanobis,
    ];

    #[test]
    fn dispatch_is_bit_identical_to_scalar() {
        let mut rng = XorShiftRng::new(0xD15);
        for &n in &[0usize, 1, 7, 8, 9, 32, 129] {
            let m = Matrix::gaussian(4, n.max(1), &mut rng);
            let (ms, mt, ss, st) = (
                &m.row(0)[..n],
                &m.row(1 % m.rows())[..n],
                &m.row(2 % m.rows())[..n],
                &m.row(3 % m.rows())[..n],
            );
            for op in OPS {
                let mut fast = vec![0.0f32; n];
                let mut scalar = vec![0.0f32; n];
                distance_row(op, ms, mt, ss, st, &mut fast);
                distance_row_scalar(op, ms, mt, ss, st, &mut scalar);
                let fast_bits: Vec<u32> = fast.iter().map(|v| v.to_bits()).collect();
                let scalar_bits: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
                assert_eq!(fast_bits, scalar_bits, "{op:?} n={n}");
            }
        }
    }

    #[test]
    fn kernels_match_matrix_op_formulas() {
        let ms = [1.0f32, -2.0, 0.5];
        let mt = [0.0f32, 1.0, 0.5];
        let ss = [0.3f32, 0.9, 2.0];
        let st = [0.1f32, 0.4, 2.0];
        let mut out = [0.0f32; 3];
        distance_row(DistanceOp::W2, &ms, &mt, &ss, &st, &mut out);
        for i in 0..3 {
            let dm = ms[i] - mt[i];
            let ds = ss[i] - st[i];
            assert_eq!(out[i], dm * dm + ds * ds);
        }
        distance_row(DistanceOp::Mahalanobis, &ms, &mt, &ss, &st, &mut out);
        for i in 0..3 {
            let dm = ms[i] - mt[i];
            let var = (ss[i] * ss[i] + st[i] * st[i]) * 0.5 + 1e-4;
            assert_eq!(out[i], dm * dm / var);
        }
    }
}
