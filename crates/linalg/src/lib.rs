//! Dense `f32` linear algebra for VAER.
//!
//! This crate provides the numerical substrate used by every other VAER
//! crate: a row-major dense [`Matrix`], vector kernels, and the matrix
//! decompositions required by the representation-learning pipeline
//! (QR, symmetric Jacobi eigendecomposition, and randomized truncated SVD
//! in the style of Halko, Martinsson & Tropp).
//!
//! The implementation is deliberately simple and allocation-conscious:
//! contiguous `Vec<f32>` storage, iterator-driven inner loops (so the
//! compiler elides bounds checks), and cache-blocked, register-tiled
//! matrix products (packed RHS panels + an `MR x NR` micro-kernel) that
//! are bit-identical to the naive reference loops. The only `unsafe` in
//! the crate is the feature-detection-guarded AVX2 dispatch of the
//! matmul/int8-GEMM/distance-feature kernels ([`ops`](crate), [`quant`](crate),
//! [`simd`](crate)).
//!
//! The quantized inference fast lane adds [`QuantizedMatrix`] (int8
//! symmetric per-row quantization), an exact-integer [`i8_matmul_t`]
//! GEMM, and fused [`distance_row`] kernels for the attribute-wise
//! Wasserstein features.
//!
//! # Example
//!
//! ```
//! use vaer_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod decomp;
mod matrix;
mod obs;
mod ops;
mod quant;
mod rng;
pub mod runtime;
mod simd;
pub mod vector;

pub use decomp::{jacobi_eigh, qr_thin, randomized_svd, EighResult, QrResult, SvdResult};
pub use matrix::Matrix;
pub use ops::{matmul_reference, matmul_t_reference, t_matmul_reference, MR, NR};
pub use quant::{
    i8_matmul_t, i8_matmul_t_packed, i8_matmul_t_reference, max_abs, scale_for_max_abs,
    PackedI8Rhs, QuantizedMatrix,
};
pub use rng::XorShiftRng;
pub use simd::{distance_row, distance_row_scalar, DistanceOp};

/// Errors produced by fallible linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// An operation received matrices with incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the expected shape relation.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine.
        routine: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// A routine received an empty input where data was required.
    EmptyInput(&'static str),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} did not converge after {iterations} iterations"
                )
            }
            LinalgError::EmptyInput(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = LinalgError::ShapeMismatch {
            expected: "2x2".into(),
            found: "3x1".into(),
        };
        assert!(e.to_string().contains("2x2"));
        let e = LinalgError::NoConvergence {
            routine: "jacobi",
            iterations: 5,
        };
        assert!(e.to_string().contains("jacobi"));
        let e = LinalgError::EmptyInput("matrix");
        assert!(e.to_string().contains("matrix"));
    }
}
