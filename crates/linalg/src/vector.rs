//! Vector kernels shared across VAER crates.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance.
#[inline]
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// Euclidean distance.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    sq_euclidean(a, b).sqrt()
}

/// Cosine similarity in `[-1, 1]`; returns 0 when either vector is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// In-place `y += alpha * x`.
#[inline]
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// In-place scale `x *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// L2-normalises `x` in place; leaves zero vectors untouched.
pub fn l2_normalize(x: &mut [f32]) {
    let n = norm(x);
    if n > f32::EPSILON {
        scale(1.0 / n, x);
    }
}

/// Mean of a slice; 0 for empty input.
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

/// Population variance of a slice; 0 for empty input.
pub fn variance(x: &[f32]) -> f32 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / x.len() as f32
}

/// Index of the maximum element; `None` for empty input. Ties go to the
/// first occurrence.
pub fn argmax(x: &[f32]) -> Option<usize> {
    x.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f32)>, (i, &v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

/// Index of the minimum element; `None` for empty input.
pub fn argmin(x: &[f32]) -> Option<usize> {
    x.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f32)>, (i, &v)| match best {
            Some((_, bv)) if bv <= v => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn axpy_scale_normalize() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 3.5]);
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        l2_normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[2.0, 4.0]), 1.0);
    }

    #[test]
    fn arg_extrema() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, 3.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        // Ties go to first occurrence.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }
}
