//! Matrix decompositions: thin QR, symmetric Jacobi eigendecomposition,
//! and randomized truncated SVD (Halko, Martinsson & Tropp, 2011).
//!
//! These are the pieces the LSA intermediate-representation generator needs
//! (TF-IDF → truncated SVD), sized for the "few thousand documents × few
//! thousand terms" matrices that VAER's benchmark domains produce.

use crate::matrix::Matrix;
use crate::rng::XorShiftRng;
use crate::LinalgError;

/// Result of a thin QR factorisation `A = Q R`.
#[derive(Debug, Clone)]
pub struct QrResult {
    /// `m x k` matrix with orthonormal columns (`k = min(m, n)`).
    pub q: Matrix,
    /// `k x n` upper-triangular factor.
    pub r: Matrix,
}

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct EighResult {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f32>,
    /// Matrix whose *columns* are the corresponding eigenvectors.
    pub eigenvectors: Matrix,
}

/// Result of a truncated SVD `A ≈ U diag(σ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SvdResult {
    /// `m x k` left singular vectors.
    pub u: Matrix,
    /// Top-`k` singular values, descending.
    pub singular_values: Vec<f32>,
    /// `k x n` right singular vectors (as rows of `Vᵀ`).
    pub vt: Matrix,
}

/// Thin QR via modified Gram–Schmidt with one re-orthogonalisation pass.
///
/// MGS with a second pass is numerically adequate for the tall, well-scaled
/// sketch matrices used inside [`randomized_svd`]; Householder would be
/// overkill here. Columns that turn out linearly dependent are replaced by
/// zero columns (with a zero diagonal in `R`).
pub fn qr_thin(a: &Matrix) -> QrResult {
    let (m, n) = a.shape();
    let k = m.min(n);
    // Work column-wise on the transpose so each vector is contiguous.
    let at = a.transpose(); // n x m, row i = column i of A
    let mut q_cols: Vec<Vec<f32>> = Vec::with_capacity(k);
    let mut r = Matrix::zeros(k, n);
    for j in 0..n {
        let mut v = at.row(j).to_vec();
        // Two orthogonalisation passes (classical "MGS2").
        for _pass in 0..2 {
            for (i, q) in q_cols.iter().enumerate() {
                let proj = crate::vector::dot(q, &v);
                if j < n && i < k {
                    r.set(i, j, r.get(i, j) + proj);
                }
                crate::vector::axpy(-proj, q, &mut v);
            }
        }
        if q_cols.len() < k {
            let nv = crate::vector::norm(&v);
            if nv > 1e-7 {
                crate::vector::scale(1.0 / nv, &mut v);
                r.set(q_cols.len(), j, nv);
                q_cols.push(v);
            } else {
                // Dependent column: keep a zero placeholder to preserve shape.
                r.set(q_cols.len(), j, 0.0);
                q_cols.push(vec![0.0; m]);
            }
        }
    }
    while q_cols.len() < k {
        q_cols.push(vec![0.0; m]);
    }
    let mut q = Matrix::zeros(m, k);
    for (jc, col) in q_cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            q.set(i, jc, v);
        }
    }
    QrResult { q, r }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns eigenpairs sorted by descending eigenvalue. Intended for the
/// small (`k x k`, k ≲ 300) Gram matrices formed inside the randomized SVD.
///
/// # Errors
/// Returns [`LinalgError::NoConvergence`] if the off-diagonal mass does not
/// fall below tolerance within 100 sweeps, and
/// [`LinalgError::ShapeMismatch`] for non-square input.
pub fn jacobi_eigh(a: &Matrix) -> Result<EighResult, LinalgError> {
    let (n, n2) = a.shape();
    if n != n2 {
        return Err(LinalgError::ShapeMismatch {
            expected: "square matrix".into(),
            found: format!("{n}x{n2}"),
        });
    }
    if n == 0 {
        return Err(LinalgError::EmptyInput("jacobi_eigh"));
    }
    let mut s = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    // f32 arithmetic cannot drive the off-diagonal mass much below ~1e-6
    // relative to the matrix scale; demanding more would spin forever.
    let tol = 1e-6_f32 * (1.0 + a.fro_norm());
    for _sweep in 0..max_sweeps {
        let mut off = 0.0f32;
        for p in 0..n {
            for q in (p + 1)..n {
                off += s.get(p, q) * s.get(p, q);
            }
        }
        if off.sqrt() <= tol {
            let mut pairs: Vec<(f32, usize)> = (0..n).map(|i| (s.get(i, i), i)).collect();
            pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let eigenvalues: Vec<f32> = pairs.iter().map(|&(l, _)| l).collect();
            let mut eigenvectors = Matrix::zeros(n, n);
            for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
                for i in 0..n {
                    eigenvectors.set(i, new_col, v.get(i, old_col));
                }
            }
            return Ok(EighResult {
                eigenvalues,
                eigenvectors,
            });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = s.get(p, q);
                if apq.abs() < f32::EPSILON {
                    continue;
                }
                let app = s.get(p, p);
                let aqq = s.get(q, q);
                // Standard stable Jacobi rotation (Golub & Van Loan §8.5).
                let t = {
                    let tau = (aqq - app) / (2.0 * apq);
                    let sign = if tau >= 0.0 { 1.0 } else { -1.0 };
                    sign / (tau.abs() + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let sn = t * c;
                // Apply rotation to rows/cols p and q of S.
                for i in 0..n {
                    let sip = s.get(i, p);
                    let siq = s.get(i, q);
                    s.set(i, p, c * sip - sn * siq);
                    s.set(i, q, sn * sip + c * siq);
                }
                for i in 0..n {
                    let spi = s.get(p, i);
                    let sqi = s.get(q, i);
                    s.set(p, i, c * spi - sn * sqi);
                    s.set(q, i, sn * spi + c * sqi);
                }
                // Accumulate eigenvectors.
                for i in 0..n {
                    let vip = v.get(i, p);
                    let viq = v.get(i, q);
                    v.set(i, p, c * vip - sn * viq);
                    v.set(i, q, sn * vip + c * viq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        routine: "jacobi_eigh",
        iterations: max_sweeps,
    })
}

/// Randomized truncated SVD: `A ≈ U diag(σ) Vᵀ` with `k` components.
///
/// Implements the standard two-stage scheme: a Gaussian sketch with
/// `oversample` extra columns, `power_iters` subspace (power) iterations
/// with QR re-orthogonalisation for spectral-decay sharpening, then an
/// exact eigendecomposition of the small projected Gram matrix.
///
/// # Errors
/// Returns an error on empty input, `k == 0`, or eigensolver failure.
pub fn randomized_svd(
    a: &Matrix,
    k: usize,
    oversample: usize,
    power_iters: usize,
    seed: u64,
) -> Result<SvdResult, LinalgError> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyInput("randomized_svd"));
    }
    if k == 0 {
        return Err(LinalgError::EmptyInput("randomized_svd: k must be > 0"));
    }
    let k = k.min(m).min(n);
    let sketch = (k + oversample).min(m).min(n);
    let mut rng = XorShiftRng::new(seed);
    let omega = Matrix::gaussian(n, sketch, &mut rng);
    // Range finder: Y = A Ω, refined by power iterations.
    let mut q = qr_thin(&a.matmul(&omega)).q;
    for _ in 0..power_iters {
        let z = qr_thin(&a.t_matmul(&q)).q; // n x sketch
        q = qr_thin(&a.matmul(&z)).q; // m x sketch
    }
    // Project: B = Qᵀ A  (sketch x n); eigendecompose B Bᵀ (sketch x sketch).
    let b = q.t_matmul(a);
    let gram = b.matmul_t(&b);
    let eig = jacobi_eigh(&gram)?;
    let mut singular_values = Vec::with_capacity(k);
    let mut u = Matrix::zeros(m, k);
    let mut vt = Matrix::zeros(k, n);
    // U = Q * W, Vᵀ = diag(1/σ) Wᵀ B, where W holds top-k eigenvectors.
    for comp in 0..k {
        let lambda = eig.eigenvalues[comp].max(0.0);
        let sigma = lambda.sqrt();
        singular_values.push(sigma);
        let w_col = eig.eigenvectors.col(comp); // length `sketch`
                                                // U[:, comp] = Q w
        for i in 0..m {
            u.set(i, comp, crate::vector::dot(q.row(i), &w_col));
        }
        // Vᵀ[comp, :] = (wᵀ B) / σ
        if sigma > 1e-7 {
            let inv = 1.0 / sigma;
            for j in 0..n {
                let mut acc = 0.0;
                for (p, &w) in w_col.iter().enumerate() {
                    acc += w * b.get(p, j);
                }
                vt.set(comp, j, acc * inv);
            }
        }
    }
    Ok(SvdResult {
        u,
        singular_values,
        vt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(q: &Matrix, tol: f32) {
        let g = q.t_matmul(q);
        let (k, _) = g.shape();
        for i in 0..k {
            for j in 0..k {
                let expected = if i == j { 1.0 } else { 0.0 };
                let got = g.get(i, j);
                // Zero (dependent) columns yield zero diagonal entries.
                if i == j && got.abs() < tol {
                    continue;
                }
                assert!(
                    (got - expected).abs() < tol,
                    "G[{i},{j}] = {got}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn qr_reconstructs() {
        let mut rng = XorShiftRng::new(9);
        let a = Matrix::gaussian(8, 5, &mut rng);
        let QrResult { q, r } = qr_thin(&a);
        assert_orthonormal_cols(&q, 1e-4);
        let recon = q.matmul(&r);
        assert!(
            recon.max_abs_diff(&a) < 1e-4,
            "diff {}",
            recon.max_abs_diff(&a)
        );
    }

    #[test]
    fn qr_rank_deficient() {
        // Two identical columns: QR must not blow up.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let QrResult { q, r } = qr_thin(&a);
        let recon = q.matmul(&r);
        assert!(recon.max_abs_diff(&a) < 1e-5);
    }

    #[test]
    fn jacobi_diagonalises_known_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigh(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-5);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-5);
        // A v = λ v for the top eigenvector.
        let v0 = e.eigenvectors.col(0);
        let av: Vec<f32> = (0..2).map(|i| crate::vector::dot(a.row(i), &v0)).collect();
        for i in 0..2 {
            assert!((av[i] - 3.0 * v0[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn jacobi_random_symmetric_reconstruction() {
        let mut rng = XorShiftRng::new(21);
        let g = Matrix::gaussian(6, 6, &mut rng);
        let a = g.t_matmul(&g); // symmetric PSD
        let e = jacobi_eigh(&a).unwrap();
        // Reconstruct V diag(λ) Vᵀ.
        let n = 6;
        let mut recon = Matrix::zeros(n, n);
        for c in 0..n {
            let v = e.eigenvectors.col(c);
            let l = e.eigenvalues[c];
            for i in 0..n {
                for j in 0..n {
                    recon.set(i, j, recon.get(i, j) + l * v[i] * v[j]);
                }
            }
        }
        assert!(
            recon.max_abs_diff(&a) < 1e-2 * (1.0 + a.fro_norm()),
            "diff {}",
            recon.max_abs_diff(&a)
        );
    }

    #[test]
    fn jacobi_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            jacobi_eigh(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn svd_low_rank_exact_recovery() {
        // Build an exactly rank-3 matrix and recover it with k=3.
        let mut rng = XorShiftRng::new(5);
        let u = Matrix::gaussian(20, 3, &mut rng);
        let v = Matrix::gaussian(15, 3, &mut rng);
        let a = u.matmul_t(&v);
        let svd = randomized_svd(&a, 3, 4, 2, 77).unwrap();
        let mut recon = Matrix::zeros(20, 15);
        for c in 0..3 {
            let s = svd.singular_values[c];
            for i in 0..20 {
                for j in 0..15 {
                    recon.set(
                        i,
                        j,
                        recon.get(i, j) + s * svd.u.get(i, c) * svd.vt.get(c, j),
                    );
                }
            }
        }
        let rel = recon.sub(&a).fro_norm() / a.fro_norm();
        assert!(rel < 1e-2, "relative error {rel}");
    }

    #[test]
    fn svd_singular_values_descending() {
        let mut rng = XorShiftRng::new(31);
        let a = Matrix::gaussian(30, 12, &mut rng);
        let svd = randomized_svd(&a, 6, 4, 2, 3).unwrap();
        for w in svd.singular_values.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-4,
                "not descending: {:?}",
                svd.singular_values
            );
        }
        assert_eq!(svd.u.shape(), (30, 6));
        assert_eq!(svd.vt.shape(), (6, 12));
    }

    #[test]
    fn svd_k_larger_than_rank_is_clamped() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let svd = randomized_svd(&a, 10, 4, 1, 1).unwrap();
        assert_eq!(svd.u.cols(), 2);
    }

    #[test]
    fn svd_errors() {
        assert!(randomized_svd(&Matrix::zeros(0, 3), 2, 2, 1, 1).is_err());
        assert!(randomized_svd(&Matrix::zeros(3, 3), 0, 2, 1, 1).is_err());
    }
}
