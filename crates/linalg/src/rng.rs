//! A tiny, dependency-free xorshift64* RNG.
//!
//! `vaer-linalg` sits at the bottom of the dependency DAG and must not pull
//! in `rand`; the randomized SVD only needs a reproducible stream of
//! approximately-Gaussian values, for which xorshift64* plus a
//! sum-of-uniforms Gaussian is ample.

/// Deterministic xorshift64* pseudo-random generator.
///
/// Not cryptographically secure; used only to draw Gaussian sketching
/// matrices for [`randomized_svd`](crate::randomized_svd) and test data.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a seed. A zero seed is remapped to a
    /// non-zero constant because xorshift has a zero fixed point.
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        Self { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // Use the top 24 bits for a uniform dyadic rational.
        ((self.next_u64() >> 40) as f32) / (1u32 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Approximately standard-normal `f32` (Irwin–Hall with 12 uniforms).
    pub fn gaussian(&mut self) -> f32 {
        let mut s = 0.0f32;
        for _ in 0..12 {
            s += self.next_f32();
        }
        s - 6.0
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "XorShiftRng::below requires n > 0");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShiftRng::new(7);
        let mut b = XorShiftRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShiftRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn uniform_in_range() {
        let mut r = XorShiftRng::new(3);
        for _ in 0..1000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = XorShiftRng::new(11);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_bounds() {
        let mut r = XorShiftRng::new(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        XorShiftRng::new(1).below(0);
    }
}
