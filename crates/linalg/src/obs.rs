//! Telemetry hooks for the matmul kernels and the worker pool.
//!
//! All handles are registered once through a `OnceLock`, so the hot-path
//! cost is: one relaxed load when telemetry is off (`matmul_start`
//! returns `None` without reading the clock), and a few relaxed counter
//! RMWs per *matrix product* (never per element) when it is on.
//!
//! Counter naming follows the `<prefix>.flops` / `<prefix>.nanos`
//! convention that `vaer_obs::ObsSink::derived_gflops` turns into
//! per-kernel, per-shape-class GFLOP/s at export time.

use std::sync::OnceLock;
use std::time::Instant;
use vaer_obs::{counter, gauge, Counter};

/// Kernel ids for [`matmul_finish`].
pub(crate) const MATMUL: usize = 0;
pub(crate) const MATMUL_T: usize = 1;
pub(crate) const T_MATMUL: usize = 2;

const KERNEL_NAMES: [&str; 3] = ["matmul", "matmul_t", "t_matmul"];

/// Shape classes by multiply-add count. `small`'s upper edge is the
/// parallel FLOP cutoff, so `tiny`/`small` products are always serial
/// and `medium`/`large` are parallel-eligible.
const CLASS_NAMES: [&str; 4] = ["tiny", "small", "medium", "large"];

/// Buckets a product's multiply-add count (`m * k * n`) into a class.
pub(crate) fn shape_class(madds: usize) -> usize {
    if madds < 1 << 13 {
        0
    } else if madds < crate::ops::PAR_FLOP_CUTOFF {
        1
    } else if madds < 1 << 22 {
        2
    } else {
        3
    }
}

struct KernelCell {
    calls: [Counter; CLASS_NAMES.len()],
    flops: [Counter; CLASS_NAMES.len()],
    nanos: [Counter; CLASS_NAMES.len()],
}

struct MatmulObs {
    kernels: [KernelCell; KERNEL_NAMES.len()],
    dispatch_parallel: Counter,
    dispatch_serial: Counter,
}

static MATMUL_OBS: OnceLock<MatmulObs> = OnceLock::new();

fn matmul_obs() -> &'static MatmulObs {
    MATMUL_OBS.get_or_init(|| {
        // Recorded once alongside registration: whether the AVX2
        // micro-kernel path is available on this machine.
        #[cfg(target_arch = "x86_64")]
        gauge("linalg.avx2").set(f64::from(u8::from(std::arch::is_x86_feature_detected!(
            "avx2"
        ))));
        #[cfg(not(target_arch = "x86_64"))]
        gauge("linalg.avx2").set(0.0);
        let kernels = KERNEL_NAMES.map(|kernel| KernelCell {
            calls: CLASS_NAMES.map(|c| counter(&format!("linalg.{kernel}.{c}.calls"))),
            flops: CLASS_NAMES.map(|c| counter(&format!("linalg.{kernel}.{c}.flops"))),
            nanos: CLASS_NAMES.map(|c| counter(&format!("linalg.{kernel}.{c}.nanos"))),
        });
        MatmulObs {
            kernels,
            dispatch_parallel: counter("linalg.matmul.dispatch.parallel"),
            dispatch_serial: counter("linalg.matmul.dispatch.serial"),
        }
    })
}

/// Reads the clock iff telemetry is enabled (one relaxed load when off).
#[inline]
pub(crate) fn matmul_start() -> Option<Instant> {
    if vaer_obs::enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Records one finished matrix product: FLOPs (2 per multiply-add) and
/// wall nanoseconds under the kernel's shape class, plus which dispatch
/// (parallel row-sharding vs serial) the product actually took.
#[inline]
pub(crate) fn matmul_finish(kernel: usize, madds: usize, parallel: bool, start: Option<Instant>) {
    let Some(t0) = start else { return };
    let nanos = t0.elapsed().as_nanos() as u64;
    let obs = matmul_obs();
    let class = shape_class(madds);
    let cell = &obs.kernels[kernel];
    cell.calls[class].incr();
    cell.flops[class].add(2 * madds as u64);
    cell.nanos[class].add(nanos);
    if parallel {
        obs.dispatch_parallel.incr();
    } else {
        obs.dispatch_serial.incr();
    }
}

struct PoolObs {
    tasks: Counter,
    spawned: Counter,
    inline_runs: Counter,
    join_wait_nanos: Counter,
}

static POOL_OBS: OnceLock<PoolObs> = OnceLock::new();

fn pool_obs() -> &'static PoolObs {
    POOL_OBS.get_or_init(|| PoolObs {
        tasks: counter("runtime.tasks"),
        spawned: counter("runtime.shards_spawned"),
        inline_runs: counter("runtime.inline_runs"),
        join_wait_nanos: counter("runtime.join_wait_nanos"),
    })
}

/// Records a shard map that ran inline on the calling thread.
#[inline]
pub(crate) fn pool_inline() {
    if vaer_obs::enabled() {
        let obs = pool_obs();
        obs.tasks.incr();
        obs.inline_runs.incr();
    }
}

/// Records a shard map that spawned workers: `shards` total tasks, of
/// which `spawned` ran on spawned scoped threads.
#[inline]
pub(crate) fn pool_spawned(shards: usize, spawned: usize) {
    if vaer_obs::enabled() {
        let obs = pool_obs();
        obs.tasks.add(shards as u64);
        obs.spawned.add(spawned as u64);
    }
}

/// Time the calling thread spent blocked joining workers after its own
/// shard finished — the pool's idle-time proxy.
#[inline]
pub(crate) fn pool_join_wait(start: Option<Instant>) {
    if let Some(t0) = start {
        pool_obs()
            .join_wait_nanos
            .add(t0.elapsed().as_nanos() as u64);
    }
}

/// Clock read for [`pool_join_wait`], gated like [`matmul_start`].
#[inline]
pub(crate) fn pool_clock() -> Option<Instant> {
    if vaer_obs::enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_class_boundaries() {
        assert_eq!(shape_class(0), 0);
        assert_eq!(shape_class((1 << 13) - 1), 0);
        assert_eq!(shape_class(1 << 13), 1);
        assert_eq!(shape_class(crate::ops::PAR_FLOP_CUTOFF - 1), 1);
        assert_eq!(shape_class(crate::ops::PAR_FLOP_CUTOFF), 2);
        assert_eq!(shape_class((1 << 22) - 1), 2);
        assert_eq!(shape_class(1 << 22), 3);
        assert_eq!(shape_class(usize::MAX), 3);
    }
}
