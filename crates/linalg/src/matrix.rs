//! Row-major dense matrix.

use crate::rng::XorShiftRng;

/// A dense, row-major `f32` matrix.
///
/// Storage is a single contiguous `Vec<f32>` of length `rows * cols`;
/// element `(i, j)` lives at `data[i * cols + j]`. All hot operations are
/// written against row slices so bounds checks vanish in release builds.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} but expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Matrix with i.i.d. approximately standard-normal entries.
    pub fn gaussian(rows: usize, cols: usize, rng: &mut XorShiftRng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gaussian()).collect();
        Self { rows, cols, data }
    }

    /// Matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut XorShiftRng) -> Self {
        let data = (0..rows * cols).map(|_| rng.uniform(lo, hi)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    /// Panics when `j` is out of range.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(
            j < self.cols,
            "column {j} out of bounds for {} columns",
            self.cols
        );
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Returns a new matrix that is the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let src = self.row(i);
            for (j, &v) in src.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Extracts rows `[start, end)` into a new matrix.
    ///
    /// # Panics
    /// Panics when `start > end` or `end` exceeds the row count.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "row slice {start}..{end} out of bounds"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Selects the given rows (with repetition allowed) into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Keeps only the first `k` columns.
    ///
    /// # Panics
    /// Panics when `k` exceeds the column count.
    pub fn truncate_cols(&self, k: usize) -> Matrix {
        assert!(k <= self.cols, "cannot keep {k} of {} columns", self.cols);
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        out
    }

    /// Horizontally concatenates `self` and `other` (same row count).
    ///
    /// # Panics
    /// Panics when the row counts differ.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat requires equal row counts");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Vertically concatenates `self` and `other` (same column count).
    ///
    /// # Panics
    /// Panics when the column counts differ.
    pub fn vconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "vconcat requires equal column counts"
        );
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn identity_diagonal() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn slicing_and_selection() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.row(0), &[3.0, 4.0]);
        let sel = m.select_rows(&[2, 0, 2]);
        assert_eq!(sel.row(0), &[5.0, 6.0]);
        assert_eq!(sel.row(1), &[1.0, 2.0]);
        assert_eq!(sel.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn concat() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let h = a.hconcat(&b);
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.row(1), &[2.0, 4.0]);
        let v = a.vconcat(&b);
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v.get(3, 0), 4.0);
    }

    #[test]
    fn truncate_cols_keeps_prefix() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.truncate_cols(2);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.row(1), &[4.0, 5.0]);
    }

    #[test]
    #[should_panic]
    fn from_vec_shape_checked() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
