//! Arithmetic kernels on [`Matrix`].
//!
//! The three matrix products share one cache-blocked, register-tiled
//! kernel in the BLIS style: the right-hand operand is packed into
//! contiguous [`NR`]-wide column panels, and an [`MR`]`x`[`NR`] register
//! micro-kernel accumulates each output tile over the **full** shared
//! dimension. Blocking happens only over output rows and columns, so
//! every output element is still accumulated over `p` ascending — the
//! exact floating-point operation sequence of the naive triple loop —
//! which keeps blocked results **bit-identical** to the retained
//! reference kernels ([`matmul_reference`] and friends).
//!
//! Large products additionally shard output rows across the
//! [`crate::runtime`] worker pool (above [`PAR_FLOP_CUTOFF`]); the RHS
//! is packed once and shared read-only by all shards, so parallel
//! results are bit-identical to serial at any thread count.

use crate::matrix::Matrix;
use crate::runtime;
use std::ops::Range;

/// Multiply-add count below which a matrix product stays serial: shard
/// setup costs more than it saves on tiny products.
pub const PAR_FLOP_CUTOFF: usize = 1 << 17;

/// Minimum output rows per shard for parallel products.
const MIN_ROWS_PER_SHARD: usize = 8;

/// Output rows per register tile of the blocked micro-kernel.
pub const MR: usize = 4;

/// Output columns per register tile of the blocked micro-kernel. One
/// packed RHS panel is `NR` columns wide.
pub const NR: usize = 8;

/// Packs `b` (`k x n`) into `NR`-wide column panels: panel `t` holds
/// columns `t*NR .. t*NR+NR`, laid out row-major over `p` with
/// zero-padded tail columns, i.e. `packed[t*k*NR + p*NR + l] =
/// b[p][t*NR + l]`. Padding lanes are multiplied but never stored, so
/// they cannot affect results.
fn pack_rhs(b: &Matrix) -> Vec<f32> {
    let (k, n) = b.shape();
    let panels = n.div_ceil(NR.max(1)).max(1);
    let mut packed = vec![0.0f32; panels * k * NR];
    for t in 0..panels {
        let j0 = t * NR;
        let nv = NR.min(n.saturating_sub(j0));
        let base = t * k * NR;
        for p in 0..k {
            let dst = base + p * NR;
            packed[dst..dst + nv].copy_from_slice(&b.row(p)[j0..j0 + nv]);
        }
    }
    packed
}

/// Packs `bᵀ` into the same panel layout as [`pack_rhs`]: the logical
/// RHS has shared dimension `k = b.cols()` and output columns
/// `n = b.rows()`, so `packed[t*k*NR + p*NR + l] = b[t*NR + l][p]`.
fn pack_rhs_transposed(b: &Matrix) -> Vec<f32> {
    let (n, k) = b.shape();
    let panels = n.div_ceil(NR.max(1)).max(1);
    let mut packed = vec![0.0f32; panels * k * NR];
    for t in 0..panels {
        let j0 = t * NR;
        let nv = NR.min(n.saturating_sub(j0));
        let base = t * k * NR;
        for l in 0..nv {
            let src = b.row(j0 + l);
            for (p, &v) in src.iter().enumerate() {
                packed[base + p * NR + l] = v;
            }
        }
    }
    packed
}

/// The `MR x NR` register micro-kernel: for each LHS row slice `m`,
/// `acc[m][l] += Σ_p lhs[m][p] * panel[p*NR + l]` with `p` ascending —
/// the same per-element accumulation order as the naive loops, which is
/// what keeps the blocked kernels bit-identical to the references.
///
/// Dispatches to an AVX2-compiled copy of the same body when the CPU
/// supports it. The body is identical scalar code — AVX2 only widens
/// the auto-vectorised lanes, and rustc never contracts `mul` + `add`
/// into FMA, so every path produces bit-identical results.
fn microkernel(lhs: &[&[f32]], panel: &[f32], k: usize, acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by runtime CPU feature detection; the function
        // body contains no intrinsics, only code compiled for AVX2.
        unsafe { microkernel_avx2(lhs, panel, k, acc) };
        return;
    }
    microkernel_body(lhs, panel, k, acc);
}

/// AVX2-compiled instantiation of [`microkernel_body`].
// SAFETY: callable only when the CPU supports AVX2 — `microkernel` is
// the sole caller and gates on `is_x86_feature_detected!("avx2")`. The
// body is plain safe Rust; the attribute only changes codegen.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn microkernel_avx2(lhs: &[&[f32]], panel: &[f32], k: usize, acc: &mut [[f32; NR]; MR]) {
    microkernel_body(lhs, panel, k, acc);
}

#[inline(always)]
fn microkernel_body(lhs: &[&[f32]], panel: &[f32], k: usize, acc: &mut [[f32; NR]; MR]) {
    if lhs.len() == MR {
        // Hot full-tile case: a fixed-size row array lets LLVM keep the
        // whole accumulator tile in registers and vectorise the NR lanes.
        // The shared dimension is unrolled 4x to amortise loop overhead;
        // each output element still receives its adds in ascending `p`.
        let mut rows: [&[f32]; MR] = [&[]; MR];
        for (slot, row) in rows.iter_mut().zip(lhs) {
            *slot = &row[..k];
        }
        let mut p = 0;
        while p + 4 <= k {
            let bp = &panel[p * NR..(p + 4) * NR];
            for (accm, row) in acc.iter_mut().zip(rows.iter()) {
                let a = [row[p], row[p + 1], row[p + 2], row[p + 3]];
                for (l, o) in accm.iter_mut().enumerate() {
                    let mut v = *o;
                    v += a[0] * bp[l];
                    v += a[1] * bp[NR + l];
                    v += a[2] * bp[2 * NR + l];
                    v += a[3] * bp[3 * NR + l];
                    *o = v;
                }
            }
            p += 4;
        }
        while p < k {
            let bp = &panel[p * NR..(p + 1) * NR];
            for (accm, row) in acc.iter_mut().zip(rows.iter()) {
                let a = row[p];
                for (o, &b) in accm.iter_mut().zip(bp) {
                    *o += a * b;
                }
            }
            p += 1;
        }
    } else {
        for p in 0..k {
            let bp = &panel[p * NR..(p + 1) * NR];
            for (accm, row) in acc.iter_mut().zip(lhs) {
                let a = row[p];
                for (o, &b) in accm.iter_mut().zip(bp) {
                    *o += a * b;
                }
            }
        }
    }
}

/// Runs the micro-kernel over every column panel for one block of
/// `lhs.len()` output rows, writing the `lhs.len() x n` block `out`.
fn blocked_panel_rows(lhs: &[&[f32]], packed: &[f32], k: usize, n: usize, out: &mut [f32]) {
    let mr = lhs.len();
    let panels = n.div_ceil(NR.max(1));
    for t in 0..panels {
        let j0 = t * NR;
        let nv = NR.min(n - j0);
        let panel = &packed[t * k * NR..(t + 1) * k * NR];
        let mut acc = [[0.0f32; NR]; MR];
        microkernel(lhs, panel, k, &mut acc);
        for (m, accm) in acc.iter().enumerate().take(mr) {
            out[m * n + j0..m * n + j0 + nv].copy_from_slice(&accm[..nv]);
        }
    }
}

/// Blocked kernel over output rows `rows` for products whose LHS rows
/// are rows of `a` (`matmul`, `matmul_t`); writes the disjoint row
/// block `out`.
fn blocked_rows(a: &Matrix, packed: &[f32], n: usize, rows: Range<usize>, out: &mut [f32]) {
    let k = a.cols();
    let mut i0 = rows.start;
    while i0 < rows.end {
        let mr = MR.min(rows.end - i0);
        let mut lhs: [&[f32]; MR] = [&[]; MR];
        for (m, slot) in lhs.iter_mut().enumerate().take(mr) {
            *slot = a.row(i0 + m);
        }
        let local0 = i0 - rows.start;
        blocked_panel_rows(
            &lhs[..mr],
            packed,
            k,
            n,
            &mut out[local0 * n..(local0 + mr) * n],
        );
        i0 += mr;
    }
}

/// Blocked kernel over output rows `rows` for `t_matmul`, whose LHS
/// rows are **columns** of `a`: each row block gathers its `MR` columns
/// into a contiguous scratch buffer, then reuses the shared micro-kernel.
fn blocked_rows_transposed(
    a: &Matrix,
    packed: &[f32],
    n: usize,
    rows: Range<usize>,
    out: &mut [f32],
) {
    let k = a.rows();
    let mut colbuf = vec![0.0f32; MR * k];
    let mut i0 = rows.start;
    while i0 < rows.end {
        let mr = MR.min(rows.end - i0);
        for p in 0..k {
            let a_row = a.row(p);
            for m in 0..mr {
                colbuf[m * k + p] = a_row[i0 + m];
            }
        }
        let mut lhs: [&[f32]; MR] = [&[]; MR];
        for (m, slot) in lhs.iter_mut().enumerate().take(mr) {
            *slot = &colbuf[m * k..(m + 1) * k];
        }
        let local0 = i0 - rows.start;
        blocked_panel_rows(
            &lhs[..mr],
            packed,
            k,
            n,
            &mut out[local0 * n..(local0 + mr) * n],
        );
        i0 += mr;
    }
}

/// Naive triple-loop `a * b`, accumulating over `p` ascending. Retained
/// as the ground-truth reference the blocked kernel is tested against.
///
/// # Panics
/// Panics on incompatible shapes (`a.cols() != b.rows()`).
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            for (o, &v) in out_row.iter_mut().zip(b.row(p)) {
                *o += a_ip * v;
            }
        }
    }
    out
}

/// Naive `a * bᵀ` reference (dot products over `p` ascending).
///
/// # Panics
/// Panics on incompatible shapes (`a.cols() != b.cols()`).
pub fn matmul_t_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_t shape mismatch");
    let (m, _) = a.shape();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for j in 0..n {
            out.set(i, j, crate::vector::dot(a_row, b.row(j)));
        }
    }
    out
}

/// Naive `aᵀ * b` reference (accumulation over `p` ascending).
///
/// # Panics
/// Panics on incompatible shapes (`a.rows() != b.rows()`).
pub fn t_matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "t_matmul shape mismatch");
    let (r, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for p in 0..r {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = out.row_mut(i);
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

impl Matrix {
    /// Matrix product `self * other` via the blocked kernel.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), other.cols());
        self.matmul_into(other, &mut out);
        out
    }

    /// Computes `self * other` into `out`, overwriting every element.
    /// `out` does not need to be zeroed. Taking the destination lets
    /// callers (the autodiff tape) reuse pooled buffers.
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k) = self.shape();
        let n = other.cols();
        assert_eq!(out.shape(), (m, n), "matmul output shape mismatch");
        let t0 = crate::obs::matmul_start();
        let packed = pack_rhs(other);
        let min_rows = if m * k * n >= PAR_FLOP_CUTOFF {
            MIN_ROWS_PER_SHARD
        } else {
            m.max(1)
        };
        runtime::for_each_row_shard_mut(out.as_mut_slice(), m, n, min_rows, |rows, chunk| {
            blocked_rows(self, &packed, n, rows, chunk);
        });
        let parallel = t0.is_some() && runtime::shard_count(m, min_rows) > 1;
        crate::obs::matmul_finish(crate::obs::MATMUL, m * k * n, parallel, t0);
    }

    /// `selfᵀ * other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols(), other.cols());
        self.t_matmul_into(other, &mut out);
        out
    }

    /// Computes `selfᵀ * other` into `out` (see [`Matrix::matmul_into`]).
    ///
    /// # Panics
    /// Panics on incompatible input or output shapes.
    pub fn t_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows(),
            other.rows(),
            "t_matmul shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let (r, m) = self.shape();
        let n = other.cols();
        assert_eq!(out.shape(), (m, n), "t_matmul output shape mismatch");
        let t0 = crate::obs::matmul_start();
        let packed = pack_rhs(other);
        let min_rows = if m * r * n >= PAR_FLOP_CUTOFF {
            MIN_ROWS_PER_SHARD
        } else {
            m.max(1)
        };
        runtime::for_each_row_shard_mut(out.as_mut_slice(), m, n, min_rows, |rows, chunk| {
            blocked_rows_transposed(self, &packed, n, rows, chunk);
        });
        let parallel = t0.is_some() && runtime::shard_count(m, min_rows) > 1;
        crate::obs::matmul_finish(crate::obs::T_MATMUL, m * r * n, parallel, t0);
    }

    /// `self * otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), other.rows());
        self.matmul_t_into(other, &mut out);
        out
    }

    /// Computes `self * otherᵀ` into `out` (see [`Matrix::matmul_into`]).
    ///
    /// # Panics
    /// Panics on incompatible input or output shapes.
    pub fn matmul_t_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_t shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (m, k) = self.shape();
        let n = other.rows();
        assert_eq!(out.shape(), (m, n), "matmul_t output shape mismatch");
        let t0 = crate::obs::matmul_start();
        let packed = pack_rhs_transposed(other);
        let min_rows = if m * k * n >= PAR_FLOP_CUTOFF {
            MIN_ROWS_PER_SHARD
        } else {
            m.max(1)
        };
        runtime::for_each_row_shard_mut(out.as_mut_slice(), m, n, min_rows, |rows, chunk| {
            blocked_rows(self, &packed, n, rows, chunk);
        });
        let parallel = t0.is_some() && runtime::shard_count(m, min_rows) > 1;
        crate::obs::matmul_finish(crate::obs::MATMUL_T, m * k * n, parallel, t0);
    }

    /// Element-wise sum; shapes must match.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference; shapes must match.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product; shapes must match.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise binary map over two same-shaped matrices.
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice().iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Element-wise unary map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.as_slice().iter().map(|&a| f(a)).collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|a| a * s)
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn axpy_inplace(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Adds a row vector to every row (broadcast).
    ///
    /// # Panics
    /// Panics when `row.len()` differs from the column count.
    pub fn add_row_broadcast(&self, row: &[f32]) -> Matrix {
        assert_eq!(self.cols(), row.len(), "broadcast row length mismatch");
        let mut out = self.clone();
        for i in 0..out.rows() {
            for (o, &b) in out.row_mut(i).iter_mut().zip(row.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f32 {
        self.as_slice().iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements; 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.as_slice().is_empty() {
            0.0
        } else {
            self.sum() / self.as_slice().len() as f32
        }
    }

    /// Per-column mean, as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f32; self.cols()];
        if self.rows() == 0 {
            return means;
        }
        for i in 0..self.rows() {
            for (m, &v) in means.iter_mut().zip(self.row(i)) {
                *m += v;
            }
        }
        let inv = 1.0 / self.rows() as f32;
        for m in &mut means {
            *m *= inv;
        }
        means
    }

    /// L2-normalises every row in place; zero rows are left untouched.
    pub fn l2_normalize_rows(&mut self) {
        for i in 0..self.rows() {
            let row = self.row_mut(i);
            let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
            if norm > f32::EPSILON {
                let inv = 1.0 / norm;
                for v in row {
                    *v *= inv;
                }
            }
        }
    }

    /// Maximum absolute element difference vs `other`.
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f32, b: f32, c: f32, d: f32) -> Matrix {
        Matrix::from_rows(&[&[a, b], &[c, d]])
    }

    #[test]
    fn matmul_basic() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b);
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_identity() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_products_agree_with_explicit_transpose() {
        let mut rng = crate::XorShiftRng::new(42);
        let a = Matrix::gaussian(4, 3, &mut rng);
        let b = Matrix::gaussian(4, 5, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn matmul_t_agrees() {
        let mut rng = crate::XorShiftRng::new(1);
        let a = Matrix::gaussian(3, 4, &mut rng);
        let b = Matrix::gaussian(5, 4, &mut rng);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn elementwise_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(a.add(&b), Matrix::filled(2, 2, 5.0));
        assert_eq!(a.sub(&a), Matrix::zeros(2, 2));
        assert_eq!(a.hadamard(&b), m22(4.0, 6.0, 6.0, 4.0));
        assert_eq!(a.scale(2.0), m22(2.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn axpy_and_broadcast() {
        let mut a = m22(1.0, 1.0, 1.0, 1.0);
        let b = m22(1.0, 2.0, 3.0, 4.0);
        a.axpy_inplace(0.5, &b);
        assert_eq!(a, m22(1.5, 2.0, 2.5, 3.0));
        let c = b.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(c, m22(11.0, 22.0, 13.0, 24.0));
    }

    #[test]
    fn reductions() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.col_means(), vec![2.0, 3.0]);
        assert!((a.fro_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        a.l2_normalize_rows();
        assert!((a.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((a.row(0)[1] - 0.8).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn parallel_products_are_bit_identical_to_serial() {
        let _guard = crate::runtime::OVERRIDE_LOCK.lock().unwrap();
        let mut rng = crate::XorShiftRng::new(0xBEEF);
        // Shapes straddling the parallel cutoff, including odd sizes that
        // don't divide evenly into shards.
        let shapes = [
            (3, 5, 4),
            (17, 33, 9),
            (64, 64, 64),
            (130, 70, 110),
            (256, 96, 256),
        ];
        for &(m, k, n) in &shapes {
            let a = Matrix::gaussian(m, k, &mut rng);
            let b = Matrix::gaussian(k, n, &mut rng);
            let bt = b.transpose();
            let at = a.transpose();
            crate::runtime::set_threads(1);
            let serial = (a.matmul(&b), a.matmul_t(&bt), at.t_matmul(&b));
            crate::runtime::set_threads(4);
            let parallel = (a.matmul(&b), a.matmul_t(&bt), at.t_matmul(&b));
            crate::runtime::set_threads(0);
            assert_eq!(
                serial.0.as_slice(),
                parallel.0.as_slice(),
                "matmul {m}x{k}x{n}"
            );
            assert_eq!(
                serial.1.as_slice(),
                parallel.1.as_slice(),
                "matmul_t {m}x{k}x{n}"
            );
            assert_eq!(
                serial.2.as_slice(),
                parallel.2.as_slice(),
                "t_matmul {m}x{k}x{n}"
            );
        }
    }
}
