//! Arithmetic kernels on [`Matrix`].
//!
//! The three matrix products are data-parallel above
//! [`PAR_FLOP_CUTOFF`]: output rows are split into contiguous shards
//! (see [`crate::runtime`]) and each worker writes its disjoint row
//! block. Every kernel accumulates each output element in the same
//! order as the serial loop, so parallel results are **bit-identical**
//! to serial at any thread count.

use crate::matrix::Matrix;
use crate::runtime;

/// Multiply-add count below which a matrix product stays serial: shard
/// setup costs more than it saves on tiny products.
pub const PAR_FLOP_CUTOFF: usize = 1 << 17;

/// Minimum output rows per shard for parallel products.
const MIN_ROWS_PER_SHARD: usize = 8;

/// `ikj` matmul kernel over output rows `rows`, writing into the
/// disjoint row block `out` (length `rows.len() * other.cols()`).
fn matmul_rows(a: &Matrix, b: &Matrix, rows: std::ops::Range<usize>, out: &mut [f32]) {
    let k = a.cols();
    let n = b.cols();
    for (local, i) in rows.enumerate() {
        let a_row = a.row(i);
        let out_row = &mut out[local * n..(local + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (o, &v) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * v;
            }
        }
    }
}

/// `selfᵀ * other` kernel over output rows `rows` (columns `i` of
/// `a`); accumulation runs over `p` ascending, like the serial kernel.
fn t_matmul_rows(a: &Matrix, b: &Matrix, rows: std::ops::Range<usize>, out: &mut [f32]) {
    let r = a.rows();
    let n = b.cols();
    for (local, i) in rows.enumerate() {
        let out_row = &mut out[local * n..(local + 1) * n];
        for p in 0..r {
            let a_pi = a.row(p)[i];
            if a_pi == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (o, &v) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_pi * v;
            }
        }
    }
}

/// `self * otherᵀ` kernel over output rows `rows`.
fn matmul_t_rows(a: &Matrix, b: &Matrix, rows: std::ops::Range<usize>, out: &mut [f32]) {
    let n = b.rows();
    for (local, i) in rows.enumerate() {
        let a_row = a.row(i);
        let out_row = &mut out[local * n..(local + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate().take(n) {
            *o = crate::vector::dot(a_row, b.row(j));
        }
    }
}

impl Matrix {
    /// Matrix product `self * other`.
    ///
    /// Uses `ikj` loop order: the innermost loop walks contiguous rows of
    /// both the output and `other`, which is the cache-friendly layout for
    /// row-major storage and lets LLVM vectorise the fused multiply-add.
    /// Large products shard output rows across the worker pool;
    /// results are bit-identical to the serial path.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k) = self.shape();
        let n = other.cols();
        let mut out = Matrix::zeros(m, n);
        let min_rows = if m * k * n >= PAR_FLOP_CUTOFF {
            MIN_ROWS_PER_SHARD
        } else {
            m.max(1)
        };
        runtime::for_each_row_shard_mut(out.as_mut_slice(), m, n, min_rows, |rows, chunk| {
            matmul_rows(self, other, rows, chunk);
        });
        out
    }

    /// `selfᵀ * other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "t_matmul shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let (r, m) = self.shape();
        let n = other.cols();
        let mut out = Matrix::zeros(m, n);
        if m * r * n >= PAR_FLOP_CUTOFF && runtime::shard_count(m, MIN_ROWS_PER_SHARD) > 1 {
            runtime::for_each_row_shard_mut(
                out.as_mut_slice(),
                m,
                n,
                MIN_ROWS_PER_SHARD,
                |rows, chunk| t_matmul_rows(self, other, rows, chunk),
            );
            return out;
        }
        // Serial path keeps `p` outer so both `self` and `other` rows are
        // walked contiguously.
        for p in 0..r {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_t shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let (m, k) = self.shape();
        let n = other.rows();
        let mut out = Matrix::zeros(m, n);
        let min_rows = if m * k * n >= PAR_FLOP_CUTOFF {
            MIN_ROWS_PER_SHARD
        } else {
            m.max(1)
        };
        runtime::for_each_row_shard_mut(out.as_mut_slice(), m, n, min_rows, |rows, chunk| {
            matmul_t_rows(self, other, rows, chunk);
        });
        out
    }

    /// Element-wise sum; shapes must match.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference; shapes must match.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product; shapes must match.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise binary map over two same-shaped matrices.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice().iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Element-wise unary map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.as_slice().iter().map(|&a| f(a)).collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|a| a * s)
    }

    /// In-place `self += alpha * other`.
    pub fn axpy_inplace(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Adds a row vector to every row (broadcast).
    pub fn add_row_broadcast(&self, row: &[f32]) -> Matrix {
        assert_eq!(self.cols(), row.len(), "broadcast row length mismatch");
        let mut out = self.clone();
        for i in 0..out.rows() {
            for (o, &b) in out.row_mut(i).iter_mut().zip(row.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f32 {
        self.as_slice().iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements; 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.as_slice().is_empty() {
            0.0
        } else {
            self.sum() / self.as_slice().len() as f32
        }
    }

    /// Per-column mean, as a vector of length `cols`.
    pub fn col_means(&self) -> Vec<f32> {
        let mut means = vec![0.0f32; self.cols()];
        if self.rows() == 0 {
            return means;
        }
        for i in 0..self.rows() {
            for (m, &v) in means.iter_mut().zip(self.row(i)) {
                *m += v;
            }
        }
        let inv = 1.0 / self.rows() as f32;
        for m in &mut means {
            *m *= inv;
        }
        means
    }

    /// L2-normalises every row in place; zero rows are left untouched.
    pub fn l2_normalize_rows(&mut self) {
        for i in 0..self.rows() {
            let row = self.row_mut(i);
            let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
            if norm > f32::EPSILON {
                let inv = 1.0 / norm;
                for v in row {
                    *v *= inv;
                }
            }
        }
    }

    /// Maximum absolute element difference vs `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f32, b: f32, c: f32, d: f32) -> Matrix {
        Matrix::from_rows(&[&[a, b], &[c, d]])
    }

    #[test]
    fn matmul_basic() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b);
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_identity() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn transpose_products_agree_with_explicit_transpose() {
        let mut rng = crate::XorShiftRng::new(42);
        let a = Matrix::gaussian(4, 3, &mut rng);
        let b = Matrix::gaussian(4, 5, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn matmul_t_agrees() {
        let mut rng = crate::XorShiftRng::new(1);
        let a = Matrix::gaussian(3, 4, &mut rng);
        let b = Matrix::gaussian(5, 4, &mut rng);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn elementwise_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(a.add(&b), Matrix::filled(2, 2, 5.0));
        assert_eq!(a.sub(&a), Matrix::zeros(2, 2));
        assert_eq!(a.hadamard(&b), m22(4.0, 6.0, 6.0, 4.0));
        assert_eq!(a.scale(2.0), m22(2.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn axpy_and_broadcast() {
        let mut a = m22(1.0, 1.0, 1.0, 1.0);
        let b = m22(1.0, 2.0, 3.0, 4.0);
        a.axpy_inplace(0.5, &b);
        assert_eq!(a, m22(1.5, 2.0, 2.5, 3.0));
        let c = b.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(c, m22(11.0, 22.0, 13.0, 24.0));
    }

    #[test]
    fn reductions() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.col_means(), vec![2.0, 3.0]);
        assert!((a.fro_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        a.l2_normalize_rows();
        assert!((a.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((a.row(0)[1] - 0.8).abs() < 1e-6);
        assert_eq!(a.row(1), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn parallel_products_are_bit_identical_to_serial() {
        let _guard = crate::runtime::OVERRIDE_LOCK.lock().unwrap();
        let mut rng = crate::XorShiftRng::new(0xBEEF);
        // Shapes straddling the parallel cutoff, including odd sizes that
        // don't divide evenly into shards.
        let shapes = [
            (3, 5, 4),
            (17, 33, 9),
            (64, 64, 64),
            (130, 70, 110),
            (256, 96, 256),
        ];
        for &(m, k, n) in &shapes {
            let a = Matrix::gaussian(m, k, &mut rng);
            let b = Matrix::gaussian(k, n, &mut rng);
            let bt = b.transpose();
            let at = a.transpose();
            crate::runtime::set_threads(1);
            let serial = (a.matmul(&b), a.matmul_t(&bt), at.t_matmul(&b));
            crate::runtime::set_threads(4);
            let parallel = (a.matmul(&b), a.matmul_t(&bt), at.t_matmul(&b));
            crate::runtime::set_threads(0);
            assert_eq!(
                serial.0.as_slice(),
                parallel.0.as_slice(),
                "matmul {m}x{k}x{n}"
            );
            assert_eq!(
                serial.1.as_slice(),
                parallel.1.as_slice(),
                "matmul_t {m}x{k}x{n}"
            );
            assert_eq!(
                serial.2.as_slice(),
                parallel.2.as_slice(),
                "t_matmul {m}x{k}x{n}"
            );
        }
    }
}
