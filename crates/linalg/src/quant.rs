//! Int8 symmetric quantization and the packed-panel int8 GEMM.
//!
//! The quantized inference fast lane (DESIGN.md §13) stores matcher
//! weights as `i8` with per-row scales and runs the Score-stage product
//! in integer arithmetic: `i8 x i8 -> i32` accumulation is **exact**, so
//! unlike the f32 kernels there is nothing to keep bit-stable across
//! blocking or dispatch — every execution strategy produces the same
//! `i32` sums, and the only float work is the final per-element rescale.
//!
//! The GEMM mirrors the structure of [`crate::ops`]: the RHS is packed
//! into 16-wide panels (quad-interleaved along the shared dimension,
//! see [`PackedI8Rhs`]), an [`MR`]`x16` register micro-kernel
//! accumulates over the full shared dimension, runtime feature
//! detection picks the best of three tiers — AVX-512 VNNI (`vpdpbusd`,
//! 64 MACs per instruction via an unsigned-activation zero-point
//! shift), AVX2 (`vpmaddwd`), or the scalar body — and large products
//! shard output rows across the [`crate::runtime`] worker pool.
//! Weights that multiply many batches are packed once via
//! [`PackedI8Rhs::pack`] + [`i8_matmul_t_packed`], and the per-batch
//! activation quantization is itself AVX-512-vectorized.

use crate::matrix::Matrix;
use crate::ops::{MR, PAR_FLOP_CUTOFF};
use crate::runtime;
use std::ops::Range;

/// Minimum output rows per shard for parallel int8 products (matches
/// the f32 kernels in `ops.rs`).
const MIN_ROWS_PER_SHARD: usize = 8;

/// Maximum quantized magnitude. Symmetric range `[-127, 127]` keeps
/// `-q` representable for every `q`, so negation never saturates.
pub const Q_MAX: f32 = 127.0;

/// A row-major `i8` matrix with one symmetric scale per row:
/// `f32_value ≈ data[r * cols + c] as f32 * scales[r]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

/// Symmetric scale covering `max_abs`: the largest magnitude maps to
/// [`Q_MAX`]. Degenerate inputs (all-zero, empty, or non-finite ranges)
/// fall back to scale `1.0` so dequantization stays well-defined.
pub fn scale_for_max_abs(max_abs: f32) -> f32 {
    if max_abs.is_finite() && max_abs > 0.0 {
        max_abs / Q_MAX
    } else {
        1.0
    }
}

/// Largest finite absolute value in `m` (0.0 when empty or all-NaN) —
/// the activation-range statistic used for per-layer calibration.
pub fn max_abs(m: &Matrix) -> f32 {
    m.as_slice()
        .iter()
        .map(|v| v.abs())
        .filter(|v| v.is_finite())
        .fold(0.0f32, f32::max)
}

#[inline]
fn quantize_value(v: f32, inv_scale: f32) -> i8 {
    // NaN fails both comparisons and maps to 0; the clamp makes the
    // saturating `as` cast explicit.
    let q = (v * inv_scale).round();
    if q >= Q_MAX {
        127
    } else if q <= -Q_MAX {
        -127
    } else {
        q as i8
    }
}

/// Applies [`quantize_value`] to a slice, taking the AVX-512 lane when
/// the CPU has it. Element-identical to the scalar loop for every
/// input, including NaN (→ 0), infinities (→ ±127), and exact `.5`
/// boundaries (`f32::round` rounds half away from zero; the vector
/// path emulates that with a `copysign(0.5)` add before truncation).
///
/// # Panics
/// If `src` and `out` lengths differ. The AVX-512 lane derives its
/// store offsets from `src.len()`, so the check must hold in release
/// builds, not just under `debug_assertions`.
fn quantize_slice(src: &[f32], inv_scale: f32, out: &mut [i8]) {
    assert_eq!(
        src.len(),
        out.len(),
        "quantize_slice: src/out length mismatch"
    );
    #[allow(unused_mut)]
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: guarded by runtime CPU feature detection; the callee
        // reads/writes only full 16-lane chunks within `src`/`out` and
        // reports how many elements it covered.
        done = unsafe { quantize_slice_avx512(src, inv_scale, out) };
    }
    for (o, &v) in out[done..].iter_mut().zip(&src[done..]) {
        *o = quantize_value(v, inv_scale);
    }
}

/// AVX-512 instantiation of [`quantize_slice`] over the largest
/// 16-lane prefix; returns how many elements were quantized. Per
/// chunk: multiply by the inverse scale, add `copysign(0.5, v)` and
/// truncate (= round half away from zero, exactly `f32::round` — the
/// 0.5 add is exact below the clamp range because `v` and `v + 0.5`
/// share a binade step), clamp, and saturating-narrow to `i8`. NaN
/// lanes are zeroed through the ordered-compare mask, matching the
/// scalar path's NaN → 0.
// SAFETY: callable only when the CPU supports AVX-512F —
// `quantize_slice` is the sole caller and gates on
// `is_x86_feature_detected!("avx512f")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn quantize_slice_avx512(src: &[f32], inv_scale: f32, out: &mut [i8]) -> usize {
    use std::arch::x86_64::*;
    const LANES: usize = 16;
    let n = src.len() / LANES * LANES;
    // SAFETY: every load reads 16 f32 at `i <= n - 16` and every store
    // writes 16 bytes at the same offset; `out.len() == src.len() >= n`.
    unsafe {
        let inv = _mm512_set1_ps(inv_scale);
        let half = _mm512_set1_ps(0.5);
        let signbit = _mm512_set1_ps(-0.0);
        // Float clamp wide enough to never touch in-range values but
        // keep ±inf finite before the int conversion.
        let lim = _mm512_set1_ps(130.0);
        let neg_lim = _mm512_set1_ps(-130.0);
        let qmax = _mm512_set1_epi32(127);
        let qmin = _mm512_set1_epi32(-127);
        let mut i = 0;
        while i < n {
            let v = _mm512_mul_ps(_mm512_loadu_ps(src.as_ptr().add(i)), inv);
            let ord = _mm512_cmp_ps_mask::<_CMP_ORD_Q>(v, v);
            let magic = _mm512_or_ps(_mm512_and_ps(v, signbit), half);
            let r = _mm512_min_ps(_mm512_max_ps(_mm512_add_ps(v, magic), neg_lim), lim);
            let q = _mm512_maskz_cvttps_epi32(ord, r);
            let q = _mm512_min_epi32(_mm512_max_epi32(q, qmin), qmax);
            _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), _mm512_cvtsepi32_epi8(q));
            i += LANES;
        }
    }
    n
}

impl QuantizedMatrix {
    /// Quantizes `m` with one symmetric scale per **row** (the right
    /// granularity for weight matrices stored as `out x in`: each output
    /// channel gets its own scale).
    pub fn quantize_per_row(m: &Matrix) -> QuantizedMatrix {
        let (rows, cols) = m.shape();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let s = scale_for_max_abs(
                row.iter()
                    .map(|v| v.abs())
                    .filter(|v| v.is_finite())
                    .fold(0.0, f32::max),
            );
            let inv = 1.0 / s;
            data.extend(row.iter().map(|&v| quantize_value(v, inv)));
            scales.push(s);
        }
        QuantizedMatrix {
            rows,
            cols,
            data,
            scales,
        }
    }

    /// Quantizes `m` with a single shared scale for every row — used for
    /// activations, whose scale comes from offline calibration rather
    /// than the tensor being quantized. Non-finite or non-positive
    /// scales fall back to `1.0`. This is the per-batch cost of the
    /// int8 fast lane, so it is AVX-512-vectorized where available
    /// (element-identical to [`quantize_value`] by construction).
    pub fn quantize_uniform(m: &Matrix, scale: f32) -> QuantizedMatrix {
        let (rows, cols) = m.shape();
        let s = if scale.is_finite() && scale > 0.0 {
            scale
        } else {
            1.0
        };
        let inv = 1.0 / s;
        let mut data = vec![0i8; rows * cols];
        quantize_slice(m.as_slice(), inv, &mut data);
        QuantizedMatrix {
            rows,
            cols,
            data,
            scales: vec![s; rows],
        }
    }

    /// Reconstructs the f32 matrix `data[r][c] * scales[r]`.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            for (o, &q) in out.row_mut(r).iter_mut().zip(self.row(r)) {
                *o = q as f32 * s;
            }
        }
        out
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One quantized row.
    ///
    /// # Panics
    /// Panics when `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Per-row symmetric scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
}

/// Panel width of the int8 GEMM: output columns per packed panel.
/// Wider than the f32 [`NR`] because the AVX-512 VNNI micro-kernel
/// keeps sixteen `i32` accumulator lanes per register.
const NR_I8: usize = 16;

/// Shared-dim positions interleaved per packed block — `vpdpbusd`
/// consumes activation/weight bytes in groups of four.
const QUAD: usize = 4;

/// A weight matrix packed once for repeated int8 products:
/// [`NR_I8`]-wide column panels with the shared dimension interleaved
/// in **quads**, so one 64-byte block is exactly the `vpdpbusd` operand
/// for sixteen columns — `packed[t*stride + (p/4)*4*NR_I8 + 4*l + (p%4)]
/// = w[t*NR_I8 + l][p]` with `stride = ceil(k/4)*4*NR_I8`. Ragged `k`
/// and ragged panels are zero-padded; zeros contribute nothing to the
/// integer sums. Build one with [`PackedI8Rhs::pack`] when the same
/// weights multiply many activation batches (the quantized matcher
/// packs each layer once at calibration).
#[derive(Debug, Clone)]
pub struct PackedI8Rhs {
    packed: Vec<i8>,
    /// Output columns (`w.rows()`: one output channel per weight row).
    n: usize,
    /// Shared dimension (`w.cols()`).
    k: usize,
    /// Per-output-channel scales, copied from the quantized weights.
    scales: Vec<f32>,
    /// `128 * Σ_p w[col][p]` per panel-padded output column: the
    /// zero-point correction the VNNI kernel subtracts after running
    /// activations as `u8 = i8 + 128` (padding columns stay 0).
    colsum128: Vec<i32>,
}

impl PackedI8Rhs {
    /// Packs quantized weight rows (`n x k`, one output channel per
    /// row) into panel form.
    pub fn pack(w: &QuantizedMatrix) -> PackedI8Rhs {
        let (n, k) = (w.rows, w.cols);
        let panels = n.div_ceil(NR_I8).max(1);
        let stride = k.div_ceil(QUAD) * QUAD * NR_I8;
        let mut packed = vec![0i8; panels * stride];
        let mut colsum128 = vec![0i32; panels * NR_I8];
        for t in 0..panels {
            let j0 = t * NR_I8;
            let nv = NR_I8.min(n.saturating_sub(j0));
            let base = t * stride;
            for l in 0..nv {
                let src = w.row(j0 + l);
                let mut sum = 0i32;
                for (p, &v) in src.iter().enumerate() {
                    packed[base + (p / QUAD) * QUAD * NR_I8 + QUAD * l + (p % QUAD)] = v;
                    sum += v as i32;
                }
                colsum128[j0 + l] = sum * 128;
            }
        }
        PackedI8Rhs {
            packed,
            n,
            k,
            scales: w.scales.clone(),
            colsum128,
        }
    }

    /// Output columns of the packed product.
    pub fn out_cols(&self) -> usize {
        self.n
    }

    /// Shared dimension the activations must match.
    pub fn shared_dim(&self) -> usize {
        self.k
    }
}

/// The `MR x NR_I8` integer micro-kernel over one quad-interleaved
/// panel: `acc[m][l] += Σ_p staged[m][p] as i32 * w[col l][p] as i32`.
/// `staged` holds `MR` zero-padded activation rows of `kp` bytes each
/// (`kp` a multiple of [`QUAD`]); `mr` rows are live. Integer
/// accumulation is exact, so the order of additions is irrelevant for
/// correctness — the SIMD tiers below exist purely for speed and are
/// bit-identical to the scalar body by construction.
///
/// # Panics
/// If any slice is shorter than the `MR`/`NR_I8`/`kp` layout contract
/// requires, or `kp` is not a multiple of [`QUAD`]. The unsafe SIMD
/// tiers justify their raw loads against exactly these bounds, so the
/// checks are enforced at this dispatch boundary in release builds
/// (the tiers themselves keep `debug_assert!` restatements only).
fn i8_microkernel(
    staged: &[i8],
    kp: usize,
    mr: usize,
    panel: &[i8],
    colsum128: &[i32],
    acc: &mut [[i32; NR_I8]; MR],
) {
    assert!(
        panel.len() >= kp * NR_I8,
        "i8_microkernel: panel must hold kp x NR_I8 quad-interleaved bytes"
    );
    assert!(
        staged.len() >= MR * kp && kp.is_multiple_of(QUAD),
        "i8_microkernel: staged must hold MR zero-padded rows of quad-padded kp bytes"
    );
    assert!(
        colsum128.len() >= NR_I8,
        "i8_microkernel: colsum128 needs one +128-shift correction per column"
    );
    #[cfg(target_arch = "x86_64")]
    if mr == MR {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vnni")
        {
            // SAFETY: guarded by runtime CPU feature detection; the
            // callee's pointer arithmetic stays inside `staged`/`panel`/
            // `colsum128`/`acc`, whose lengths the caller guarantees
            // (see its SAFETY comments).
            unsafe { i8_microkernel_vnni(staged, kp, panel, colsum128, acc) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: as above — AVX2 detected at runtime, bounds
            // guaranteed by the caller.
            unsafe { i8_microkernel_avx2(staged, kp, panel, acc) };
            return;
        }
    }
    i8_microkernel_body(staged, kp, mr, panel, acc);
}

/// AVX-512 VNNI instantiation: one 64-byte panel block is the whole
/// sixteen-column operand, activations ride as `u8 = i8 + 128` (a sign
/// bit flip), and `vpdpbusd` fuses four multiplies and the horizontal
/// add per output lane — 64 MACs per instruction. The constant
/// `128 * Σ_p w[col][p]` that the shift introduces is subtracted once
/// per tile from the precomputed `colsum128`, restoring the exact
/// signed sums: every bit identical to the scalar body. `i32`
/// accumulation cannot overflow below `k ≈ 2^31 / (255·127) ≈ 66k`,
/// far beyond any matcher layer width.
// SAFETY: callable only when the CPU supports AVX-512F + AVX-512 VNNI —
// `i8_microkernel` is the sole caller and gates on
// `is_x86_feature_detected!` for both features.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vnni")]
fn i8_microkernel_vnni(
    staged: &[i8],
    kp: usize,
    panel: &[i8],
    colsum128: &[i32],
    acc: &mut [[i32; NR_I8]; MR],
) {
    use std::arch::x86_64::*;
    debug_assert!(panel.len() >= kp * NR_I8);
    debug_assert!(staged.len() >= MR * kp && kp.is_multiple_of(QUAD));
    debug_assert!(colsum128.len() >= NR_I8);
    // SAFETY: `acc` rows are `[i32; 16]` — exactly one unaligned 512-bit
    // load/store each; panel block `bq` spans bytes `[bq*64, bq*64+64)`,
    // in bounds by the first debug_assert (the packer allocates
    // `kp * NR_I8` bytes per panel); the 4-byte activation reads end at
    // `m*kp + kp <= MR*kp <= staged.len()`.
    unsafe {
        let mut acc0 = _mm512_loadu_si512(acc[0].as_ptr().cast());
        let mut acc1 = _mm512_loadu_si512(acc[1].as_ptr().cast());
        let mut acc2 = _mm512_loadu_si512(acc[2].as_ptr().cast());
        let mut acc3 = _mm512_loadu_si512(acc[3].as_ptr().cast());
        let base = staged.as_ptr();
        for bq in 0..kp / QUAD {
            let bvec = _mm512_loadu_si512(panel.as_ptr().add(bq * QUAD * NR_I8).cast());
            let quad = |m: usize| -> i32 {
                // Four consecutive i8 activations as one little-endian
                // u32, sign bits flipped: bytewise `i8 + 128` into u8.
                (base.add(m * kp + bq * QUAD).cast::<u32>().read_unaligned() ^ 0x8080_8080) as i32
            };
            acc0 = _mm512_dpbusd_epi32(acc0, _mm512_set1_epi32(quad(0)), bvec);
            acc1 = _mm512_dpbusd_epi32(acc1, _mm512_set1_epi32(quad(1)), bvec);
            acc2 = _mm512_dpbusd_epi32(acc2, _mm512_set1_epi32(quad(2)), bvec);
            acc3 = _mm512_dpbusd_epi32(acc3, _mm512_set1_epi32(quad(3)), bvec);
        }
        // Undo the +128 activation shift: padded positions multiplied
        // zero weights, so the correction is exactly `128·Σ w`.
        let corr = _mm512_loadu_si512(colsum128.as_ptr().cast());
        _mm512_storeu_si512(acc[0].as_mut_ptr().cast(), _mm512_sub_epi32(acc0, corr));
        _mm512_storeu_si512(acc[1].as_mut_ptr().cast(), _mm512_sub_epi32(acc1, corr));
        _mm512_storeu_si512(acc[2].as_mut_ptr().cast(), _mm512_sub_epi32(acc2, corr));
        _mm512_storeu_si512(acc[3].as_mut_ptr().cast(), _mm512_sub_epi32(acc3, corr));
    }
}

/// AVX2 instantiation for pre-VNNI hardware: 16-byte sub-blocks
/// sign-extend to sixteen `i16` (`vpmovsxbw`) and `vpmaddwd` fuses
/// pairs of multiplies; each activation quad rides as four `i16` in a
/// broadcast `i64`, leaving the per-column sum split across two `i32`
/// lanes that are combined scalar at the end. Products max out at
/// `127²`, so the `i16` pair-sums in `vpmaddwd` cannot saturate —
/// bit-identical to the scalar body.
// SAFETY: callable only when the CPU supports AVX2 — `i8_microkernel`
// is the sole caller and gates on `is_x86_feature_detected!("avx2")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn i8_microkernel_avx2(staged: &[i8], kp: usize, panel: &[i8], acc: &mut [[i32; NR_I8]; MR]) {
    use std::arch::x86_64::*;
    debug_assert!(panel.len() >= kp * NR_I8);
    debug_assert!(staged.len() >= MR * kp && kp.is_multiple_of(QUAD));
    // SAFETY: per block `bq` and half `h`, the two 16-byte loads span
    // `[bq*64 + 32h, bq*64 + 32h + 32)` of `panel`, in bounds by the
    // debug_asserts; activation reads are as in the VNNI kernel; the
    // split-accumulator stores target a local stack array.
    unsafe {
        let base = staged.as_ptr();
        // Two passes of eight columns each keep the live register count
        // at 8 split accumulators + 2 panel vectors + 1 broadcast.
        for half in 0..2 {
            let hoff = half * 2 * NR_I8;
            let mut accs = [[_mm256_setzero_si256(); 2]; MR];
            for bq in 0..kp / QUAD {
                let bbase = panel.as_ptr().add(bq * QUAD * NR_I8 + hoff);
                let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bbase.cast()));
                let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bbase.add(16).cast()));
                for (m, accm) in accs.iter_mut().enumerate() {
                    let aq = base.add(m * kp + bq * QUAD);
                    // The quad as four sign-extended i16 in one i64,
                    // broadcast so vpmaddwd pairs (a0,a1) and (a2,a3)
                    // against each column's interleaved weights.
                    let a16 = (aq.read() as i16 as u16 as u64)
                        | ((aq.add(1).read() as i16 as u16 as u64) << 16)
                        | ((aq.add(2).read() as i16 as u16 as u64) << 32)
                        | ((aq.add(3).read() as i16 as u16 as u64) << 48);
                    let avec = _mm256_set1_epi64x(a16 as i64);
                    accm[0] = _mm256_add_epi32(accm[0], _mm256_madd_epi16(avec, b0));
                    accm[1] = _mm256_add_epi32(accm[1], _mm256_madd_epi16(avec, b1));
                }
            }
            for (m, accm) in accs.iter().enumerate() {
                for (s, av) in accm.iter().enumerate() {
                    let mut tmp = [0i32; 8];
                    _mm256_storeu_si256(tmp.as_mut_ptr().cast(), *av);
                    for c in 0..4 {
                        acc[m][half * 8 + s * 4 + c] += tmp[2 * c] + tmp[2 * c + 1];
                    }
                }
            }
        }
    }
}

#[inline(always)]
fn i8_microkernel_body(
    staged: &[i8],
    kp: usize,
    mr: usize,
    panel: &[i8],
    acc: &mut [[i32; NR_I8]; MR],
) {
    for bq in 0..kp / QUAD {
        let block = &panel[bq * QUAD * NR_I8..(bq + 1) * QUAD * NR_I8];
        for (accm, row) in acc.iter_mut().zip(staged.chunks_exact(kp)).take(mr) {
            let a = &row[bq * QUAD..(bq + 1) * QUAD];
            for (l, o) in accm.iter_mut().enumerate() {
                let wv = &block[QUAD * l..QUAD * (l + 1)];
                *o += a[0] as i32 * wv[0] as i32
                    + a[1] as i32 * wv[1] as i32
                    + a[2] as i32 * wv[2] as i32
                    + a[3] as i32 * wv[3] as i32;
            }
        }
    }
}

/// Blocked int8 kernel over output rows `rows`, writing rescaled f32
/// results into the disjoint row block `out`.
fn i8_blocked_rows(x: &QuantizedMatrix, w: &PackedI8Rhs, rows: Range<usize>, out: &mut [f32]) {
    let k = x.cols;
    let n = w.n;
    let kp = k.div_ceil(QUAD) * QUAD;
    let panels = n.div_ceil(NR_I8);
    let stride = kp * NR_I8;
    // Zero-padded activation staging: every kernel tier then reads whole
    // quads with no ragged tail (padded zeros meet padded zero weights,
    // contributing nothing to the sums). Rows past `mr` in a ragged
    // final tile may hold stale bytes; only the scalar body runs for
    // those tiles and it reads just the live rows.
    let mut staged = vec![0i8; MR * kp];
    let mut i0 = rows.start;
    while i0 < rows.end {
        let mr = MR.min(rows.end - i0);
        for m in 0..mr {
            staged[m * kp..m * kp + k].copy_from_slice(x.row(i0 + m));
        }
        for t in 0..panels {
            let j0 = t * NR_I8;
            let nv = NR_I8.min(n - j0);
            let panel = &w.packed[t * stride..(t + 1) * stride];
            let colsum = &w.colsum128[j0..j0 + NR_I8];
            let mut acc = [[0i32; NR_I8]; MR];
            i8_microkernel(&staged, kp, mr, panel, colsum, &mut acc);
            for (m, accm) in acc.iter().enumerate().take(mr) {
                let xs = x.scales[i0 + m];
                let base = (i0 - rows.start + m) * n + j0;
                for (o, (&q, &ws)) in out[base..base + nv]
                    .iter_mut()
                    .zip(accm.iter().zip(&w.scales[j0..j0 + nv]))
                {
                    *o = q as f32 * xs * ws;
                }
            }
        }
        i0 += mr;
    }
}

/// Quantized product `x * wᵀ` rescaled back to f32:
/// `out[i][j] = (Σ_p x[i][p] * w[j][p]) * x.scales[i] * w.scales[j]`.
///
/// `x` holds activation rows (`m x k`), `w` holds weight rows
/// (`n x k`, one output channel per row) — the same orientation as the
/// f32 `matmul_t`. Large products shard output rows across the worker
/// pool; integer accumulation makes every dispatch and thread count
/// produce bit-identical results.
///
/// # Panics
/// Panics when `x.cols() != w.cols()`.
pub fn i8_matmul_t(x: &QuantizedMatrix, w: &QuantizedMatrix) -> Matrix {
    assert_eq!(
        x.cols, w.cols,
        "i8_matmul_t shape mismatch: {}x{} x ({}x{})ᵀ",
        x.rows, x.cols, w.rows, w.cols
    );
    i8_matmul_t_packed(x, &PackedI8Rhs::pack(w))
}

/// [`i8_matmul_t`] against weights packed once up front — the steady
/// state of quantized inference, where one layer's weights multiply
/// every scoring batch and per-call re-packing would dominate small
/// products.
///
/// # Panics
/// Panics when `x.cols() != w.shared_dim()`.
pub fn i8_matmul_t_packed(x: &QuantizedMatrix, w: &PackedI8Rhs) -> Matrix {
    assert_eq!(
        x.cols, w.k,
        "i8_matmul_t shape mismatch: {}x{} x packed ({}x{})ᵀ",
        x.rows, x.cols, w.n, w.k
    );
    let (m, k) = (x.rows, x.cols);
    let n = w.n;
    let mut out = Matrix::zeros(m, n);
    let min_rows = if m * k * n >= PAR_FLOP_CUTOFF {
        MIN_ROWS_PER_SHARD
    } else {
        m.max(1)
    };
    runtime::for_each_row_shard_mut(out.as_mut_slice(), m, n, min_rows, |rows, chunk| {
        i8_blocked_rows(x, w, rows, chunk);
    });
    out
}

/// Naive triple-loop reference for [`i8_matmul_t`], retained as the
/// ground truth the blocked kernel is tested against (and as the scalar
/// baseline for the `micro` bench speedup gate).
///
/// # Panics
/// Panics when `x.cols() != w.cols()`.
pub fn i8_matmul_t_reference(x: &QuantizedMatrix, w: &QuantizedMatrix) -> Matrix {
    assert_eq!(x.cols, w.cols, "i8_matmul_t shape mismatch");
    let mut out = Matrix::zeros(x.rows, w.rows);
    for i in 0..x.rows {
        let xr = x.row(i);
        let xs = x.scales[i];
        let out_row = out.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let wr = w.row(j);
            let mut acc = 0i32;
            for (&a, &b) in xr.iter().zip(wr) {
                acc += a as i32 * b as i32;
            }
            *o = acc as f32 * xs * w.scales[j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XorShiftRng;

    #[test]
    fn roundtrip_error_is_bounded_by_half_scale() {
        // Seeded property test: |x - dequantize(quantize(x))| <= scale/2
        // (plus float slack) for every element, per-row and uniform.
        let mut rng = XorShiftRng::new(0x51AB);
        for trial in 0..20 {
            let rows = 1 + (trial % 7);
            let cols = 1 + (trial * 3) % 13;
            let m = Matrix::gaussian(rows, cols, &mut rng).scale(1.0 + trial as f32);
            let q = QuantizedMatrix::quantize_per_row(&m);
            let back = q.dequantize();
            for r in 0..rows {
                let s = q.scales()[r];
                for (a, b) in m.row(r).iter().zip(back.row(r)) {
                    let err = (a - b).abs();
                    assert!(
                        err <= 0.5 * s * (1.0 + 1e-5),
                        "trial {trial} row {r}: err {err} > scale/2 {s}"
                    );
                }
            }
            let scale = scale_for_max_abs(max_abs(&m));
            let qu = QuantizedMatrix::quantize_uniform(&m, scale);
            let back = qu.dequantize();
            for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
                assert!((a - b).abs() <= 0.5 * scale * (1.0 + 1e-5));
            }
        }
    }

    #[test]
    fn degenerate_inputs_quantize_to_zero_with_unit_scale() {
        let zeros = Matrix::zeros(3, 4);
        let q = QuantizedMatrix::quantize_per_row(&zeros);
        assert_eq!(q.scales(), &[1.0, 1.0, 1.0]);
        assert_eq!(q.dequantize(), zeros);
        let empty = Matrix::zeros(0, 4);
        let q = QuantizedMatrix::quantize_per_row(&empty);
        assert_eq!(q.rows(), 0);
        assert_eq!(
            i8_matmul_t(&q, &QuantizedMatrix::quantize_per_row(&Matrix::zeros(2, 4))).shape(),
            (0, 2)
        );
        // NaN maps to 0, infinities saturate.
        let weird = Matrix::from_rows(&[&[f32::NAN, f32::INFINITY, -1.0, 2.0]]);
        let q = QuantizedMatrix::quantize_per_row(&weird);
        assert_eq!(q.row(0)[0], 0);
        assert_eq!(q.row(0)[1], 127);
    }

    #[test]
    fn uniform_clamps_out_of_range_activations() {
        let m = Matrix::from_rows(&[&[10.0, -10.0, 0.5]]);
        let q = QuantizedMatrix::quantize_uniform(&m, scale_for_max_abs(1.0));
        assert_eq!(q.row(0)[0], 127);
        assert_eq!(q.row(0)[1], -127);
    }

    #[test]
    fn blocked_gemm_matches_reference_exactly() {
        let mut rng = XorShiftRng::new(0xD07);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 4),
            (4, 8, 8),
            (7, 11, 13),
            (17, 31, 19),
            (33, 9, 25),
        ] {
            let x = QuantizedMatrix::quantize_per_row(&Matrix::gaussian(m, k, &mut rng));
            let w = QuantizedMatrix::quantize_per_row(&Matrix::gaussian(n, k, &mut rng));
            let blocked = i8_matmul_t(&x, &w);
            let reference = i8_matmul_t_reference(&x, &w);
            assert_eq!(blocked.as_slice(), reference.as_slice(), "{m}x{k}x{n}");
        }
    }

    /// Builds a staged tile + packed panel pair for kernel-tier tests.
    #[cfg(target_arch = "x86_64")]
    fn tier_fixture(k: usize, seed: u64) -> (Vec<i8>, usize, PackedI8Rhs) {
        let mut rng = XorShiftRng::new(seed);
        let x = QuantizedMatrix::quantize_per_row(&Matrix::gaussian(MR, k, &mut rng));
        let w = PackedI8Rhs::pack(&QuantizedMatrix::quantize_per_row(&Matrix::gaussian(
            NR_I8, k, &mut rng,
        )));
        let kp = k.div_ceil(QUAD) * QUAD;
        let mut staged = vec![0i8; MR * kp];
        for m in 0..MR {
            staged[m * kp..m * kp + k].copy_from_slice(x.row(m));
        }
        (staged, kp, w)
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn simd_kernel_tiers_match_the_scalar_body_bitwise() {
        // The dispatcher always picks the best tier, so exercise each
        // SIMD instantiation directly against the scalar ground truth.
        for &k in &[1, 3, 4, 7, 8, 31, 64, 130] {
            let (staged, kp, w) = tier_fixture(k, 0xBEEF ^ k as u64);
            let panel = &w.packed[..kp * NR_I8];
            let mut want = [[0i32; NR_I8]; MR];
            i8_microkernel_body(&staged, kp, MR, panel, &mut want);
            if std::arch::is_x86_feature_detected!("avx2") {
                let mut got = [[0i32; NR_I8]; MR];
                // SAFETY: AVX2 presence checked on the line above;
                // staged/panel sizes match the kernel's contract.
                unsafe { i8_microkernel_avx2(&staged, kp, panel, &mut got) };
                assert_eq!(want, got, "avx2 tier diverged at k={k}");
            }
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vnni")
            {
                let mut got = [[0i32; NR_I8]; MR];
                // SAFETY: AVX-512F+VNNI presence checked above;
                // staged/panel/colsum sizes match the kernel's contract.
                unsafe { i8_microkernel_vnni(&staged, kp, panel, &w.colsum128, &mut got) };
                assert_eq!(want, got, "vnni tier diverged at k={k}");
            }
        }
    }

    #[test]
    fn vectorized_quantization_matches_the_scalar_element_for_element() {
        // Adversarial values first: NaN, infinities, exact .5 halves
        // (f32::round goes half away from zero — nearest-even would
        // differ), negative zero, saturating magnitudes.
        let mut vals = vec![
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.5,
            -0.5,
            1.5,
            -2.5,
            126.5,
            127.49,
            127.5,
            -127.5,
            1e30,
            -1e30,
            -0.0,
            0.0,
            1e-30,
        ];
        let mut rng = XorShiftRng::new(0x0DD5);
        for _ in 0..500 {
            vals.push(rng.gaussian() * 64.0);
            vals.push((rng.gaussian() * 32.0).round() + 0.5);
        }
        for &inv in &[1.0f32, 0.37, 42.0] {
            let mut out = vec![0i8; vals.len()];
            quantize_slice(&vals, inv, &mut out);
            for (i, (&v, &q)) in vals.iter().zip(&out).enumerate() {
                assert_eq!(q, quantize_value(v, inv), "element {i} ({v}) at inv={inv}");
            }
        }
    }

    #[test]
    fn gemm_tracks_f32_product_within_quantization_error() {
        let mut rng = XorShiftRng::new(0xACC);
        let a = Matrix::gaussian(12, 24, &mut rng);
        let b = Matrix::gaussian(9, 24, &mut rng);
        let exact = a.matmul_t(&b);
        let q = i8_matmul_t(
            &QuantizedMatrix::quantize_per_row(&a),
            &QuantizedMatrix::quantize_per_row(&b),
        );
        // Worst-case relative error per dot product is ~k * (s_a*s_b)/2;
        // a loose absolute bound is enough to catch scale bugs.
        assert!(
            exact.max_abs_diff(&q) < 0.2,
            "diff {}",
            exact.max_abs_diff(&q)
        );
    }
}
