//! Data-parallel compute runtime: a dependency-free worker pool built on
//! `std::thread::scope`, shared by every hot path in the workspace
//! (matmul tiles, minibatch gradient shards, batch encoding, candidate
//! scoring).
//!
//! # Determinism contract
//!
//! Work is always split into **contiguous shards processed in a fixed
//! order**: shard `i` covers a contiguous index range, and results are
//! returned (or written) in shard order regardless of which worker thread
//! ran which shard. Combined with kernels that keep each output element's
//! accumulation order identical to the serial loop, every parallel path
//! in this workspace produces **bit-identical** results at any thread
//! count; reductions that merge per-shard floating-point sums (e.g.
//! sharded gradients) are deterministic for a fixed thread count and
//! match the serial result to rounding error.
//!
//! # Configuration
//!
//! The worker count resolves, in priority order:
//! 1. [`set_threads`] (programmatic override, e.g. from a bench loop),
//! 2. the `VAER_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `VAER_THREADS=1` (or `set_threads(1)`) forces every parallel path
//! through its inline serial branch — no threads are spawned at all.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Resolved `VAER_THREADS` / hardware default, read once.
static DEFAULT: OnceLock<usize> = OnceLock::new();

/// The number of worker threads parallel kernels may use (≥ 1).
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    *DEFAULT.get_or_init(|| {
        std::env::var("VAER_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Overrides the worker count for the whole process; `0` restores the
/// `VAER_THREADS`/hardware default.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Splits `0..n` into at most `shards` contiguous, near-equal, in-order
/// ranges (the first `n % shards` ranges get one extra element). Returns
/// fewer ranges when `n < shards`; never returns an empty range.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, n.max(1));
    if n == 0 {
        // One empty range, so callers can treat the result as non-empty.
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..0];
    }
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The shard count for `n` items given a minimum useful shard size:
/// `min(threads(), n / min_per_shard)`, at least 1.
pub fn shard_count(n: usize, min_per_shard: usize) -> usize {
    let max_useful = n / min_per_shard.max(1);
    threads().min(max_useful).max(1)
}

/// Maps `f` over contiguous shards of `0..n`, returning results in shard
/// order. `f` runs inline (no spawn) when a single shard suffices —
/// either `threads() == 1` or `n < 2 * min_per_shard`.
pub fn map_shards<T, F>(n: usize, min_per_shard: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    map_shards_indexed(n, min_per_shard, |_, r| f(r))
}

/// Like [`map_shards`], but `f` also receives the shard index. The
/// index is stable for a fixed `(n, min_per_shard, threads())`, which
/// lets callers pin per-shard scratch state (e.g. a reusable autodiff
/// tape per shard slot) across repeated calls.
pub fn map_shards_indexed<T, F>(n: usize, min_per_shard: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let shards = shard_count(n, min_per_shard);
    if shards == 1 {
        crate::obs::pool_inline();
        return vec![f(0, 0..n)];
    }
    crate::obs::pool_spawned(shards, shards - 1);
    let ranges = shard_ranges(n, shards);
    std::thread::scope(|scope| {
        // Shard 0 runs on the calling thread; the rest on scoped workers.
        let handles: Vec<_> = ranges[1..]
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let f = &f;
                let r = r.clone();
                scope.spawn(move || f(i + 1, r))
            })
            .collect();
        let mut out = Vec::with_capacity(ranges.len());
        out.push(f(0, ranges[0].clone()));
        // Everything past this point is the calling thread idling on its
        // workers — the pool's idle-time telemetry.
        let join0 = crate::obs::pool_clock();
        for h in handles {
            out.push(h.join().expect("runtime worker panicked")); // vaer-lint: allow(panic) -- join only fails when a worker panicked; re-raise it
        }
        crate::obs::pool_join_wait(join0);
        out
    })
}

/// Splits the row-major buffer `data` (`rows` rows of `cols` elements)
/// into contiguous row shards and runs `f(row_range, shard_buffer)` on
/// each, in parallel. Each shard's buffer is the disjoint sub-slice for
/// exactly its rows, so kernels write without synchronisation. Runs
/// inline when a single shard suffices.
pub fn for_each_row_shard_mut<F>(data: &mut [f32], rows: usize, cols: usize, min_rows: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    debug_assert_eq!(data.len(), rows * cols);
    let shards = shard_count(rows, min_rows);
    if shards == 1 {
        crate::obs::pool_inline();
        f(0..rows, data);
        return;
    }
    // All shards (including the first) run on spawned scoped workers.
    crate::obs::pool_spawned(shards, shards);
    let ranges = shard_ranges(rows, shards);
    std::thread::scope(|scope| {
        let mut rest = data;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut((r.end - r.start) * cols);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(r, chunk));
        }
    });
}

/// Serialises tests (across this crate) that touch the process-global
/// thread override.
#[cfg(test)]
pub(crate) static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_contiguously() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for s in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(n, s);
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    assert!(!w[1].is_empty());
                }
                // Balanced: lengths differ by at most one.
                let lens: Vec<usize> = ranges.iter().map(Range::len).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1, "unbalanced {lens:?}");
            }
        }
    }

    #[test]
    fn map_shards_returns_in_shard_order() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_threads(4);
        let got = map_shards(100, 1, |r| r.clone());
        set_threads(0);
        assert_eq!(got.first().unwrap().start, 0);
        assert_eq!(got.last().unwrap().end, 100);
        for w in got.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn map_shards_single_thread_is_one_shard() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_threads(1);
        let got = map_shards(64, 1, |r| r.clone());
        set_threads(0);
        assert_eq!(got, vec![0..64]);
    }

    #[test]
    fn row_shards_write_disjoint_rows() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_threads(3);
        let rows = 10;
        let cols = 4;
        let mut data = vec![0.0f32; rows * cols];
        for_each_row_shard_mut(&mut data, rows, cols, 1, |range, chunk| {
            for (local, row) in range.clone().enumerate() {
                for c in 0..cols {
                    chunk[local * cols + c] = (row * cols + c) as f32;
                }
            }
        });
        set_threads(0);
        let want: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
        assert_eq!(data, want);
    }

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
    }
}
