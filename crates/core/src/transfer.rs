//! Representation-model transfer — paper §III-D and the Table VII
//! experiment.
//!
//! Because the VAE consumes numeric IRs rather than domain vocabularies,
//! a trained [`ReprModel`](crate::repr::ReprModel) encodes IRs from *any*
//! domain with the same dimensionality. Transfer is therefore: serialise
//! the model in the source task, deserialise it in the target task, adapt
//! the target tables to the source arity (truncate or pad, §VI-D), and
//! skip representation training entirely.

use crate::entity::IrTable;
use crate::latent::LatentTable;
use crate::repr::ReprModel;
use crate::CoreError;
use std::path::Path;
use vaer_data::Dataset;

/// Saves a representation model to disk.
///
/// # Errors
/// I/O failures are wrapped into [`CoreError::BadInput`].
pub fn save_repr(model: &ReprModel, path: &Path) -> Result<(), CoreError> {
    std::fs::write(path, model.to_bytes())
        .map_err(|e| CoreError::BadInput(format!("cannot write {}: {e}", path.display())))
}

/// Loads a representation model from disk.
///
/// # Errors
/// I/O failures and malformed files are reported.
pub fn load_repr(path: &Path) -> Result<ReprModel, CoreError> {
    let bytes = std::fs::read(path)
        .map_err(|e| CoreError::BadInput(format!("cannot read {}: {e}", path.display())))?;
    ReprModel::from_bytes(&bytes)
}

/// Adapts a dataset's tables to the arity a transferred model expects:
/// wider tables keep their first `arity` columns, narrower ones are padded
/// with empty columns (paper §VI-D). Pair labels are unchanged (row
/// indices are stable).
pub fn adapt_dataset_arity(dataset: &Dataset, arity: usize) -> Dataset {
    let mut out = dataset.clone();
    out.table_a = dataset.table_a.with_arity(arity);
    out.table_b = dataset.table_b.with_arity(arity);
    out
}

/// Revalidates latent caches after a model swap: any cache built from
/// different weights than `repr` is re-encoded from its IR table, fresh
/// ones pass through untouched. This is the invalidation hook callers
/// run after [`load_repr`] replaces the representation model a
/// [`LatentTable`] was built from.
pub fn refresh_latents(repr: &ReprModel, caches: Vec<(LatentTable, &IrTable)>) -> Vec<LatentTable> {
    caches
        .into_iter()
        .map(|(lat, irs)| lat.refresh(repr, irs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::ReprConfig;
    use vaer_data::domains::{Domain, DomainSpec, Scale};
    use vaer_linalg::{Matrix, XorShiftRng};

    #[test]
    fn save_load_round_trip() {
        let mut rng = XorShiftRng::new(1);
        let irs = Matrix::gaussian(30, 8, &mut rng);
        let (model, _) = ReprModel::train(&irs, &ReprConfig::fast(8)).unwrap();
        let dir = std::env::temp_dir().join("vaer_transfer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repr.bin");
        save_repr(&model, &path).unwrap();
        let back = load_repr(&path).unwrap();
        let a = model.encode(&irs);
        let b = back.encode(&irs);
        assert_eq!(a[0].mu, b[0].mu);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn refresh_latents_reencodes_only_stale_caches() {
        let mut rng = XorShiftRng::new(2);
        let table = IrTable::new(2, Matrix::gaussian(20, 8, &mut rng));
        let (model, _) = ReprModel::train(&table.irs, &ReprConfig::fast(8)).unwrap();
        let lat = LatentTable::encode(&model, &table);

        // Same weights round-tripped through disk: fingerprints match, so
        // the cache survives the swap without an encoder pass.
        let dir = std::env::temp_dir().join("vaer_transfer_latents_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repr.bin");
        save_repr(&model, &path).unwrap();
        let reloaded = load_repr(&path).unwrap();
        std::fs::remove_file(&path).ok();
        crate::repr::reset_encode_calls();
        let kept = refresh_latents(&reloaded, vec![(lat.clone(), &table)]);
        assert_eq!(crate::repr::encode_calls(), 0, "fresh cache re-encoded");
        assert!(!kept[0].is_stale(&reloaded));

        // Different weights: the cache must be rebuilt.
        let other_irs = Matrix::gaussian(20, 8, &mut rng);
        let (other, _) = ReprModel::train(&other_irs, &ReprConfig::fast(8)).unwrap();
        let rebuilt = refresh_latents(&other, vec![(lat, &table)]);
        assert!(!rebuilt[0].is_stale(&other));
        let direct = other.encode(&table.irs);
        let ents = rebuilt[0].entities();
        assert_eq!(ents[0].attrs[0].mu, direct[0].mu);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_repr(Path::new("/nonexistent/vaer.bin")).is_err());
    }

    #[test]
    fn arity_adaptation_preserves_pairs() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(5);
        let adapted = adapt_dataset_arity(&ds, 4);
        assert_eq!(adapted.table_a.schema.arity(), 4);
        assert_eq!(adapted.table_b.schema.arity(), 4);
        assert_eq!(adapted.train_pairs, ds.train_pairs);
        adapted
            .train_pairs
            .validate(&adapted.table_a, &adapted.table_b)
            .unwrap();
        // Padding up also works.
        let wide = adapt_dataset_arity(&ds, 9);
        assert_eq!(wide.table_a.schema.arity(), 9);
        assert_eq!(wide.table_a.row(0)[8], "");
    }
}
