//! Runtime resilience primitives (DESIGN.md §15): deadlines, cooperative
//! cancellation, unified retry with deterministic backoff, and the
//! degradation ledger that keeps every fallback honest.
//!
//! The contracts, in one place:
//!
//! - A [`RunBudget`] travels with a run (fit or resolve). Long-running
//!   code `probe()`s it at stage boundaries and inside long inner loops
//!   (training epochs, Score chunks, LSH build/join). A probe either
//!   returns `Ok(())` or surfaces a typed [`CoreError::Cancelled`] /
//!   [`CoreError::DeadlineExceeded`] — never a hang, never a partial
//!   write (probes sit *before* mutation points, and checkpoint writes
//!   stay atomic regardless).
//! - A [`CancelToken`] is a relaxed-atomic flag: one load per probe on
//!   the un-cancelled fast path, mirroring how `vaer-obs` gates levels.
//! - A [`RetryPolicy`] retries *retryable* errors (see [`RetryClass`])
//!   with exponential backoff, deterministic seeded jitter, and an
//!   arithmetic cap on total sleep — no clock reads, so the policy
//!   itself stays det-wallclock-clean and testable.
//! - Every fallback a run takes (int8 → f32 scoring, checkpoint →
//!   recompute, memo → cold rebuild) is named in [`DEGRADATIONS`],
//!   fires an obs event, and lands in the [`ResolutionHealth`] attached
//!   to the run's result. Silent degradation is a bug; `vaer-lint`'s
//!   `degradation-registry` rule enforces the naming.

use crate::CoreError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every degradation a run may take, sorted and unique. Each entry names
/// an obs event namespace; `vaer-lint` enforces that every
/// `ResolutionHealth::degrade` call site uses a registered name and that
/// every entry here is exercised somewhere.
pub const DEGRADATIONS: &[&str] = &[
    "degrade.plan.rebuild",
    "degrade.score.f32_fallback",
    "degrade.stage.recompute",
];

/// Bit 63 of [`CancelInner::state`]: the token is cancelled.
const CANCELLED: u64 = 1 << 63;

#[derive(Debug, Default)]
struct CancelInner {
    /// Bit 63 = cancelled; low 63 bits = a probe-fuse countdown armed by
    /// [`CancelToken::cancel_after_probes`] (a test hook — production
    /// tokens keep the low bits at zero so the fast path is one load).
    state: AtomicU64,
    /// Probes observed while the token was armed or cancelled (the
    /// latency tests bound cancellation by this count).
    probes: AtomicU64,
}

/// Cooperative cancellation handle. Cloning shares the flag; any clone
/// may [`cancel`](Self::cancel), and every probe site sees it at its
/// next probe. Un-cancelled probes cost a single relaxed atomic load.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.state.fetch_or(CANCELLED, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (does not consume a
    /// fuse step or count as a probe).
    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::Relaxed) & CANCELLED != 0
    }

    /// Test hook: arms a fuse so the `n`-th subsequent probe trips the
    /// token (the tripping probe itself observes cancellation). Meant
    /// for single-threaded latency tests; concurrent probing of an
    /// armed fuse may trip it one probe early.
    pub fn cancel_after_probes(&self, n: u64) {
        debug_assert!(n > 0 && n < CANCELLED, "fuse must fit in 63 bits");
        self.inner.state.store(n, Ordering::Relaxed);
    }

    /// Probes observed while the token was armed or cancelled.
    pub fn probes(&self) -> u64 {
        self.inner.probes.load(Ordering::Relaxed)
    }

    /// One cancellation check. Returns `true` when the run must stop.
    pub fn probe(&self) -> bool {
        let state = self.inner.state.load(Ordering::Relaxed);
        if state == 0 {
            return false; // fast path: one relaxed load, nothing else
        }
        self.inner.probes.fetch_add(1, Ordering::Relaxed);
        if state & CANCELLED != 0 {
            return true;
        }
        // Armed fuse: burn one step; the step that reaches zero trips.
        let prev = self.inner.state.fetch_sub(1, Ordering::Relaxed);
        if prev & !CANCELLED == 1 {
            self.inner.state.fetch_or(CANCELLED, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

/// A wall-clock deadline. Constructed from a duration at run start;
/// probed cheaply (one monotonic clock read) at probe sites.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self {
            at: Instant::now() + budget,
        }
    }

    /// Time left before the deadline (zero once exceeded).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    pub fn exceeded(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// The budget a run carries: an optional [`Deadline`] and an optional
/// [`CancelToken`]. The default is unlimited, which keeps every probe a
/// pair of `Option` checks — existing call paths pay nothing.
#[derive(Clone, Debug, Default)]
pub struct RunBudget {
    deadline: Option<Deadline>,
    cancel: Option<CancelToken>,
}

impl RunBudget {
    /// No deadline, no cancellation: probes always succeed.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Adds a deadline `budget` from now.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Deadline::after(budget));
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Reads `VAER_DEADLINE_MS` (milliseconds) into a budget; unset,
    /// empty, unparsable, or zero values mean unlimited.
    pub fn from_env() -> Self {
        match std::env::var("VAER_DEADLINE_MS") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(ms) if ms > 0 => Self::default().with_deadline(Duration::from_millis(ms)),
                _ => Self::default(),
            },
            Err(_) => Self::default(),
        }
    }

    /// Whether this budget can never fail a probe.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Time left under the deadline, if one is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.remaining())
    }

    /// Whether the budget is already spent (cancelled or past deadline)
    /// — a peek that does not count as a probe or burn a test fuse.
    pub fn exhausted(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
            || self.deadline.is_some_and(|d| d.exceeded())
    }

    /// One budget check at `site`. Cancellation wins over the deadline
    /// when both have tripped.
    ///
    /// # Errors
    /// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] naming
    /// the probe site.
    pub fn probe(&self, site: &'static str) -> Result<(), CoreError> {
        if let Some(c) = &self.cancel {
            if c.probe() {
                crate::obs::handles().budget_cancels.add(1);
                return Err(CoreError::Cancelled(format!("cancelled at {site}")));
            }
        }
        if let Some(d) = &self.deadline {
            if d.exceeded() {
                crate::obs::handles().budget_deadlines.add(1);
                return Err(CoreError::DeadlineExceeded(format!(
                    "deadline exceeded at {site} (budget spent)"
                )));
            }
        }
        Ok(())
    }
}

/// Classifies errors for [`RetryPolicy`]: retryable failures are
/// transient (a retry may genuinely succeed); everything else is fatal
/// and must surface immediately.
pub trait RetryClass {
    /// Whether a retry of the failed operation could succeed.
    fn retryable(&self) -> bool;
}

impl RetryClass for std::io::Error {
    fn retryable(&self) -> bool {
        // Filesystem writes are retried unless the failure is clearly
        // permanent. Injected faults (`checkpoint.write=err`) land in
        // the retryable bucket on purpose — that is the transient-IO
        // class they model.
        !matches!(
            self.kind(),
            std::io::ErrorKind::NotFound
                | std::io::ErrorKind::PermissionDenied
                | std::io::ErrorKind::InvalidInput
                | std::io::ErrorKind::Unsupported
        )
    }
}

impl RetryClass for CoreError {
    fn retryable(&self) -> bool {
        match self {
            // Transient IO bubbles its classification up.
            CoreError::Io(e) => e.retryable(),
            // Torn/CRC-failed checkpoint payloads: a retry re-reads or
            // recomputes past the corruption.
            CoreError::Checkpoint(_) => true,
            // Budget errors must never be retried away.
            CoreError::Cancelled(_) | CoreError::DeadlineExceeded(_) => false,
            CoreError::BadInput(_)
            | CoreError::Model(_)
            | CoreError::InsufficientData(_)
            | CoreError::Diverged(_) => false,
        }
    }
}

/// SplitMix64: the jitter generator. Stateless per call — jitter for
/// attempt `k` depends only on `(seed, k)`, so retry schedules are
/// reproducible without any clock or global RNG.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Unified retry: bounded attempts, exponential backoff with a per-sleep
/// cap, deterministic seeded jitter, and an *arithmetic* cap on total
/// sleep (`max_total_backoff`) so the policy never reads a clock itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Per-sleep ceiling for the exponential curve.
    pub max_backoff: Duration,
    /// Ceiling on the *sum* of all sleeps; once the next planned sleep
    /// would cross it, the last error is returned instead.
    pub max_total_backoff: Duration,
    /// Jitter seed; same seed + same failures = same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// The default is [`none`](Self::none): retrying is opt-in, so
    /// fault-injection contracts on un-opted paths stay exact.
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// No retries: the first error is final.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            max_total_backoff: Duration::ZERO,
            seed: 0,
        }
    }

    /// The checkpoint-write default: three attempts from a 10 ms base
    /// (the envelope the old ad-hoc loop provided), now with a per-sleep
    /// cap, a 500 ms total-sleep ceiling, and jitter.
    pub fn checkpoint_default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            max_total_backoff: Duration::from_millis(500),
            seed: 0xC4EC_909E,
        }
    }

    /// Replaces the jitter seed (derive it from the run seed to keep
    /// whole-run schedules reproducible).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether this policy ever retries.
    pub fn retries(&self) -> bool {
        self.max_attempts > 1
    }

    /// The planned sleep before retry number `retry` (1-based):
    /// `min(base · 2^(retry-1), max_backoff)`, scaled by a deterministic
    /// jitter factor in `[0.5, 1.0)` drawn from `(seed, retry)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(
                1u32.checked_shl(retry.saturating_sub(1))
                    .unwrap_or(u32::MAX),
            )
            .min(self.max_backoff.max(self.base_backoff));
        // 53 high-entropy bits → a uniform fraction in [0, 1), folded
        // into [0.5, 1.0) so backoff never collapses to zero.
        let r = splitmix64(self.seed ^ u64::from(retry));
        let frac = 0.5 + (r >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        exp.mul_f64(frac)
    }

    /// Runs `op` under this policy. `op` receives the 0-based attempt
    /// index. Fatal errors (per [`RetryClass`]) return immediately;
    /// retryable errors sleep the planned backoff and try again until
    /// attempts, the total-sleep cap, or the run budget is exhausted —
    /// in each of those cases the *last operation error* is returned
    /// (the caller's next `budget.probe()` surfaces budget errors, so
    /// no failure cause is masked).
    ///
    /// Planned sleeps are clamped to the budget's remaining deadline, so
    /// a retrying writer can never sleep through its own deadline.
    ///
    /// # Errors
    /// The last error `op` produced.
    pub fn run<T, E: RetryClass>(
        &self,
        budget: &RunBudget,
        mut op: impl FnMut(u32) -> Result<T, E>,
        mut on_retry: impl FnMut(u32, &E),
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut slept = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if !e.retryable() || attempt >= attempts || budget.exhausted() {
                        return Err(e);
                    }
                    let mut pause = self.backoff(attempt);
                    if slept + pause > self.max_total_backoff {
                        return Err(e);
                    }
                    if let Some(rem) = budget.remaining() {
                        if pause >= rem {
                            // Sleeping would blow the deadline; stop
                            // here and let the caller's probe surface
                            // `DeadlineExceeded`.
                            return Err(e);
                        }
                        pause = pause.min(rem);
                    }
                    slept += pause;
                    on_retry(attempt, &e);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }
}

/// One degradation a run took, as recorded in [`ResolutionHealth`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationEvent {
    /// The registered [`DEGRADATIONS`] name.
    pub name: &'static str,
    /// Human-readable context (which stage, which artifact, why).
    pub detail: String,
}

/// The honesty report attached to a resolution: every fallback taken and
/// every retry burned on the way to the result. A clean run has an empty
/// report; consumers (serving layers, `vaer-report`) can refuse or flag
/// degraded results without re-running anything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResolutionHealth {
    /// Degradations in the order they fired.
    pub degradations: Vec<DegradationEvent>,
    /// Retry sleeps burned across the run (checkpoint writes, stages).
    pub retries: u32,
}

impl ResolutionHealth {
    /// Whether the run took no fallback and burned no retries.
    pub fn is_clean(&self) -> bool {
        self.degradations.is_empty() && self.retries == 0
    }

    /// Whether a specific registered degradation fired.
    pub fn degraded(&self, name: &str) -> bool {
        self.degradations.iter().any(|d| d.name == name)
    }

    /// Records a degradation and makes it observable: bumps the
    /// `degrade.fired` counter and emits the event under the entry's own
    /// name. `name` must be a [`DEGRADATIONS`] entry (lint-enforced at
    /// call sites, debug-asserted here).
    pub fn degrade(&mut self, name: &'static str, detail: impl Into<String>) {
        let detail = detail.into();
        debug_assert!(
            DEGRADATIONS.binary_search(&name).is_ok(),
            "unregistered degradation `{name}`"
        );
        crate::obs::handles().degrade_fired.add(1);
        // Literal event names per arm (instead of `event(name, …)`) so
        // registry tooling sees each namespace exercised, mirroring
        // `StageKind::span`.
        match name {
            "degrade.plan.rebuild" => {
                vaer_obs::event(
                    "degrade.plan.rebuild",
                    &[("detail", detail.as_str().into())],
                );
            }
            "degrade.score.f32_fallback" => {
                vaer_obs::event(
                    "degrade.score.f32_fallback",
                    &[("detail", detail.as_str().into())],
                );
            }
            "degrade.stage.recompute" => {
                vaer_obs::event(
                    "degrade.stage.recompute",
                    &[("detail", detail.as_str().into())],
                );
            }
            _ => {}
        }
        self.degradations.push(DegradationEvent { name, detail });
    }

    /// Accounts retry sleeps (e.g. from a [`RetryPolicy::run`] pass).
    pub fn add_retries(&mut self, retries: u32) {
        self.retries += retries;
    }

    /// Folds another report into this one (used when a stage-local
    /// report joins the run-level one).
    pub fn merge(&mut self, other: &ResolutionHealth) {
        self.degradations.extend(other.degradations.iter().cloned());
        self.retries += other.retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradations_registry_is_sorted_unique() {
        for w in DEGRADATIONS.windows(2) {
            assert!(w[0] < w[1], "DEGRADATIONS must be sorted+unique: {w:?}");
        }
    }

    #[test]
    fn cancel_token_trips_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.probe());
        assert_eq!(t.probes(), 0, "fast-path probes are not counted");
        c.cancel();
        assert!(t.is_cancelled());
        assert!(t.probe());
        assert_eq!(t.probes(), 1);
    }

    #[test]
    fn probe_fuse_trips_on_exact_probe() {
        let t = CancelToken::new();
        t.cancel_after_probes(3);
        assert!(!t.probe());
        assert!(!t.probe());
        assert!(t.probe(), "third probe trips the fuse");
        assert!(t.is_cancelled());
        assert_eq!(t.probes(), 3);
    }

    #[test]
    fn budget_probe_surfaces_typed_errors() {
        let unlimited = RunBudget::unlimited();
        assert!(unlimited.probe("test.site").is_ok());
        assert!(unlimited.is_unlimited());

        let token = CancelToken::new();
        let b = RunBudget::unlimited().with_cancel(token.clone());
        assert!(b.probe("test.site").is_ok());
        token.cancel();
        match b.probe("test.site") {
            Err(CoreError::Cancelled(msg)) => assert!(msg.contains("test.site")),
            other => panic!("expected Cancelled, got {other:?}"),
        }

        let b = RunBudget::unlimited().with_deadline(Duration::ZERO);
        assert!(b.exhausted());
        match b.probe("test.site") {
            Err(CoreError::DeadlineExceeded(msg)) => assert!(msg.contains("test.site")),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn from_env_parses_deadline() {
        std::env::set_var("VAER_DEADLINE_MS", "50");
        let b = RunBudget::from_env();
        assert!(!b.is_unlimited());
        assert!(b.remaining().unwrap() <= Duration::from_millis(50));
        std::env::set_var("VAER_DEADLINE_MS", "not-a-number");
        assert!(RunBudget::from_env().is_unlimited());
        std::env::set_var("VAER_DEADLINE_MS", "0");
        assert!(RunBudget::from_env().is_unlimited());
        std::env::remove_var("VAER_DEADLINE_MS");
        assert!(RunBudget::from_env().is_unlimited());
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            max_total_backoff: Duration::from_secs(1),
            seed: 7,
        };
        for retry in 1..=5 {
            let a = p.backoff(retry);
            let b = p.backoff(retry);
            assert_eq!(a, b, "same (seed, retry) must give same backoff");
            let exp = Duration::from_millis(10 * (1 << (retry - 1)) as u64)
                .min(Duration::from_millis(40));
            assert!(a >= exp.mul_f64(0.5) && a < exp, "jitter in [0.5, 1.0)·exp");
        }
        assert_ne!(
            p.backoff(1),
            p.with_seed(8).backoff(1),
            "different seeds should almost surely jitter differently"
        );
    }

    #[test]
    fn retry_runs_until_success_and_reports_retries() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(2),
            max_total_backoff: Duration::from_millis(10),
            seed: 1,
        };
        let budget = RunBudget::unlimited();
        let mut retries = 0u32;
        let out: Result<u32, std::io::Error> = p.run(
            &budget,
            |attempt| {
                if attempt < 2 {
                    Err(std::io::Error::other("transient"))
                } else {
                    Ok(attempt)
                }
            },
            |_, _| retries += 1,
        );
        assert_eq!(out.unwrap(), 2);
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_stops_on_fatal_errors() {
        let p = RetryPolicy::checkpoint_default();
        let budget = RunBudget::unlimited();
        let mut calls = 0u32;
        let out: Result<(), std::io::Error> = p.run(
            &budget,
            |_| {
                calls += 1;
                Err(std::io::Error::new(
                    std::io::ErrorKind::PermissionDenied,
                    "fatal",
                ))
            },
            |_, _| {},
        );
        assert!(out.is_err());
        assert_eq!(calls, 1, "fatal errors must not be retried");
    }

    #[test]
    fn retry_respects_total_backoff_cap() {
        let p = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(4),
            max_total_backoff: Duration::from_millis(6),
            seed: 3,
        };
        let budget = RunBudget::unlimited();
        let mut calls = 0u32;
        let out: Result<(), std::io::Error> = p.run(
            &budget,
            |_| {
                calls += 1;
                Err(std::io::Error::other("transient"))
            },
            |_, _| {},
        );
        assert!(out.is_err());
        // 4ms-class sleeps (jittered to [2,4)ms) fit at most thrice
        // under a 6ms ceiling; far fewer than 100 attempts either way.
        assert!(
            calls < 6,
            "total-backoff cap must bound attempts, got {calls}"
        );
    }

    #[test]
    fn retry_never_sleeps_past_deadline() {
        let p = RetryPolicy {
            max_attempts: 50,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(20),
            max_total_backoff: Duration::from_secs(10),
            seed: 5,
        };
        let budget = RunBudget::unlimited().with_deadline(Duration::from_millis(25));
        let start = Instant::now();
        let out: Result<(), std::io::Error> = p.run(
            &budget,
            |_| Err(std::io::Error::other("transient")),
            |_, _| {},
        );
        assert!(out.is_err());
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "retry loop must stop near the deadline instead of sleeping on"
        );
    }

    #[test]
    fn core_error_retry_classification() {
        assert!(CoreError::Checkpoint("torn".into()).retryable());
        assert!(CoreError::Io(std::io::Error::other("transient")).retryable());
        assert!(!CoreError::Cancelled("c".into()).retryable());
        assert!(!CoreError::DeadlineExceeded("d".into()).retryable());
        assert!(!CoreError::BadInput("b".into()).retryable());
        assert!(!CoreError::Diverged("d".into()).retryable());
    }

    #[test]
    fn health_records_and_merges() {
        let mut h = ResolutionHealth::default();
        assert!(h.is_clean());
        h.degrade("degrade.score.f32_fallback", "int8 lane failed twice");
        h.add_retries(2);
        assert!(!h.is_clean());
        assert!(h.degraded("degrade.score.f32_fallback"));
        assert!(!h.degraded("degrade.plan.rebuild"));

        let mut outer = ResolutionHealth::default();
        outer.merge(&h);
        assert_eq!(outer, h);
    }
}
