//! Unsupervised entity representation learning — the VAE of paper §III.
//!
//! One VAE with parameters *shared across attributes* (§III-A, footnote 1):
//! every attribute value's IR is a training row, and at inference each
//! attribute of a tuple is encoded independently into `N(μ, σ)`. The
//! architecture follows Fig. 2 and Table III:
//!
//! ```text
//! IR (d) ──Dense──ReLU──► hidden ──┬─Dense─► μ (k)
//!                                  └─Dense─► log σ² (k)
//! z = μ + σ⊙ε  ──Dense──ReLU──► hidden ──Dense──► ÎR (d)
//! ```
//!
//! trained to maximise Eq. 1 / minimise Eq. 2: reconstruction error plus
//! `KL(q(z|IR) ‖ N(0, I))`.

use crate::CoreError;
use vaer_linalg::Matrix;
use vaer_nn::schedule::minibatches;
use vaer_nn::{
    sharded_step_pooled, Adam, Dense, Graph, GraphPool, Initializer, NnRng, Optimizer, ParamStore,
    SeedableRng, Tensor,
};
use vaer_stats::gaussian::DiagGaussian;

/// Representation-model hyper-parameters (Table III, scaled down by
/// default — see DESIGN.md).
#[derive(Debug, Clone)]
pub struct ReprConfig {
    /// IR input dimensionality `d`.
    pub ir_dim: usize,
    /// Encoder/decoder hidden width (paper: 200).
    pub hidden_dim: usize,
    /// Latent dimensionality `k` (paper: 100).
    pub latent_dim: usize,
    /// Training epochs over the IR corpus.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f32,
    /// Weight of the KL term (β; 1.0 = the plain VAE of the paper).
    pub kl_weight: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReprConfig {
    fn default() -> Self {
        Self {
            ir_dim: 64,
            hidden_dim: 96,
            latent_dim: 32,
            epochs: 12,
            batch_size: 64,
            learning_rate: 1e-3,
            kl_weight: 1.0,
            seed: 0xAE01,
        }
    }
}

impl ReprConfig {
    /// A fast configuration for unit tests.
    pub fn fast(ir_dim: usize) -> Self {
        Self {
            ir_dim,
            hidden_dim: 32,
            latent_dim: 8,
            epochs: 6,
            batch_size: 32,
            ..Self::default()
        }
    }
}

/// Per-epoch training statistics.
///
/// All series are computed unconditionally (they are cheap reads of
/// values the tape already holds); when [`vaer_obs`] is enabled the same
/// numbers are also emitted as one `vae.epoch` event per epoch.
#[derive(Debug, Clone, Default)]
pub struct ReprTrainStats {
    /// Mean total loss (ELBO objective) per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean reconstruction term per epoch.
    pub epoch_recon: Vec<f32>,
    /// Mean (β-weighted) KL term per epoch.
    pub epoch_kl: Vec<f32>,
    /// Mean L2 norm of the merged parameter gradient per epoch.
    pub epoch_grad_norm: Vec<f32>,
}

/// The trained representation model (the `φ` of the paper).
#[derive(Debug, Clone)]
pub struct ReprModel {
    store: ParamStore,
    config: ReprConfig,
}

/// Process-wide count of full encoder passes ([`ReprModel::encode`] /
/// [`ReprModel::encode_matrices`] calls). The frozen-encoder cache exists
/// to keep this at one per table per model; benches assert on it.
static ENCODE_CALLS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Number of encoder passes performed since the last
/// [`reset_encode_calls`] (process-wide).
pub fn encode_calls() -> usize {
    ENCODE_CALLS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Resets the encoder-pass counter (test/bench instrumentation).
pub fn reset_encode_calls() {
    ENCODE_CALLS.store(0, std::sync::atomic::Ordering::Relaxed);
}

/// Layer-name constants shared with the Siamese matcher (which rebinds the
/// encoder by these names) and the transfer serialiser.
pub const ENC_HIDDEN: &str = "repr.enc.hidden";
pub const ENC_MU: &str = "repr.enc.mu";
pub const ENC_LOGVAR: &str = "repr.enc.logvar";
const DEC_HIDDEN: &str = "repr.dec.hidden";
const DEC_OUT: &str = "repr.dec.out";

impl ReprModel {
    /// Trains the VAE on an `n x ir_dim` matrix of IRs (one attribute value
    /// per row).
    ///
    /// # Errors
    /// [`CoreError::BadInput`] when `irs` is empty or its width disagrees
    /// with `config.ir_dim`.
    pub fn train(irs: &Matrix, config: &ReprConfig) -> Result<(Self, ReprTrainStats), CoreError> {
        if irs.rows() == 0 {
            return Err(CoreError::BadInput("no IRs to train on".into()));
        }
        if irs.cols() != config.ir_dim {
            return Err(CoreError::BadInput(format!(
                "IR width {} != configured ir_dim {}",
                irs.cols(),
                config.ir_dim
            )));
        }
        let mut rng = NnRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let enc_hidden = Dense::new(
            &mut store,
            ENC_HIDDEN,
            config.ir_dim,
            config.hidden_dim,
            Initializer::He,
            &mut rng,
        );
        let enc_mu = Dense::new(
            &mut store,
            ENC_MU,
            config.hidden_dim,
            config.latent_dim,
            Initializer::Xavier,
            &mut rng,
        );
        let enc_logvar = Dense::new(
            &mut store,
            ENC_LOGVAR,
            config.hidden_dim,
            config.latent_dim,
            Initializer::Xavier,
            &mut rng,
        );
        let dec_hidden = Dense::new(
            &mut store,
            DEC_HIDDEN,
            config.latent_dim,
            config.hidden_dim,
            Initializer::He,
            &mut rng,
        );
        let dec_out = Dense::new(
            &mut store,
            DEC_OUT,
            config.hidden_dim,
            config.ir_dim,
            Initializer::Xavier,
            &mut rng,
        );

        let mut adam = Adam::with_rate(config.learning_rate);
        let mut stats = ReprTrainStats::default();
        let mut noise_rng = NnRng::seed_from_u64(config.seed ^ 0xE95);
        // One tape per shard slot, reused for the whole training run.
        let mut tapes = GraphPool::new();
        let _span = vaer_obs::span("repr.train");
        for epoch in 0..config.epochs {
            let mut epoch_loss = 0.0f32;
            let mut epoch_recon = 0.0f32;
            let mut epoch_kl = 0.0f32;
            let mut epoch_grad = 0.0f32;
            let mut batches = 0usize;
            for batch in minibatches(irs.rows(), config.batch_size, &mut rng) {
                // Batch inputs and noise are drawn up front so the RNG
                // stream is independent of how many gradient shards the
                // runtime decides to use.
                let x = irs.select_rows(&batch);
                let eps = gaussian_matrix(batch.len(), config.latent_dim, &mut noise_rng);
                let batch_len = batch.len();
                // Per-shard loss decomposition, merged with the same
                // shard-size weights sharded_step applies to the loss.
                let parts = std::sync::Mutex::new((0.0f64, 0.0f64));
                let step = sharded_step_pooled(&mut tapes, batch_len, |g, rows| {
                    let n = rows.len();
                    let xt = g.input_rows(&x, rows.start, rows.end);
                    // Encoder.
                    let h = enc_hidden.forward(g, &store, xt);
                    let h = g.relu(h);
                    let mu = enc_mu.forward(g, &store, h);
                    let logvar = enc_logvar.forward(g, &store, h);
                    // Reparameterisation: z = μ + exp(½ logvar) ⊙ ε.
                    let half_logvar = g.scale(logvar, 0.5);
                    let sigma = g.exp(half_logvar);
                    let eps_t = g.input_rows(&eps, rows.start, rows.end);
                    let noise = g.mul(sigma, eps_t);
                    let z = g.add(mu, noise);
                    // Decoder.
                    let dh = dec_hidden.forward(g, &store, z);
                    let dh = g.relu(dh);
                    let recon = dec_out.forward(g, &store, dh);
                    // Reconstruction: mean squared error over the shard.
                    let diff = g.sub(recon, xt);
                    let sq = g.square(diff);
                    let recon_loss = g.mean_all(sq);
                    let recon_loss = g.scale(recon_loss, config.ir_dim as f32);
                    // KL(q ‖ N(0, I)) = -½ Σ (1 + logvar - μ² - exp(logvar)),
                    // averaged over the shard (both loss terms are per-row
                    // means, as sharded_step's merge requires).
                    let mu_sq = g.square(mu);
                    let exp_logvar = g.exp(logvar);
                    let inner = g.add_scalar(logvar, 1.0);
                    let inner = g.sub(inner, mu_sq);
                    let inner = g.sub(inner, exp_logvar);
                    let kl_sum = g.sum_all(inner);
                    let kl = g.scale(kl_sum, -0.5 / n as f32);
                    let kl = g.scale(kl, config.kl_weight);
                    // Forward values are eager, so the decomposition is a
                    // free read off the tape. Uncontended by construction:
                    // shards finish building at different times.
                    let w = f64::from(n as f32 / batch_len.max(1) as f32);
                    let mut p = parts.lock().expect("loss parts poisoned");
                    p.0 += w * f64::from(g.value(recon_loss).get(0, 0));
                    p.1 += w * f64::from(g.value(kl).get(0, 0));
                    drop(p);
                    g.add(recon_loss, kl)
                });
                let (recon_part, kl_part) = parts.into_inner().expect("loss parts poisoned");
                epoch_loss += step.loss;
                epoch_recon += recon_part as f32;
                epoch_kl += kl_part as f32;
                let mut grad_sq = 0.0f64;
                for (_, grad) in &step.grads {
                    for &v in grad.as_slice() {
                        grad_sq += f64::from(v) * f64::from(v);
                    }
                }
                epoch_grad += grad_sq.sqrt() as f32;
                batches += 1;
                adam.step(&mut store, &step.grads);
            }
            let denom = batches.max(1) as f32;
            stats.epoch_losses.push(epoch_loss / denom);
            stats.epoch_recon.push(epoch_recon / denom);
            stats.epoch_kl.push(epoch_kl / denom);
            stats.epoch_grad_norm.push(epoch_grad / denom);
            if vaer_obs::enabled() {
                let requests = tapes.buf_requests();
                let hit_rate = if requests == 0 {
                    0.0
                } else {
                    1.0 - tapes.fresh_allocs() as f64 / requests as f64
                };
                vaer_obs::event(
                    "vae.epoch",
                    &[
                        ("epoch", epoch.into()),
                        ("loss", (epoch_loss / denom).into()),
                        ("recon", (epoch_recon / denom).into()),
                        ("kl", (epoch_kl / denom).into()),
                        ("grad_norm", (epoch_grad / denom).into()),
                        ("tape_fresh_allocs", tapes.fresh_allocs().into()),
                        ("tape_hit_rate", hit_rate.into()),
                    ],
                );
            }
        }
        Ok((
            Self {
                store,
                config: config.clone(),
            },
            stats,
        ))
    }

    /// The model configuration.
    pub fn config(&self) -> &ReprConfig {
        &self.config
    }

    /// The parameter store (encoder + decoder weights).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Encoder forward pass on a tape — reused by the Siamese matcher so
    /// both share one implementation of Fig. 2's encoding layer.
    ///
    /// Returns `(μ, σ)` tensors of shape `batch x latent_dim`, binding the
    /// encoder parameters from `store` (pass the matcher's own store to
    /// fine-tune a copy).
    pub fn encoder_forward(g: &mut Graph, store: &ParamStore, x: Tensor) -> (Tensor, Tensor) {
        let enc_hidden = Dense::from_store(store, ENC_HIDDEN)
            .expect("store is missing the repr encoder hidden layer");
        let enc_mu = Dense::from_store(store, ENC_MU).expect("store is missing the repr mu head");
        let enc_logvar =
            Dense::from_store(store, ENC_LOGVAR).expect("store is missing the repr logvar head");
        let h = enc_hidden.forward(g, store, x);
        let h = g.relu(h);
        let mu = enc_mu.forward(g, store, h);
        let logvar = enc_logvar.forward(g, store, h);
        let half = g.scale(logvar, 0.5);
        let sigma = g.exp(half);
        (mu, sigma)
    }

    /// Encodes a batch of IRs into diagonal Gaussians (one per row).
    ///
    /// Rows are encoded independently, so large batches are split into
    /// contiguous row shards on the [`vaer_linalg::runtime`] worker pool;
    /// each row's result is bit-identical at any thread count.
    pub fn encode(&self, irs: &Matrix) -> Vec<DiagGaussian> {
        let (mu, sigma) = self.encode_matrices(irs);
        (0..mu.rows())
            .map(|i| DiagGaussian::new(mu.row(i).to_vec(), sigma.row(i).to_vec()))
            .collect()
    }

    /// Encodes a batch of IRs into `(μ, σ)` matrices of shape
    /// `rows x latent_dim` — the matrix form backing [`Self::encode`] and
    /// the frozen-encoder cache ([`crate::latent::LatentTable`]).
    ///
    /// Each call is one full encoder pass and increments the
    /// process-wide [`encode_calls`] counter; row results are
    /// bit-identical at any thread count and for any row batching.
    pub fn encode_matrices(&self, irs: &Matrix) -> (Matrix, Matrix) {
        assert_eq!(irs.cols(), self.config.ir_dim, "IR width mismatch");
        ENCODE_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let o = crate::obs::handles();
        o.encode_calls.incr();
        o.encode_rows.add(irs.rows() as u64);
        let _span = vaer_obs::span("repr.encode");
        let latent = self.config.latent_dim;
        if irs.rows() == 0 {
            return (Matrix::zeros(0, latent), Matrix::zeros(0, latent));
        }
        const MIN_ROWS_PER_SHARD: usize = 64;
        let shards = vaer_linalg::runtime::map_shards(irs.rows(), MIN_ROWS_PER_SHARD, |rows| {
            let mut g = Graph::new();
            let x = g.input_rows(irs, rows.start, rows.end);
            let (mu, sigma) = Self::encoder_forward(&mut g, &self.store, x);
            (g.value(mu).clone(), g.value(sigma).clone())
        });
        let mut mu = Matrix::zeros(irs.rows(), latent);
        let mut sigma = Matrix::zeros(irs.rows(), latent);
        let mut offset = 0;
        for (mu_s, sig_s) in shards {
            let n = mu_s.rows() * latent;
            mu.as_mut_slice()[offset..offset + n].copy_from_slice(mu_s.as_slice());
            sigma.as_mut_slice()[offset..offset + n].copy_from_slice(sig_s.as_slice());
            offset += n;
        }
        (mu, sigma)
    }

    /// A cheap content hash of the parameter store, used by the
    /// frozen-encoder cache to detect that a model's weights changed
    /// (e.g. after transfer loads different parameters).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the serialised parameters.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.store.to_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Decodes latent samples back to IR space (the generative direction).
    pub fn decode(&self, z: &Matrix) -> Matrix {
        assert_eq!(z.cols(), self.config.latent_dim, "latent width mismatch");
        let dec_hidden =
            Dense::from_store(&self.store, DEC_HIDDEN).expect("decoder hidden layer missing");
        let dec_out = Dense::from_store(&self.store, DEC_OUT).expect("decoder output missing");
        let mut g = Graph::new();
        let zt = g.input(z.clone());
        let h = dec_hidden.forward(&mut g, &self.store, zt);
        let h = g.relu(h);
        let out = dec_out.forward(&mut g, &self.store, h);
        g.value(out).clone()
    }

    /// Serialises the model (config header + parameters).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"VAERREPR");
        for v in [
            self.config.ir_dim as u32,
            self.config.hidden_dim as u32,
            self.config.latent_dim as u32,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.store.to_bytes());
        out
    }

    /// Deserialises a model produced by [`ReprModel::to_bytes`].
    ///
    /// # Errors
    /// [`CoreError::Model`] on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        if bytes.len() < 20 || &bytes[..8] != b"VAERREPR" {
            return Err(CoreError::Model(vaer_nn::NnError::BadFormat(
                "missing VAERREPR magic".into(),
            )));
        }
        let dim = |i: usize| {
            u32::from_le_bytes(bytes[8 + 4 * i..12 + 4 * i].try_into().unwrap()) as usize
        };
        let store = ParamStore::from_bytes(&bytes[20..])?;
        let config = ReprConfig {
            ir_dim: dim(0),
            hidden_dim: dim(1),
            latent_dim: dim(2),
            ..ReprConfig::default()
        };
        Ok(Self { store, config })
    }
}

fn gaussian_matrix(rows: usize, cols: usize, rng: &mut NnRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| vaer_stats::gaussian::standard_normal(rng))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::XorShiftRng;

    /// IRs drawn from two well-separated clusters.
    fn clustered_irs(n_per: usize, dim: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = XorShiftRng::new(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                let center = if c == 0 { 1.0 } else { -1.0 };
                let row: Vec<f32> = (0..dim).map(|_| center + 0.1 * rng.gaussian()).collect();
                rows.push(row);
                labels.push(c);
            }
        }
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        (Matrix::from_vec(2 * n_per, dim, flat), labels)
    }

    #[test]
    fn training_reduces_loss() {
        let (irs, _) = clustered_irs(40, 8, 1);
        let config = ReprConfig {
            epochs: 10,
            ..ReprConfig::fast(8)
        };
        let (_, stats) = ReprModel::train(&irs, &config).unwrap();
        let first = stats.epoch_losses[0];
        let last = *stats.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn latent_space_preserves_cluster_structure() {
        let (irs, labels) = clustered_irs(40, 8, 2);
        let (model, _) = ReprModel::train(&irs, &ReprConfig::fast(8)).unwrap();
        let reprs = model.encode(&irs);
        // Mean within-cluster μ distance should be far below between-cluster.
        let mut within = 0.0f32;
        let mut between = 0.0f32;
        let mut n_within = 0;
        let mut n_between = 0;
        for i in (0..reprs.len()).step_by(7) {
            for j in (i + 1..reprs.len()).step_by(5) {
                let d = vaer_linalg::vector::euclidean(&reprs[i].mu, &reprs[j].mu);
                if labels[i] == labels[j] {
                    within += d;
                    n_within += 1;
                } else {
                    between += d;
                    n_between += 1;
                }
            }
        }
        let within = within / n_within.max(1) as f32;
        let between = between / n_between.max(1) as f32;
        assert!(
            between > 1.5 * within,
            "within {within} vs between {between}"
        );
    }

    #[test]
    fn encode_shapes_and_sigma_positive() {
        let (irs, _) = clustered_irs(10, 8, 3);
        let (model, _) = ReprModel::train(&irs, &ReprConfig::fast(8)).unwrap();
        let reprs = model.encode(&irs);
        assert_eq!(reprs.len(), 20);
        for r in &reprs {
            assert_eq!(r.dims(), model.config().latent_dim);
            assert!(r.sigma.iter().all(|&s| s > 0.0), "sigma must be positive");
        }
        assert!(model.encode(&Matrix::zeros(0, 8)).is_empty());
    }

    #[test]
    fn decode_round_trip_is_reasonable() {
        let (irs, _) = clustered_irs(50, 8, 4);
        let config = ReprConfig {
            epochs: 30,
            kl_weight: 0.1,
            ..ReprConfig::fast(8)
        };
        let (model, _) = ReprModel::train(&irs, &config).unwrap();
        let reprs = model.encode(&irs);
        let mu_mat = Matrix::from_vec(
            reprs.len(),
            model.config().latent_dim,
            reprs.iter().flat_map(|r| r.mu.iter().copied()).collect(),
        );
        let recon = model.decode(&mu_mat);
        // Reconstruction should at least recover the cluster sign pattern.
        let mut sign_match = 0;
        let mut total = 0;
        for i in 0..irs.rows() {
            for j in 0..irs.cols() {
                total += 1;
                if (recon.get(i, j) > 0.0) == (irs.get(i, j) > 0.0) {
                    sign_match += 1;
                }
            }
        }
        let frac = sign_match as f32 / total as f32;
        assert!(frac > 0.8, "sign agreement {frac}");
    }

    #[test]
    fn serialization_round_trip() {
        let (irs, _) = clustered_irs(10, 8, 5);
        let (model, _) = ReprModel::train(&irs, &ReprConfig::fast(8)).unwrap();
        let bytes = model.to_bytes();
        let back = ReprModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.config().latent_dim, model.config().latent_dim);
        let a = model.encode(&irs);
        let b = back.encode(&irs);
        assert_eq!(a[3].mu, b[3].mu);
        assert!(ReprModel::from_bytes(b"garbage").is_err());
    }

    #[test]
    fn input_validation() {
        assert!(ReprModel::train(&Matrix::zeros(0, 8), &ReprConfig::fast(8)).is_err());
        assert!(ReprModel::train(&Matrix::zeros(4, 5), &ReprConfig::fast(8)).is_err());
    }
}
