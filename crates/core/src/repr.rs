//! Unsupervised entity representation learning — the VAE of paper §III.
//!
//! One VAE with parameters *shared across attributes* (§III-A, footnote 1):
//! every attribute value's IR is a training row, and at inference each
//! attribute of a tuple is encoded independently into `N(μ, σ)`. The
//! architecture follows Fig. 2 and Table III:
//!
//! ```text
//! IR (d) ──Dense──ReLU──► hidden ──┬─Dense─► μ (k)
//!                                  └─Dense─► log σ² (k)
//! z = μ + σ⊙ε  ──Dense──ReLU──► hidden ──Dense──► ÎR (d)
//! ```
//!
//! trained to maximise Eq. 1 / minimise Eq. 2: reconstruction error plus
//! `KL(q(z|IR) ‖ N(0, I))`.

use crate::checkpoint::{put_blob, put_f32_vec, put_rng_state, CheckpointStore, Cur};
use crate::resilience::RunBudget;
use crate::CoreError;
use vaer_linalg::Matrix;
use vaer_nn::schedule::minibatches;
use vaer_nn::{
    sharded_step_pooled, Adam, Dense, Graph, GraphPool, Initializer, NnRng, Optimizer, ParamStore,
    SeedableRng, Tensor,
};
use vaer_stats::gaussian::DiagGaussian;

/// Representation-model hyper-parameters (Table III, scaled down by
/// default — see DESIGN.md).
#[derive(Debug, Clone)]
pub struct ReprConfig {
    /// IR input dimensionality `d`.
    pub ir_dim: usize,
    /// Encoder/decoder hidden width (paper: 200).
    pub hidden_dim: usize,
    /// Latent dimensionality `k` (paper: 100).
    pub latent_dim: usize,
    /// Training epochs over the IR corpus.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f32,
    /// Weight of the KL term (β; 1.0 = the plain VAE of the paper).
    pub kl_weight: f32,
    /// RNG seed.
    pub seed: u64,
    /// Divergence guard: an epoch whose mean gradient norm exceeds
    /// `grad_spike_factor × max(prev_epoch_norm, 1)` is rolled back and
    /// retried with halved learning rate.
    pub grad_spike_factor: f32,
    /// Divergence rollbacks allowed before training fails with
    /// [`CoreError::Diverged`].
    pub max_rollbacks: u32,
}

impl Default for ReprConfig {
    fn default() -> Self {
        Self {
            ir_dim: 64,
            hidden_dim: 96,
            latent_dim: 32,
            epochs: 12,
            batch_size: 64,
            learning_rate: 1e-3,
            kl_weight: 1.0,
            seed: 0xAE01,
            grad_spike_factor: 100.0,
            max_rollbacks: 5,
        }
    }
}

impl ReprConfig {
    /// A fast configuration for unit tests.
    pub fn fast(ir_dim: usize) -> Self {
        Self {
            ir_dim,
            hidden_dim: 32,
            latent_dim: 8,
            epochs: 6,
            batch_size: 32,
            ..Self::default()
        }
    }
}

/// Per-epoch training statistics.
///
/// All series are computed unconditionally (they are cheap reads of
/// values the tape already holds); when [`vaer_obs`] is enabled the same
/// numbers are also emitted as one `vae.epoch` event per epoch.
#[derive(Debug, Clone, Default)]
pub struct ReprTrainStats {
    /// Mean total loss (ELBO objective) per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean reconstruction term per epoch.
    pub epoch_recon: Vec<f32>,
    /// Mean (β-weighted) KL term per epoch.
    pub epoch_kl: Vec<f32>,
    /// Mean L2 norm of the merged parameter gradient per epoch.
    pub epoch_grad_norm: Vec<f32>,
}

/// The trained representation model (the `φ` of the paper).
#[derive(Debug, Clone)]
pub struct ReprModel {
    store: ParamStore,
    config: ReprConfig,
}

/// Process-wide count of full encoder passes ([`ReprModel::encode`] /
/// [`ReprModel::encode_matrices`] calls). The frozen-encoder cache exists
/// to keep this at one per table per model; benches assert on it.
static ENCODE_CALLS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Number of encoder passes performed since the last
/// [`reset_encode_calls`] (process-wide).
pub fn encode_calls() -> usize {
    ENCODE_CALLS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Resets the encoder-pass counter (test/bench instrumentation).
pub fn reset_encode_calls() {
    ENCODE_CALLS.store(0, std::sync::atomic::Ordering::Relaxed);
}

/// Layer-name constants shared with the Siamese matcher (which rebinds the
/// encoder by these names) and the transfer serialiser.
pub const ENC_HIDDEN: &str = "repr.enc.hidden";
pub const ENC_MU: &str = "repr.enc.mu";
pub const ENC_LOGVAR: &str = "repr.enc.logvar";
const DEC_HIDDEN: &str = "repr.dec.hidden";
const DEC_OUT: &str = "repr.dec.out";

impl ReprModel {
    /// Trains the VAE on an `n x ir_dim` matrix of IRs (one attribute value
    /// per row).
    ///
    /// # Errors
    /// [`CoreError::BadInput`] when `irs` is empty or its width disagrees
    /// with `config.ir_dim`.
    pub fn train(irs: &Matrix, config: &ReprConfig) -> Result<(Self, ReprTrainStats), CoreError> {
        Self::train_impl(irs, config, None, &RunBudget::unlimited())
    }

    /// [`train`](Self::train) under a [`RunBudget`]: the budget is probed
    /// at the top of every epoch — including epochs retried by the
    /// divergence guard, so a flapping trainer consumes its deadline
    /// instead of looping past it.
    ///
    /// # Errors
    /// Same as [`train`](Self::train), plus [`CoreError::Cancelled`] /
    /// [`CoreError::DeadlineExceeded`] when the budget trips.
    pub fn train_budgeted(
        irs: &Matrix,
        config: &ReprConfig,
        budget: &RunBudget,
    ) -> Result<(Self, ReprTrainStats), CoreError> {
        Self::train_impl(irs, config, None, budget)
    }

    /// Like [`train`](Self::train), but durable: training state (weights,
    /// optimizer moments, RNG streams, per-epoch stats) is snapshotted to
    /// `snapshots` every `every` epochs plus once after the final epoch,
    /// and — when a valid snapshot for this configuration already exists —
    /// training **resumes** from it instead of starting over. A resumed
    /// run is bit-identical to an uninterrupted one.
    ///
    /// Torn or corrupt snapshots are skipped in favour of the newest valid
    /// one; a valid snapshot whose dimensions disagree with `config` is an
    /// error (it belongs to a different run).
    ///
    /// # Errors
    /// [`CoreError::BadInput`] on malformed `irs`, [`CoreError::Io`] /
    /// [`CoreError::Checkpoint`] on snapshot problems,
    /// [`CoreError::Diverged`] if the divergence guard exhausts its
    /// retries.
    pub fn train_checkpointed(
        irs: &Matrix,
        config: &ReprConfig,
        snapshots: &CheckpointStore,
        every: usize,
    ) -> Result<(Self, ReprTrainStats), CoreError> {
        Self::train_impl(
            irs,
            config,
            Some((snapshots, every.max(1))),
            &RunBudget::unlimited(),
        )
    }

    /// [`train_checkpointed`](Self::train_checkpointed) under a
    /// [`RunBudget`] (see [`train_budgeted`](Self::train_budgeted)).
    ///
    /// # Errors
    /// Same as [`train_checkpointed`](Self::train_checkpointed), plus
    /// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] when the
    /// budget trips.
    pub fn train_checkpointed_budgeted(
        irs: &Matrix,
        config: &ReprConfig,
        snapshots: &CheckpointStore,
        every: usize,
        budget: &RunBudget,
    ) -> Result<(Self, ReprTrainStats), CoreError> {
        Self::train_impl(irs, config, Some((snapshots, every.max(1))), budget)
    }

    fn train_impl(
        irs: &Matrix,
        config: &ReprConfig,
        snapshots: Option<(&CheckpointStore, usize)>,
        budget: &RunBudget,
    ) -> Result<(Self, ReprTrainStats), CoreError> {
        if irs.rows() == 0 {
            return Err(CoreError::BadInput("no IRs to train on".into()));
        }
        if irs.cols() != config.ir_dim {
            return Err(CoreError::BadInput(format!(
                "IR width {} != configured ir_dim {}",
                irs.cols(),
                config.ir_dim
            )));
        }
        let resumed = match snapshots {
            Some((ckpt, _)) => Self::resume_state(ckpt, config)?,
            None => None,
        };
        let mut state = match resumed {
            Some(s) => s,
            None => VaeTrainState::fresh(config),
        };
        Self::train_loop(irs, config, &mut state, snapshots, budget)?;
        Ok((
            Self {
                store: state.store,
                config: config.clone(),
            },
            state.stats,
        ))
    }

    /// Scans the snapshot directory newest-first for a state this run can
    /// resume from. Torn/corrupt snapshots are skipped (graceful
    /// degradation); a valid snapshot for a *different* configuration is
    /// refused loudly rather than silently retraining over it.
    fn resume_state(
        ckpt: &CheckpointStore,
        config: &ReprConfig,
    ) -> Result<Option<VaeTrainState>, CoreError> {
        for &seq in ckpt.list()?.iter().rev() {
            let Ok(payload) = ckpt.read(seq) else {
                crate::obs::handles().checkpoint_corrupt_skipped.add(1);
                continue;
            };
            let Ok((state, dims)) = VaeTrainState::from_bytes(&payload) else {
                crate::obs::handles().checkpoint_corrupt_skipped.add(1);
                continue;
            };
            state.validate(dims, config)?;
            vaer_obs::event(
                "vae.resume",
                &[("seq", seq.into()), ("epoch", state.epoch.into())],
            );
            return Ok(Some(state));
        }
        Ok(None)
    }

    fn train_loop(
        irs: &Matrix,
        config: &ReprConfig,
        state: &mut VaeTrainState,
        snapshots: Option<(&CheckpointStore, usize)>,
        budget: &RunBudget,
    ) -> Result<(), CoreError> {
        // One tape per shard slot, reused for the whole training run.
        let mut tapes = GraphPool::new();
        let _span = vaer_obs::span("repr.train");
        let mut rollbacks = 0u32;
        while state.epoch < config.epochs {
            // Probed every epoch, *including* divergence-guard retries
            // (`continue` below re-enters here), so a flapping trainer
            // consumes its run budget instead of looping past it. State is
            // only mutated after the probe, so a trip loses nothing.
            budget.probe("repr.train")?;
            // Crash-test kill switch: a `vae.epoch=panic@N` failpoint
            // aborts the run at the top of the Nth epoch.
            vaer_fault::trigger("vae.epoch");
            // In-memory guard for the divergence rollback. Restoring it
            // also rewinds the RNG streams, so a retried epoch sees the
            // same batches (only the halved learning rate differs).
            let guard = state.clone();
            let mut epoch_loss = 0.0f32;
            let mut epoch_recon = 0.0f32;
            let mut epoch_kl = 0.0f32;
            let mut epoch_grad = 0.0f32;
            let mut batches = 0usize;
            let mut diverged: Option<String> = None;
            {
                let VaeTrainState {
                    epoch,
                    store,
                    adam,
                    rng,
                    noise_rng,
                    ..
                } = &mut *state;
                let missing = |name: &str| {
                    CoreError::Checkpoint(format!("training state is missing layer '{name}'"))
                };
                let enc_hidden =
                    Dense::from_store(store, ENC_HIDDEN).ok_or_else(|| missing(ENC_HIDDEN))?;
                let enc_mu = Dense::from_store(store, ENC_MU).ok_or_else(|| missing(ENC_MU))?;
                let enc_logvar =
                    Dense::from_store(store, ENC_LOGVAR).ok_or_else(|| missing(ENC_LOGVAR))?;
                let dec_hidden =
                    Dense::from_store(store, DEC_HIDDEN).ok_or_else(|| missing(DEC_HIDDEN))?;
                let dec_out = Dense::from_store(store, DEC_OUT).ok_or_else(|| missing(DEC_OUT))?;
                for batch in minibatches(irs.rows(), config.batch_size, rng) {
                    // Batch inputs and noise are drawn up front so the RNG
                    // stream is independent of how many gradient shards the
                    // runtime decides to use.
                    let x = irs.select_rows(&batch);
                    let eps = gaussian_matrix(batch.len(), config.latent_dim, noise_rng);
                    let batch_len = batch.len();
                    // Per-shard loss decomposition, merged with the same
                    // shard-size weights sharded_step applies to the loss.
                    let parts = std::sync::Mutex::new((0.0f64, 0.0f64));
                    let store_ro: &ParamStore = store;
                    let step = sharded_step_pooled(&mut tapes, batch_len, |g, rows| {
                        let n = rows.len();
                        let xt = g.input_rows(&x, rows.start, rows.end);
                        // Encoder.
                        let h = enc_hidden.forward(g, store_ro, xt);
                        let h = g.relu(h);
                        let mu = enc_mu.forward(g, store_ro, h);
                        let logvar = enc_logvar.forward(g, store_ro, h);
                        // Reparameterisation: z = μ + exp(½ logvar) ⊙ ε.
                        let half_logvar = g.scale(logvar, 0.5);
                        let sigma = g.exp(half_logvar);
                        let eps_t = g.input_rows(&eps, rows.start, rows.end);
                        let noise = g.mul(sigma, eps_t);
                        let z = g.add(mu, noise);
                        // Decoder.
                        let dh = dec_hidden.forward(g, store_ro, z);
                        let dh = g.relu(dh);
                        let recon = dec_out.forward(g, store_ro, dh);
                        // Reconstruction: mean squared error over the shard.
                        let diff = g.sub(recon, xt);
                        let sq = g.square(diff);
                        let recon_loss = g.mean_all(sq);
                        let recon_loss = g.scale(recon_loss, config.ir_dim as f32);
                        // KL(q ‖ N(0, I)) = -½ Σ (1 + logvar - μ² - exp(logvar)),
                        // averaged over the shard (both loss terms are per-row
                        // means, as sharded_step's merge requires).
                        let mu_sq = g.square(mu);
                        let exp_logvar = g.exp(logvar);
                        let inner = g.add_scalar(logvar, 1.0);
                        let inner = g.sub(inner, mu_sq);
                        let inner = g.sub(inner, exp_logvar);
                        let kl_sum = g.sum_all(inner);
                        let kl = g.scale(kl_sum, -0.5 / n as f32);
                        let kl = g.scale(kl, config.kl_weight);
                        // Forward values are eager, so the decomposition is a
                        // free read off the tape. Uncontended by construction:
                        // shards finish building at different times.
                        let w = f64::from(n as f32 / batch_len.max(1) as f32);
                        let mut p = parts.lock().unwrap_or_else(|e| e.into_inner());
                        p.0 += w * f64::from(g.value(recon_loss).get(0, 0));
                        p.1 += w * f64::from(g.value(kl).get(0, 0));
                        drop(p);
                        g.add(recon_loss, kl)
                    });
                    let (recon_part, kl_part) =
                        parts.into_inner().unwrap_or_else(|e| e.into_inner());
                    let mut loss = step.loss;
                    // Numeric-fault injection: poison the loss as a NaN
                    // gradient would.
                    if matches!(
                        vaer_fault::check("vae.grads"),
                        Some(vaer_fault::Action::Nan)
                    ) {
                        loss = f32::NAN;
                    }
                    let mut grad_sq = 0.0f64;
                    for (_, grad) in &step.grads {
                        for &v in grad.as_slice() {
                            grad_sq += f64::from(v) * f64::from(v);
                        }
                    }
                    // Divergence guard: catch the poison *before* it
                    // reaches the parameters, so the epoch-start guard
                    // snapshot is still clean.
                    if !loss.is_finite() || !grad_sq.is_finite() {
                        diverged = Some(format!("non-finite loss/gradient in epoch {epoch}"));
                        break;
                    }
                    epoch_loss += loss;
                    epoch_recon += recon_part as f32;
                    epoch_kl += kl_part as f32;
                    epoch_grad += grad_sq.sqrt() as f32;
                    batches += 1;
                    adam.step(store, &step.grads);
                }
            }
            let denom = batches.max(1) as f32;
            let mean_grad = epoch_grad / denom;
            if diverged.is_none() {
                if let Some(&prev) = state.stats.epoch_grad_norm.last() {
                    if mean_grad > config.grad_spike_factor * prev.max(1.0) {
                        diverged = Some(format!(
                            "gradient-norm spike in epoch {}: {mean_grad} vs {prev}",
                            state.epoch
                        ));
                    }
                }
            }
            if let Some(why) = diverged {
                rollbacks += 1;
                *state = guard;
                let lr = state.adam.learning_rate() * 0.5;
                state.adam.set_learning_rate(lr);
                crate::obs::handles().vae_rollbacks.add(1);
                vaer_obs::event(
                    "vae.rollback",
                    &[
                        ("epoch", state.epoch.into()),
                        ("reason", why.clone().into()),
                        ("lr", f64::from(lr).into()),
                        ("rollbacks", rollbacks.into()),
                    ],
                );
                if rollbacks > config.max_rollbacks {
                    return Err(CoreError::Diverged(format!(
                        "{why}; gave up after {} rollbacks",
                        config.max_rollbacks
                    )));
                }
                continue;
            }
            state.stats.epoch_losses.push(epoch_loss / denom);
            state.stats.epoch_recon.push(epoch_recon / denom);
            state.stats.epoch_kl.push(epoch_kl / denom);
            state.stats.epoch_grad_norm.push(mean_grad);
            if vaer_obs::enabled() {
                let requests = tapes.buf_requests();
                let hit_rate = if requests == 0 {
                    0.0
                } else {
                    1.0 - tapes.fresh_allocs() as f64 / requests as f64
                };
                vaer_obs::event(
                    "vae.epoch",
                    &[
                        ("epoch", state.epoch.into()),
                        ("loss", (epoch_loss / denom).into()),
                        ("recon", (epoch_recon / denom).into()),
                        ("kl", (epoch_kl / denom).into()),
                        ("grad_norm", mean_grad.into()),
                        ("tape_fresh_allocs", tapes.fresh_allocs().into()),
                        ("tape_hit_rate", hit_rate.into()),
                    ],
                );
            }
            state.epoch += 1;
            if let Some((ckpt, every)) = snapshots {
                if state.epoch.is_multiple_of(every) && state.epoch < config.epochs {
                    ckpt.write(state.epoch as u64, &state.to_bytes(config))?;
                }
            }
        }
        // Final snapshot, unconditional: re-running a finished job resumes
        // here instantly instead of retraining.
        if let Some((ckpt, _)) = snapshots {
            ckpt.write(config.epochs as u64, &state.to_bytes(config))?;
        }
        Ok(())
    }

    /// Checks that `store` holds exactly the layers and shapes `config`
    /// prescribes — the guard that turns a config-vs-weights mismatch
    /// into a descriptive error instead of a downstream indexing panic.
    fn validate_store(store: &ParamStore, config: &ReprConfig) -> Result<(), CoreError> {
        let expect = [
            (ENC_HIDDEN, config.ir_dim, config.hidden_dim),
            (ENC_MU, config.hidden_dim, config.latent_dim),
            (ENC_LOGVAR, config.hidden_dim, config.latent_dim),
            (DEC_HIDDEN, config.latent_dim, config.hidden_dim),
            (DEC_OUT, config.hidden_dim, config.ir_dim),
        ];
        let bad = |why: String| CoreError::Model(vaer_nn::NnError::BadFormat(why));
        // vaer-lint: allow(cancel-probe-coverage) -- shape check over a fixed four-layer table
        for (name, in_dim, out_dim) in expect {
            let w = store
                .find(&format!("{name}.w"))
                .ok_or_else(|| bad(format!("model is missing layer '{name}.w'")))?;
            let b = store
                .find(&format!("{name}.b"))
                .ok_or_else(|| bad(format!("model is missing layer '{name}.b'")))?;
            let w_shape = store.get(w).shape();
            if w_shape != (in_dim, out_dim) {
                return Err(bad(format!(
                    "layer '{name}.w' has shape {w_shape:?} but the config requires ({in_dim}, {out_dim})"
                )));
            }
            let b_shape = store.get(b).shape();
            if b_shape != (1, out_dim) {
                return Err(bad(format!(
                    "layer '{name}.b' has shape {b_shape:?} but the config requires (1, {out_dim})"
                )));
            }
        }
        Ok(())
    }

    /// The model configuration.
    pub fn config(&self) -> &ReprConfig {
        &self.config
    }

    /// The parameter store (encoder + decoder weights).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Encoder forward pass on a tape — reused by the Siamese matcher so
    /// both share one implementation of Fig. 2's encoding layer.
    ///
    /// Returns `(μ, σ)` tensors of shape `batch x latent_dim`, binding the
    /// encoder parameters from `store` (pass the matcher's own store to
    /// fine-tune a copy).
    ///
    /// # Panics
    /// If `store` lacks the three encoder layers. This is an invariant,
    /// not an input check: every store reaching here came from a
    /// constructor that validated or created those layers.
    pub fn encoder_forward(g: &mut Graph, store: &ParamStore, x: Tensor) -> (Tensor, Tensor) {
        let enc_hidden = Dense::from_store(store, ENC_HIDDEN)
            .expect("store is missing the repr encoder hidden layer");
        let enc_mu = Dense::from_store(store, ENC_MU).expect("store is missing the repr mu head");
        let enc_logvar =
            Dense::from_store(store, ENC_LOGVAR).expect("store is missing the repr logvar head");
        let h = enc_hidden.forward(g, store, x);
        let h = g.relu(h);
        let mu = enc_mu.forward(g, store, h);
        let logvar = enc_logvar.forward(g, store, h);
        let half = g.scale(logvar, 0.5);
        let sigma = g.exp(half);
        (mu, sigma)
    }

    /// Encodes a batch of IRs into diagonal Gaussians (one per row).
    ///
    /// Rows are encoded independently, so large batches are split into
    /// contiguous row shards on the [`vaer_linalg::runtime`] worker pool;
    /// each row's result is bit-identical at any thread count.
    pub fn encode(&self, irs: &Matrix) -> Vec<DiagGaussian> {
        let (mu, sigma) = self.encode_matrices(irs);
        (0..mu.rows())
            .map(|i| DiagGaussian::new(mu.row(i).to_vec(), sigma.row(i).to_vec()))
            .collect()
    }

    /// Encodes a batch of IRs into `(μ, σ)` matrices of shape
    /// `rows x latent_dim` — the matrix form backing [`Self::encode`] and
    /// the frozen-encoder cache ([`crate::latent::LatentTable`]).
    ///
    /// Each call is one full encoder pass and increments the
    /// process-wide [`encode_calls`] counter; row results are
    /// bit-identical at any thread count and for any row batching.
    ///
    /// # Panics
    /// If `irs` is not `ir_dim` wide — a caller bug, not a data
    /// condition; fallible entry points validate widths before reaching
    /// the encoder.
    pub fn encode_matrices(&self, irs: &Matrix) -> (Matrix, Matrix) {
        assert_eq!(irs.cols(), self.config.ir_dim, "IR width mismatch");
        ENCODE_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let o = crate::obs::handles();
        o.encode_calls.incr();
        o.encode_rows.add(irs.rows() as u64);
        let _span = vaer_obs::span("repr.encode");
        let latent = self.config.latent_dim;
        if irs.rows() == 0 {
            return (Matrix::zeros(0, latent), Matrix::zeros(0, latent));
        }
        const MIN_ROWS_PER_SHARD: usize = 64;
        let shards = vaer_linalg::runtime::map_shards(irs.rows(), MIN_ROWS_PER_SHARD, |rows| {
            let mut g = Graph::new();
            let x = g.input_rows(irs, rows.start, rows.end);
            let (mu, sigma) = Self::encoder_forward(&mut g, &self.store, x);
            (g.value(mu).clone(), g.value(sigma).clone())
        });
        let mut mu = Matrix::zeros(irs.rows(), latent);
        let mut sigma = Matrix::zeros(irs.rows(), latent);
        let mut offset = 0;
        for (mu_s, sig_s) in shards {
            let n = mu_s.rows() * latent;
            mu.as_mut_slice()[offset..offset + n].copy_from_slice(mu_s.as_slice());
            sigma.as_mut_slice()[offset..offset + n].copy_from_slice(sig_s.as_slice());
            offset += n;
        }
        (mu, sigma)
    }

    /// A cheap content hash of the parameter store, used by the
    /// frozen-encoder cache to detect that a model's weights changed
    /// (e.g. after transfer loads different parameters).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the serialised parameters.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.store.to_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Decodes latent samples back to IR space (the generative direction).
    ///
    /// # Panics
    /// If `z` is not `latent_dim` wide — a programming error in the
    /// caller, not a data condition (decoder layers themselves are
    /// guaranteed by construction/[deserialisation](Self::from_bytes)).
    pub fn decode(&self, z: &Matrix) -> Matrix {
        assert_eq!(z.cols(), self.config.latent_dim, "latent width mismatch");
        let dec_hidden =
            Dense::from_store(&self.store, DEC_HIDDEN).expect("decoder hidden layer missing");
        let dec_out = Dense::from_store(&self.store, DEC_OUT).expect("decoder output missing");
        let mut g = Graph::new();
        let zt = g.input(z.clone());
        let h = dec_hidden.forward(&mut g, &self.store, zt);
        let h = g.relu(h);
        let out = dec_out.forward(&mut g, &self.store, h);
        g.value(out).clone()
    }

    /// Serialises the model (config header + parameters).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"VAERREPR");
        for v in [
            self.config.ir_dim as u32,
            self.config.hidden_dim as u32,
            self.config.latent_dim as u32,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.store.to_bytes());
        out
    }

    /// Deserialises a model produced by [`ReprModel::to_bytes`].
    ///
    /// The deserialised parameters are re-validated against the header's
    /// dimensions: a blob whose config and weights disagree (hand-edited,
    /// spliced from another model, bit-rotted past the CRC) is rejected
    /// here with a descriptive error instead of panicking later inside
    /// encode/decode.
    ///
    /// # Errors
    /// [`CoreError::Model`] on malformed bytes or a config-vs-weight
    /// shape mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        if bytes.len() < 20 || &bytes[..8] != b"VAERREPR" {
            return Err(CoreError::Model(vaer_nn::NnError::BadFormat(
                "missing VAERREPR magic".into(),
            )));
        }
        let dim = |i: usize| {
            // vaer-lint: allow(panic) -- length >= 20 checked above; fixed 4-byte slices are infallible
            u32::from_le_bytes(bytes[8 + 4 * i..12 + 4 * i].try_into().unwrap()) as usize
        };
        let store = ParamStore::from_bytes(&bytes[20..])?;
        let config = ReprConfig {
            ir_dim: dim(0),
            hidden_dim: dim(1),
            latent_dim: dim(2),
            ..ReprConfig::default()
        };
        Self::validate_store(&store, &config)?;
        Ok(Self { store, config })
    }
}

/// Full mid-training VAE state — everything [`ReprModel::train_checkpointed`]
/// needs to resume bit-identically: epoch counter, weights, Adam moments,
/// both RNG streams (batch shuffling and reparameterisation noise), and the
/// stats accumulated so far.
#[derive(Clone)]
struct VaeTrainState {
    epoch: usize,
    store: ParamStore,
    adam: Adam,
    rng: NnRng,
    noise_rng: NnRng,
    stats: ReprTrainStats,
}

/// Snapshot payload magic (wrapped in a `VAERCKP1` envelope on disk).
const STATE_MAGIC: &[u8; 8] = b"VAERVST1";

impl VaeTrainState {
    /// Epoch-zero state. Layer construction order fixes the RNG stream, so
    /// this must build the five layers exactly as the original trainer did
    /// — old seeds keep reproducing old models.
    fn fresh(config: &ReprConfig) -> Self {
        let mut rng = NnRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let layers = [
            (
                ENC_HIDDEN,
                config.ir_dim,
                config.hidden_dim,
                Initializer::He,
            ),
            (
                ENC_MU,
                config.hidden_dim,
                config.latent_dim,
                Initializer::Xavier,
            ),
            (
                ENC_LOGVAR,
                config.hidden_dim,
                config.latent_dim,
                Initializer::Xavier,
            ),
            (
                DEC_HIDDEN,
                config.latent_dim,
                config.hidden_dim,
                Initializer::He,
            ),
            (
                DEC_OUT,
                config.hidden_dim,
                config.ir_dim,
                Initializer::Xavier,
            ),
        ];
        for (name, in_dim, out_dim, init) in layers {
            Dense::new(&mut store, name, in_dim, out_dim, init, &mut rng);
        }
        Self {
            epoch: 0,
            store,
            adam: Adam::with_rate(config.learning_rate),
            rng,
            noise_rng: NnRng::seed_from_u64(config.seed ^ 0xE95),
            stats: ReprTrainStats::default(),
        }
    }

    fn to_bytes(&self, config: &ReprConfig) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(STATE_MAGIC);
        for v in [
            config.ir_dim as u32,
            config.hidden_dim as u32,
            config.latent_dim as u32,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.epoch as u64).to_le_bytes());
        put_rng_state(&mut out, self.rng.state());
        put_rng_state(&mut out, self.noise_rng.state());
        put_f32_vec(&mut out, &self.stats.epoch_losses);
        put_f32_vec(&mut out, &self.stats.epoch_recon);
        put_f32_vec(&mut out, &self.stats.epoch_kl);
        put_f32_vec(&mut out, &self.stats.epoch_grad_norm);
        put_blob(&mut out, &self.store.to_bytes());
        put_blob(&mut out, &self.adam.to_bytes());
        out
    }

    /// Parses a snapshot payload; returns the state plus the
    /// `(ir_dim, hidden_dim, latent_dim)` it was trained under, which the
    /// caller must [`validate`](Self::validate) against its own config.
    /// Never panics, whatever the bytes are.
    fn from_bytes(bytes: &[u8]) -> Result<(Self, [usize; 3]), CoreError> {
        let mut cur = Cur::new(bytes);
        if cur.take(8)? != STATE_MAGIC {
            return Err(CoreError::Checkpoint("missing VAERVST1 magic".into()));
        }
        let dims = [
            cur.u32()? as usize,
            cur.u32()? as usize,
            cur.u32()? as usize,
        ];
        let epoch = cur.u64()? as usize;
        let rng = NnRng::from_state(cur.rng_state()?);
        let noise_rng = NnRng::from_state(cur.rng_state()?);
        let stats = ReprTrainStats {
            epoch_losses: cur.f32_vec()?,
            epoch_recon: cur.f32_vec()?,
            epoch_kl: cur.f32_vec()?,
            epoch_grad_norm: cur.f32_vec()?,
        };
        let store = ParamStore::from_bytes(cur.blob()?)?;
        let adam = Adam::from_bytes(cur.blob()?)?;
        if cur.pos != cur.bytes.len() {
            return Err(CoreError::Checkpoint(
                "trailing bytes after VAE training state".into(),
            ));
        }
        Ok((
            Self {
                epoch,
                store,
                adam,
                rng,
                noise_rng,
                stats,
            },
            dims,
        ))
    }

    /// Checks a deserialised state belongs to the resuming run: matching
    /// dimensions, well-shaped layers, and stats consistent with the epoch
    /// counter. Dimension mismatch is an error (not a skip) — the snapshot
    /// directory holds a *different* run's state, and silently retraining
    /// over it would clobber it.
    fn validate(&self, dims: [usize; 3], config: &ReprConfig) -> Result<(), CoreError> {
        let want = [config.ir_dim, config.hidden_dim, config.latent_dim];
        if dims != want {
            return Err(CoreError::Checkpoint(format!(
                "snapshot dims {dims:?} do not match config {want:?}"
            )));
        }
        ReprModel::validate_store(&self.store, config)?;
        if self.epoch > config.epochs {
            return Err(CoreError::Checkpoint(format!(
                "snapshot is at epoch {} but the config trains only {}",
                self.epoch, config.epochs
            )));
        }
        let s = &self.stats;
        if [
            s.epoch_losses.len(),
            s.epoch_recon.len(),
            s.epoch_kl.len(),
            s.epoch_grad_norm.len(),
        ] != [self.epoch; 4]
        {
            return Err(CoreError::Checkpoint(
                "snapshot stats are inconsistent with its epoch counter".into(),
            ));
        }
        Ok(())
    }
}

fn gaussian_matrix(rows: usize, cols: usize, rng: &mut NnRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| vaer_stats::gaussian::standard_normal(rng))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::XorShiftRng;

    /// IRs drawn from two well-separated clusters.
    fn clustered_irs(n_per: usize, dim: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = XorShiftRng::new(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                let center = if c == 0 { 1.0 } else { -1.0 };
                let row: Vec<f32> = (0..dim).map(|_| center + 0.1 * rng.gaussian()).collect();
                rows.push(row);
                labels.push(c);
            }
        }
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        (Matrix::from_vec(2 * n_per, dim, flat), labels)
    }

    #[test]
    fn training_reduces_loss() {
        let (irs, _) = clustered_irs(40, 8, 1);
        let config = ReprConfig {
            epochs: 10,
            ..ReprConfig::fast(8)
        };
        let (_, stats) = ReprModel::train(&irs, &config).unwrap();
        let first = stats.epoch_losses[0];
        let last = *stats.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn latent_space_preserves_cluster_structure() {
        let (irs, labels) = clustered_irs(40, 8, 2);
        let (model, _) = ReprModel::train(&irs, &ReprConfig::fast(8)).unwrap();
        let reprs = model.encode(&irs);
        // Mean within-cluster μ distance should be far below between-cluster.
        let mut within = 0.0f32;
        let mut between = 0.0f32;
        let mut n_within = 0;
        let mut n_between = 0;
        for i in (0..reprs.len()).step_by(7) {
            for j in (i + 1..reprs.len()).step_by(5) {
                let d = vaer_linalg::vector::euclidean(&reprs[i].mu, &reprs[j].mu);
                if labels[i] == labels[j] {
                    within += d;
                    n_within += 1;
                } else {
                    between += d;
                    n_between += 1;
                }
            }
        }
        let within = within / n_within.max(1) as f32;
        let between = between / n_between.max(1) as f32;
        assert!(
            between > 1.5 * within,
            "within {within} vs between {between}"
        );
    }

    #[test]
    fn encode_shapes_and_sigma_positive() {
        let (irs, _) = clustered_irs(10, 8, 3);
        let (model, _) = ReprModel::train(&irs, &ReprConfig::fast(8)).unwrap();
        let reprs = model.encode(&irs);
        assert_eq!(reprs.len(), 20);
        for r in &reprs {
            assert_eq!(r.dims(), model.config().latent_dim);
            assert!(r.sigma.iter().all(|&s| s > 0.0), "sigma must be positive");
        }
        assert!(model.encode(&Matrix::zeros(0, 8)).is_empty());
    }

    #[test]
    fn decode_round_trip_is_reasonable() {
        let (irs, _) = clustered_irs(50, 8, 4);
        let config = ReprConfig {
            epochs: 30,
            kl_weight: 0.1,
            ..ReprConfig::fast(8)
        };
        let (model, _) = ReprModel::train(&irs, &config).unwrap();
        let reprs = model.encode(&irs);
        let mu_mat = Matrix::from_vec(
            reprs.len(),
            model.config().latent_dim,
            reprs.iter().flat_map(|r| r.mu.iter().copied()).collect(),
        );
        let recon = model.decode(&mu_mat);
        // Reconstruction should at least recover the cluster sign pattern.
        let mut sign_match = 0;
        let mut total = 0;
        for i in 0..irs.rows() {
            for j in 0..irs.cols() {
                total += 1;
                if (recon.get(i, j) > 0.0) == (irs.get(i, j) > 0.0) {
                    sign_match += 1;
                }
            }
        }
        let frac = sign_match as f32 / total as f32;
        assert!(frac > 0.8, "sign agreement {frac}");
    }

    #[test]
    fn serialization_round_trip() {
        let (irs, _) = clustered_irs(10, 8, 5);
        let (model, _) = ReprModel::train(&irs, &ReprConfig::fast(8)).unwrap();
        let bytes = model.to_bytes();
        let back = ReprModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.config().latent_dim, model.config().latent_dim);
        let a = model.encode(&irs);
        let b = back.encode(&irs);
        assert_eq!(a[3].mu, b[3].mu);
        assert!(ReprModel::from_bytes(b"garbage").is_err());
    }

    #[test]
    fn input_validation() {
        assert!(ReprModel::train(&Matrix::zeros(0, 8), &ReprConfig::fast(8)).is_err());
        assert!(ReprModel::train(&Matrix::zeros(4, 5), &ReprConfig::fast(8)).is_err());
    }

    #[test]
    fn from_bytes_rejects_config_weight_shape_mismatch() {
        let (irs, _) = clustered_irs(10, 8, 6);
        let (model, _) = ReprModel::train(&irs, &ReprConfig::fast(8)).unwrap();
        // Splice the store of an 8-dim model under a header claiming 16.
        let mut bytes = model.to_bytes();
        bytes[8..12].copy_from_slice(&16u32.to_le_bytes());
        let err = ReprModel::from_bytes(&bytes).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("shape"), "undescriptive error: {msg}");
    }

    fn temp_ckpt(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vaer-repr-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpointed_training_matches_plain_and_resumes_bit_identically() {
        let (irs, _) = clustered_irs(30, 8, 7);
        let config = ReprConfig {
            epochs: 6,
            ..ReprConfig::fast(8)
        };
        let (plain, plain_stats) = ReprModel::train(&irs, &config).unwrap();

        // A checkpointed run from scratch must produce the same bits.
        let dir = temp_ckpt("full");
        let ckpt = CheckpointStore::open(&dir, "vae").unwrap();
        let (full, full_stats) = ReprModel::train_checkpointed(&irs, &config, &ckpt, 2).unwrap();
        assert_eq!(full.store().to_bytes(), plain.store().to_bytes());
        assert_eq!(full_stats.epoch_losses, plain_stats.epoch_losses);

        // A run resumed from a mid-training snapshot must as well: seed a
        // fresh directory with only the epoch-2 snapshot and train again.
        let (seq, payload) = {
            let (s, p) = ckpt.read_latest().unwrap().unwrap();
            assert_eq!(s, 6, "final snapshot must exist");
            (2u64, if s == 2 { p } else { ckpt.read(2).unwrap() })
        };
        let dir2 = temp_ckpt("resume");
        let ckpt2 = CheckpointStore::open(&dir2, "vae").unwrap();
        ckpt2.write(seq, &payload).unwrap();
        let (resumed, resumed_stats) =
            ReprModel::train_checkpointed(&irs, &config, &ckpt2, 2).unwrap();
        assert_eq!(
            resumed.store().to_bytes(),
            plain.store().to_bytes(),
            "resumed weights must be bit-identical to the uninterrupted run"
        );
        assert_eq!(resumed_stats.epoch_losses, plain_stats.epoch_losses);

        // A snapshot from a different configuration is refused loudly.
        let other = ReprConfig {
            epochs: 6,
            ..ReprConfig::fast(16)
        };
        let wide = Matrix::zeros(16, 16);
        assert!(matches!(
            ReprModel::train_checkpointed(&wide, &other, &ckpt2, 2),
            Err(CoreError::BadInput(_)) | Err(CoreError::Checkpoint(_))
        ));

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn vae_state_round_trips_and_rejects_corruption() {
        let config = ReprConfig::fast(8);
        let mut state = VaeTrainState::fresh(&config);
        state.epoch = 3;
        state.stats.epoch_losses = vec![3.0, 2.0, 1.0];
        state.stats.epoch_recon = vec![2.5, 1.5, 0.5];
        state.stats.epoch_kl = vec![0.5, 0.5, 0.5];
        state.stats.epoch_grad_norm = vec![1.0, 1.0, 1.0];
        let bytes = state.to_bytes(&config);
        let (back, dims) = VaeTrainState::from_bytes(&bytes).unwrap();
        assert_eq!(dims, [8, 32, 8]);
        assert_eq!(back.epoch, 3);
        assert_eq!(back.stats.epoch_losses, state.stats.epoch_losses);
        assert_eq!(back.store.to_bytes(), state.store.to_bytes());
        back.validate(dims, &config).unwrap();
        // Wrong dims refuse to resume.
        assert!(back.validate([9, 32, 8], &config).is_err());
        // Truncations never panic.
        for cut in [0, 7, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(VaeTrainState::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn divergence_rolls_back_and_eventually_errors() {
        let (irs, _) = clustered_irs(20, 8, 8);
        // Non-finite loss on every batch: the guard retries with halved LR
        // max_rollbacks times, then gives up with Diverged.
        let config = ReprConfig {
            epochs: 3,
            max_rollbacks: 2,
            ..ReprConfig::fast(8)
        };
        let _guard = vaer_fault::test_lock();
        vaer_fault::configure("vae.grads=nan").unwrap();
        let err = ReprModel::train(&irs, &config);
        vaer_fault::clear();
        assert!(
            matches!(err, Err(CoreError::Diverged(_))),
            "expected Diverged, got {err:?}"
        );

        // A single poisoned batch is absorbed: rollback, retry, converge.
        vaer_fault::configure("vae.grads=nan@1").unwrap();
        let recovered = ReprModel::train(&irs, &config);
        vaer_fault::clear();
        let (_, stats) = recovered.expect("one transient NaN must be survivable");
        assert_eq!(stats.epoch_losses.len(), config.epochs);
    }
}
