//! The frozen-encoder latent cache.
//!
//! Encoding a candidate pool through the VAE encoder is the dominant
//! repeated cost of the active-learning loop: every iteration used to
//! re-encode the same IR rows to score the pool, rebuild Wasserstein
//! features, and re-seed the bootstrap structures. But the
//! representation model is *frozen* after unsupervised training (Fig. 1
//! decouples the stages), so its `(μ, σ)` outputs per IR row never
//! change. A [`LatentTable`] materialises them once per table and is
//! then reused by the AL loop, pipeline resolution, and the matcher's
//! Wasserstein-feature construction.
//!
//! # Lifecycle
//!
//! 1. **Build** — [`LatentTable::encode`] runs exactly one encoder pass
//!    over a table's IRs (counted by [`crate::repr::encode_calls`]) and
//!    records the model's [`fingerprint`](crate::repr::ReprModel::fingerprint).
//! 2. **Reuse** — index into the cached `(μ, σ)` rows:
//!    [`attr_rows`](LatentTable::attr_rows) for matcher features,
//!    [`entities`](LatentTable::entities) for bootstrap/KDE structures,
//!    [`distance_features`] for the matcher's Distance layer.
//! 3. **Invalidate** — the cache is valid only for the weights it was
//!    built from. [`LatentTable::is_stale`] compares fingerprints;
//!    [`LatentTable::refresh`] re-encodes when a transferred or
//!    fine-tuned model replaces the original (see [`crate::transfer`]).
//!
//! Cached values are **bit-identical** to re-encoding: encoder outputs
//! are row-independent, and the feature arithmetic below mirrors the
//! tape ops of [`SiameseMatcher`](crate::matcher::SiameseMatcher)
//! expression for expression.

use crate::entity::{EntityRepr, IrTable};
use crate::matcher::DistanceKind;
use crate::repr::ReprModel;
use vaer_linalg::{distance_row, DistanceOp, Matrix};
use vaer_stats::gaussian::DiagGaussian;

/// Cached `(μ, σ)` encodings of one table's IR rows, in IR-row order
/// (`tuples · arity` rows, tuple-major — the [`IrTable`] layout).
#[derive(Debug, Clone)]
pub struct LatentTable {
    arity: usize,
    mu: Matrix,
    sigma: Matrix,
    fingerprint: u64,
}

impl LatentTable {
    /// Encodes a whole table in **one** encoder pass and caches the
    /// result, stamped with the model's current fingerprint.
    pub fn encode(repr: &ReprModel, table: &IrTable) -> Self {
        crate::obs::handles().cache_builds.incr();
        let (mu, sigma) = repr.encode_matrices(&table.irs);
        Self {
            arity: table.arity,
            mu,
            sigma,
            fingerprint: repr.fingerprint(),
        }
    }

    /// Number of tuples covered.
    pub fn len(&self) -> usize {
        self.mu.rows() / self.arity
    }

    /// Whether the table covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.mu.rows() == 0
    }

    /// Attribute count per tuple.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Latent dimensionality per attribute.
    pub fn latent_dim(&self) -> usize {
        self.mu.cols()
    }

    /// The fingerprint of the model this cache was built from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether `repr`'s weights differ from the weights this cache was
    /// built from (in which case every cached value is invalid).
    pub fn is_stale(&self, repr: &ReprModel) -> bool {
        self.fingerprint != repr.fingerprint()
    }

    /// Returns a cache valid for `repr`: `self` if still fresh, else a
    /// re-encode of `table` — the invalidation hook transfer uses after
    /// swapping representation models.
    pub fn refresh(self, repr: &ReprModel, table: &IrTable) -> Self {
        if self.is_stale(repr) {
            crate::obs::handles().cache_invalidations.incr();
            Self::encode(repr, table)
        } else {
            crate::obs::handles().cache_hits.incr();
            self
        }
    }

    /// Gathers attribute `attr` of the given tuples as `(μ, σ)` matrices
    /// of shape `tuples.len() x latent_dim` — the cached equivalent of
    /// encoding [`IrTable::attr_rows`].
    ///
    /// # Panics
    /// Panics when `attr` or a tuple index is out of range (indices are
    /// produced by the caller, so this is a programming error).
    pub fn attr_rows(&self, tuples: &[usize], attr: usize) -> (Matrix, Matrix) {
        assert!(attr < self.arity, "attribute {attr} out of range");
        crate::obs::handles().cache_reads.add(tuples.len() as u64);
        let rows: Vec<usize> = tuples.iter().map(|&t| t * self.arity + attr).collect();
        (self.mu.select_rows(&rows), self.sigma.select_rows(&rows))
    }

    /// Reconstructs per-tuple [`EntityRepr`]s (bootstrap, KDE sampling,
    /// and the retrieval reports consume this form) without touching the
    /// encoder.
    pub fn entities(&self) -> Vec<EntityRepr> {
        (0..self.len())
            .map(|t| {
                let attrs = (0..self.arity)
                    .map(|a| {
                        let row = t * self.arity + a;
                        DiagGaussian::new(self.mu.row(row).to_vec(), self.sigma.row(row).to_vec())
                    })
                    .collect();
                EntityRepr::new(attrs)
            })
            .collect()
    }
}

/// Element count above which [`distance_features_into`] shards output
/// rows across the worker pool (rows are independent, so parallel
/// results are bit-identical to serial).
const PAR_ELEM_CUTOFF: usize = 1 << 17;

/// Minimum output rows per shard for parallel feature construction.
const MIN_ROWS_PER_SHARD: usize = 8;

/// Builds the matcher's concatenated Distance-layer features for `pairs`
/// from two latent caches: `n x (arity · latent_dim)`, one attribute
/// block per [`DistanceKind`] distance vector.
///
/// The arithmetic mirrors the matcher's tape ops term for term, so the
/// result is bit-identical to running the frozen encoder inside
/// `SiameseMatcher` on the pairs' IR rows.
///
/// # Panics
/// Panics when the caches disagree on arity or a pair indexes past
/// either cache.
pub fn distance_features(
    kind: DistanceKind,
    a: &LatentTable,
    b: &LatentTable,
    pairs: &[(usize, usize)],
) -> Matrix {
    let mut out = Matrix::zeros(pairs.len(), a.arity * a.latent_dim());
    distance_features_into(kind, a, b, pairs, &mut out);
    out
}

/// [`distance_features`] into a caller-provided buffer — the allocation-
/// free form the fused Score stage runs over candidate chunks.
///
/// Each output row is one fused pass over the cached `(μ, σ)` rows via
/// the [`vaer_linalg::distance_row`] SIMD kernels, which preserve the
/// exact per-element operation sequence of the historical matrix-op
/// construction (difference, square, halved-sum-plus-epsilon, divide) —
/// so this path is bit-identical to the tape arithmetic, per element,
/// at any thread count and on every dispatch path.
///
/// # Panics
/// Panics when the caches disagree on arity, `out` is not
/// `pairs.len() x (arity · latent_dim)`, or a pair indexes past either
/// cache.
pub fn distance_features_into(
    kind: DistanceKind,
    a: &LatentTable,
    b: &LatentTable,
    pairs: &[(usize, usize)],
    out: &mut Matrix,
) {
    assert_eq!(a.arity, b.arity, "tables must share arity");
    let arity = a.arity;
    let latent = a.latent_dim();
    let width = arity * latent;
    assert_eq!(
        out.shape(),
        (pairs.len(), width),
        "distance feature output shape mismatch"
    );
    // Same cache-read accounting as the attr_rows gather it replaces:
    // two tables x arity attributes x pairs.len() tuples.
    crate::obs::handles()
        .cache_reads
        .add(2 * (arity * pairs.len()) as u64);
    let op = match kind {
        DistanceKind::W2 => DistanceOp::W2,
        DistanceKind::MuOnly => DistanceOp::MuOnly,
        DistanceKind::SigmaOnly => DistanceOp::SigmaOnly,
        DistanceKind::Mahalanobis => DistanceOp::Mahalanobis,
    };
    let n = pairs.len();
    let min_rows = if n * width >= PAR_ELEM_CUTOFF {
        MIN_ROWS_PER_SHARD
    } else {
        n.max(1)
    };
    vaer_linalg::runtime::for_each_row_shard_mut(
        out.as_mut_slice(),
        n,
        width,
        min_rows,
        |rows, chunk| {
            for i in rows.clone() {
                let (l, r) = pairs[i];
                let orow = &mut chunk[(i - rows.start) * width..(i - rows.start) * width + width];
                for attr in 0..arity {
                    let s = l * arity + attr;
                    let t = r * arity + attr;
                    distance_row(
                        op,
                        a.mu.row(s),
                        b.mu.row(t),
                        a.sigma.row(s),
                        b.sigma.row(t),
                        &mut orow[attr * latent..(attr + 1) * latent],
                    );
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::ReprConfig;
    use vaer_linalg::XorShiftRng;

    fn toy_table(n_tuples: usize, arity: usize, ir_dim: usize, seed: u64) -> IrTable {
        let mut rng = XorShiftRng::new(seed);
        IrTable::new(arity, Matrix::gaussian(n_tuples * arity, ir_dim, &mut rng))
    }

    fn toy_model(irs: &IrTable) -> ReprModel {
        let (model, _) = ReprModel::train(&irs.irs, &ReprConfig::fast(irs.ir_dim())).unwrap();
        model
    }

    #[test]
    fn cached_latents_match_direct_encoding_bitwise() {
        let table = toy_table(12, 2, 8, 1);
        let model = toy_model(&table);
        let lat = LatentTable::encode(&model, &table);
        assert_eq!(lat.len(), 12);
        assert_eq!(lat.arity(), 2);
        let direct = model.encode(&table.irs);
        let ents = lat.entities();
        assert_eq!(ents.len(), 12);
        for (t, ent) in ents.iter().enumerate() {
            for (a, g) in ent.attrs.iter().enumerate() {
                assert_eq!(g.mu, direct[t * 2 + a].mu, "mu tuple {t} attr {a}");
                assert_eq!(g.sigma, direct[t * 2 + a].sigma, "sigma tuple {t} attr {a}");
            }
        }
        // attr_rows agrees with encoding the gathered IR rows directly.
        let tuples = [3usize, 0, 7];
        let (mu, sigma) = lat.attr_rows(&tuples, 1);
        let (dmu, dsigma) = model.encode_matrices(&table.attr_rows(&tuples, 1));
        assert_eq!(mu.as_slice(), dmu.as_slice());
        assert_eq!(sigma.as_slice(), dsigma.as_slice());
    }

    #[test]
    fn staleness_tracks_model_weights() {
        let table = toy_table(8, 2, 8, 2);
        let model = toy_model(&table);
        let lat = LatentTable::encode(&model, &table);
        assert!(!lat.is_stale(&model));
        // A differently-trained model must invalidate the cache.
        let other_irs = toy_table(8, 2, 8, 99);
        let other = toy_model(&other_irs);
        assert!(lat.is_stale(&other));
        crate::repr::reset_encode_calls();
        let same = lat.clone().refresh(&model, &table);
        assert_eq!(crate::repr::encode_calls(), 0, "fresh cache re-encoded");
        assert!(!same.is_stale(&model));
        let rebuilt = lat.refresh(&other, &table);
        assert_eq!(crate::repr::encode_calls(), 1, "stale cache not re-encoded");
        assert!(!rebuilt.is_stale(&other));
    }

    #[test]
    fn fused_distance_features_match_matrix_op_construction_bitwise() {
        // The SIMD kernels replaced a pipeline of whole-matrix
        // temporaries; this pins the fused path to that historical
        // construction bit for bit, for every DistanceKind.
        let ta = toy_table(10, 2, 8, 5);
        let tb = toy_table(9, 2, 8, 6);
        let model = toy_model(&ta);
        let la = LatentTable::encode(&model, &ta);
        let lb = LatentTable::encode(&model, &tb);
        let pairs: Vec<(usize, usize)> =
            (0..10).flat_map(|l| (0..9).map(move |r| (l, r))).collect();
        for kind in [
            DistanceKind::W2,
            DistanceKind::MuOnly,
            DistanceKind::SigmaOnly,
            DistanceKind::Mahalanobis,
        ] {
            let fused = distance_features(kind, &la, &lb, &pairs);
            let lefts: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
            let rights: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
            let latent = la.latent_dim();
            let mut want = Matrix::zeros(pairs.len(), la.arity() * latent);
            for attr in 0..la.arity() {
                let (mu_s, sig_s) = la.attr_rows(&lefts, attr);
                let (mu_t, sig_t) = lb.attr_rows(&rights, attr);
                let mu_diff = mu_s.sub(&mu_t);
                let mu_sq = mu_diff.hadamard(&mu_diff);
                let sig_diff = sig_s.sub(&sig_t);
                let sig_sq = sig_diff.hadamard(&sig_diff);
                let d = match kind {
                    DistanceKind::W2 => mu_sq.add(&sig_sq),
                    DistanceKind::MuOnly => mu_sq,
                    DistanceKind::SigmaOnly => sig_sq,
                    DistanceKind::Mahalanobis => {
                        let var_s = sig_s.hadamard(&sig_s);
                        let var_t = sig_t.hadamard(&sig_t);
                        let var = var_s.add(&var_t).scale(0.5).map(|x| x + 1e-4);
                        mu_sq.zip_with(&var, |m, v| m / v)
                    }
                };
                let offset = attr * latent;
                for i in 0..pairs.len() {
                    want.row_mut(i)[offset..offset + latent].copy_from_slice(d.row(i));
                }
            }
            let fused_bits: Vec<u32> = fused.as_slice().iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fused_bits, want_bits, "{kind:?}");
        }
    }

    #[test]
    fn empty_table_is_handled() {
        let table = IrTable::new(2, Matrix::zeros(0, 8));
        let dummy = toy_table(4, 2, 8, 3);
        let model = toy_model(&dummy);
        let lat = LatentTable::encode(&model, &table);
        assert!(lat.is_empty());
        assert_eq!(lat.len(), 0);
        assert!(lat.entities().is_empty());
        let f = distance_features(DistanceKind::W2, &lat, &lat, &[]);
        assert_eq!(f.rows(), 0);
    }
}
