//! The int8 inference twin of the Siamese matcher (DESIGN.md §13).
//!
//! A [`QuantizedMatcher`] is built *after* training by calibrating a
//! fitted, frozen-encoder [`SiameseMatcher`](crate::matcher::SiameseMatcher):
//! weights are quantized symmetrically per output channel, and each
//! layer's activation scale is taken from the observed range of an f32
//! forward pass over a calibration set (the matcher's own training
//! features — deterministic, already materialised at fit time, and
//! distributionally representative of the candidate pairs scored at
//! resolution time).
//!
//! Inference then runs `quantize → i8 GEMM → rescale → bias → ReLU` per
//! layer with a final sigmoid, entirely outside the autodiff tape.
//! Training stays f32/bit-stable; only scoring takes the fast lane, and
//! only when `PipelineConfig::score_precision` asks for it — gated by
//! the test-enforced parity suite (`tests/quantization.rs`): per-pair
//! probability |Δ| ≤ ε and end-to-end F1 delta ≤ 0.01 vs the f32 path.

use crate::matcher::sanitize_features;
use crate::CoreError;
use std::borrow::Cow;
use vaer_linalg::{
    i8_matmul_t_packed, max_abs, scale_for_max_abs, Matrix, PackedI8Rhs, QuantizedMatrix,
};

/// One quantized dense layer: weights as `out x in` int8 rows with
/// per-output-channel scales, pre-packed into GEMM panels at
/// calibration (packing once amortises across every scoring batch),
/// f32 bias, and the calibrated input activation scale.
#[derive(Debug, Clone)]
struct QuantizedLinear {
    wt: PackedI8Rhs,
    bias: Vec<f32>,
    in_scale: f32,
}

/// An int8 scoring twin of a fitted matcher MLP. Produces duplicate
/// probabilities from the same cached distance features as
/// `SiameseMatcher::predict_features`, at integer-GEMM speed.
#[derive(Debug, Clone)]
pub struct QuantizedMatcher {
    layers: Vec<QuantizedLinear>,
    arity: usize,
    latent_dim: usize,
}

impl QuantizedMatcher {
    /// Calibrates a quantized matcher from f32 dense layers
    /// (`(weight, bias)` with weight `in x out`, bias `1 x out`, ReLU
    /// between layers, linear output) and a non-empty calibration
    /// feature matrix. Each layer's activation scale is the max-abs of
    /// the *f32* forward pass at that depth, so calibration error does
    /// not compound across layers.
    pub fn calibrate(
        layers: &[(&Matrix, &Matrix)],
        calibration: &Matrix,
        arity: usize,
        latent_dim: usize,
    ) -> Result<QuantizedMatcher, CoreError> {
        if layers.is_empty() {
            return Err(CoreError::BadInput("cannot quantize an empty MLP".into()));
        }
        if calibration.rows() == 0 {
            return Err(CoreError::InsufficientData(
                "activation calibration needs at least one feature row".into(),
            ));
        }
        if calibration.cols() != arity * latent_dim {
            return Err(CoreError::BadInput(format!(
                "calibration width {} != arity*latent {}",
                calibration.cols(),
                arity * latent_dim
            )));
        }
        let mut x: Cow<'_, Matrix> = sanitize_features(calibration);
        let mut quantized = Vec::with_capacity(layers.len());
        for (i, (w, b)) in layers.iter().enumerate() {
            if x.cols() != w.rows() || b.rows() != 1 || b.cols() != w.cols() {
                return Err(CoreError::BadInput(format!(
                    "layer {i} shape mismatch: activations {:?}, weight {:?}, bias {:?}",
                    x.shape(),
                    w.shape(),
                    b.shape()
                )));
            }
            quantized.push(QuantizedLinear {
                // Stored transposed (out x in) so scoring is a single
                // `x * wᵀ` with one scale per output channel.
                wt: PackedI8Rhs::pack(&QuantizedMatrix::quantize_per_row(&w.transpose())),
                bias: b.row(0).to_vec(),
                in_scale: scale_for_max_abs(max_abs(&x)),
            });
            let y = x.matmul(w).add_row_broadcast(b.row(0));
            x = Cow::Owned(if i + 1 < layers.len() {
                y.map(|v| v.max(0.0))
            } else {
                y
            });
        }
        Ok(QuantizedMatcher {
            layers: quantized,
            arity,
            latent_dim,
        })
    }

    /// Predicted duplicate probabilities from precomputed Distance-layer
    /// features (`n x (arity·latent)`) — the int8 twin of
    /// `SiameseMatcher::predict_features`. Non-finite feature values are
    /// sanitized to 0.0 at the boundary, matching the f32 path.
    ///
    /// # Panics
    /// Panics on a feature width mismatch.
    pub fn predict_features(&self, features: &Matrix) -> Vec<f32> {
        assert_eq!(
            features.cols(),
            self.arity * self.latent_dim,
            "feature width mismatch"
        );
        if features.rows() == 0 {
            return Vec::new();
        }
        let mut x: Cow<'_, Matrix> = sanitize_features(features);
        for (i, layer) in self.layers.iter().enumerate() {
            let xq = QuantizedMatrix::quantize_uniform(&x, layer.in_scale);
            let y = i8_matmul_t_packed(&xq, &layer.wt).add_row_broadcast(&layer.bias);
            x = Cow::Owned(if i + 1 < self.layers.len() {
                y.map(|v| v.max(0.0))
            } else {
                y
            });
        }
        x.as_slice().iter().map(|&z| stable_sigmoid(z)).collect()
    }

    /// Attribute count per tuple.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Latent dimensionality per attribute.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Number of quantized dense layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Same stable logistic as the tape's sigmoid op, so the only
/// f32-vs-int8 probability difference comes from quantization error in
/// the logits, not from the nonlinearity.
#[inline]
fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_linalg::XorShiftRng;

    fn toy_layers(rng: &mut XorShiftRng) -> (Matrix, Matrix, Matrix, Matrix) {
        let w0 = Matrix::gaussian(6, 4, rng).scale(0.5);
        let b0 = Matrix::gaussian(1, 4, rng).scale(0.1);
        let w1 = Matrix::gaussian(4, 1, rng).scale(0.5);
        let b1 = Matrix::gaussian(1, 1, rng).scale(0.1);
        (w0, b0, w1, b1)
    }

    fn f32_forward(x: &Matrix, layers: &[(&Matrix, &Matrix)]) -> Vec<f32> {
        let mut x = x.clone();
        for (i, (w, b)) in layers.iter().enumerate() {
            let y = x.matmul(w).add_row_broadcast(b.row(0));
            x = if i + 1 < layers.len() {
                y.map(|v| v.max(0.0))
            } else {
                y
            };
        }
        x.as_slice().iter().map(|&z| stable_sigmoid(z)).collect()
    }

    #[test]
    fn quantized_forward_tracks_f32_forward() {
        let mut rng = XorShiftRng::new(0x0F8);
        let (w0, b0, w1, b1) = toy_layers(&mut rng);
        let layers = [(&w0, &b0), (&w1, &b1)];
        let calib = Matrix::gaussian(64, 6, &mut rng);
        let q = QuantizedMatcher::calibrate(&layers, &calib, 3, 2).unwrap();
        assert_eq!(q.num_layers(), 2);
        let test = Matrix::gaussian(32, 6, &mut rng);
        let exact = f32_forward(&test, &layers);
        let fast = q.predict_features(&test);
        for (i, (a, b)) in exact.iter().zip(&fast).enumerate() {
            assert!((a - b).abs() < 0.05, "row {i}: f32 {a} vs int8 {b}");
        }
    }

    #[test]
    fn calibration_rejects_bad_shapes() {
        let mut rng = XorShiftRng::new(1);
        let (w0, b0, w1, b1) = toy_layers(&mut rng);
        let layers = [(&w0, &b0), (&w1, &b1)];
        let empty = Matrix::zeros(0, 6);
        assert!(QuantizedMatcher::calibrate(&layers, &empty, 3, 2).is_err());
        let wrong_width = Matrix::zeros(4, 5);
        assert!(QuantizedMatcher::calibrate(&layers, &wrong_width, 3, 2).is_err());
        assert!(QuantizedMatcher::calibrate(&[], &Matrix::zeros(4, 6), 3, 2).is_err());
    }

    #[test]
    fn nan_features_are_sanitized_like_the_f32_path() {
        let mut rng = XorShiftRng::new(2);
        let (w0, b0, w1, b1) = toy_layers(&mut rng);
        let layers = [(&w0, &b0), (&w1, &b1)];
        let calib = Matrix::gaussian(32, 6, &mut rng);
        let q = QuantizedMatcher::calibrate(&layers, &calib, 3, 2).unwrap();
        let mut poisoned = Matrix::gaussian(3, 6, &mut rng);
        poisoned.row_mut(1)[2] = f32::NAN;
        poisoned.row_mut(2)[0] = f32::INFINITY;
        let probs = q.predict_features(&poisoned);
        assert!(probs.iter().all(|p| p.is_finite()), "{probs:?}");
        // A NaN cell scores exactly like the same cell zeroed.
        let mut zeroed = poisoned.clone();
        zeroed.row_mut(1)[2] = 0.0;
        zeroed.row_mut(2)[0] = 0.0;
        assert_eq!(probs, q.predict_features(&zeroed));
    }
}
