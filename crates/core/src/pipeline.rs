//! The end-to-end VAER pipeline: IR generation → unsupervised VAE →
//! supervised Siamese matching, with per-stage timing (Table VI) and the
//! blocking/representation reports of §VI-B.

use crate::entity::{EntityRepr, IrTable};
use crate::evaluation::{topk_eval_irs, topk_eval_vae};
use crate::exec::{self, ResolvePlan};
use crate::latent::{self, LatentTable};
use crate::matcher::{MatcherConfig, PairExamples, SiameseMatcher};
use crate::repr::{ReprConfig, ReprModel, ReprTrainStats};
use crate::resilience::RunBudget;
use crate::CoreError;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;
use vaer_data::{Dataset, LabeledPair, PairSet};
use vaer_embed::{fit_ir_model, IrKind, IrModel};
use vaer_index::{knn_join, CandidatePair, E2Lsh};
use vaer_stats::metrics::{PrF1, TopKReport};

/// Numeric precision of the resolution Score stage (DESIGN.md §13).
///
/// `F32` is the exact path: the trained matcher's own forward pass.
/// `Int8` scores through the calibrated [`crate::quant::QuantizedMatcher`]
/// twin — int8 GEMM with per-channel weight scales — which is only
/// available when the encoder stayed frozen at fit time; a fine-tuned
/// pipeline silently falls back to `F32` (the effective precision is
/// reported on [`crate::exec::Resolution::precision`]). Parity between
/// the two lanes is test-enforced in `tests/quantization.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ScorePrecision {
    /// Exact f32 scoring (default).
    #[default]
    F32,
    /// Quantized int8 scoring via the calibrated matcher twin.
    Int8,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Which IR family to use (the paper defaults to LSA as most robust).
    pub ir_kind: IrKind,
    /// IR dimensionality (shared by all four families).
    pub ir_dim: usize,
    /// VAE hyper-parameters (its `ir_dim` is kept in sync automatically).
    pub repr: ReprConfig,
    /// Siamese matcher hyper-parameters.
    pub matcher: MatcherConfig,
    /// Top-K for blocking and representation reports (paper: 10).
    pub knn_k: usize,
    /// Auto-labelled negatives added to matcher training, as a multiple of
    /// the labelled pair count. Uniform random (a, b) pairs are negatives
    /// with overwhelming probability (duplicates are a vanishing fraction
    /// of the cross product), so — in the spirit of the paper's
    /// Algorithm 1 bootstrap — they are free labels. Without them a
    /// matcher trained on a handful of pairs saturates and scores the
    /// hard negatives surfaced by blocking as confident matches.
    pub auto_negative_ratio: f32,
    /// Master seed.
    pub seed: u64,
    /// When set, VAE training snapshots its state into this directory and
    /// resumes from the newest valid snapshot after a crash (see
    /// [`ReprModel::train_checkpointed`]). `None` disables durability.
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot cadence in epochs when `checkpoint_dir` is set.
    pub checkpoint_every: usize,
    /// Numeric precision of the resolution Score stage.
    pub score_precision: ScorePrecision,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            ir_kind: IrKind::Lsa,
            ir_dim: 64,
            repr: ReprConfig::default(),
            matcher: MatcherConfig::default(),
            knn_k: 10,
            auto_negative_ratio: 4.0,
            seed: 0x7A3E,
            checkpoint_dir: None,
            checkpoint_every: 5,
            score_precision: ScorePrecision::F32,
        }
    }
}

impl PipelineConfig {
    /// A small/fast configuration for tests and doc examples.
    pub fn fast() -> Self {
        Self {
            ir_dim: 24,
            repr: ReprConfig {
                epochs: 8,
                ..ReprConfig::fast(24)
            },
            matcher: MatcherConfig::fast(),
            ..Self::default()
        }
    }

    /// The configuration used by the reported experiments (closer to the
    /// paper's Table III, scaled per DESIGN.md).
    pub fn paper() -> Self {
        Self {
            ir_dim: 64,
            repr: ReprConfig {
                hidden_dim: 96,
                latent_dim: 32,
                epochs: 15,
                ..ReprConfig::default()
            },
            matcher: MatcherConfig {
                epochs: 40,
                ..MatcherConfig::default()
            },
            ..Self::default()
        }
    }
}

/// Wall-clock timings of the pipeline stages, in seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// IR model fitting + encoding.
    pub ir_secs: f64,
    /// VAE representation training (the paper's "Repr." column).
    pub repr_secs: f64,
    /// Siamese matcher training (the paper's "Match" column).
    pub match_secs: f64,
}

impl Timings {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.ir_secs + self.repr_secs + self.match_secs
    }
}

/// Lazily built resolution artifacts shared by every [`ResolvePlan`] (and
/// `resolve` call) over one fitted pipeline: the flattened blocking keys
/// of table A and the E2Lsh index over table B's. The latents are frozen
/// once fitting ends, so both are built at most once per pipeline —
/// `exec.index.builds` counts exactly one build however many times
/// resolution runs.
#[derive(Default)]
struct PlanArtifacts {
    keys_a: OnceLock<Vec<Vec<f32>>>,
    index: OnceLock<E2Lsh>,
}

/// A fitted end-to-end VAER pipeline.
pub struct Pipeline {
    ir_model: Box<dyn IrModel>,
    pub(crate) repr: ReprModel,
    pub(crate) matcher: SiameseMatcher,
    pub(crate) quantized: Option<crate::quant::QuantizedMatcher>,
    pub(crate) irs_a: IrTable,
    pub(crate) irs_b: IrTable,
    pub(crate) lat_a: LatentTable,
    pub(crate) lat_b: LatentTable,
    pub(crate) reprs_a: Vec<EntityRepr>,
    pub(crate) reprs_b: Vec<EntityRepr>,
    timings: Timings,
    repr_stats: ReprTrainStats,
    pub(crate) config: PipelineConfig,
    artifacts: PlanArtifacts,
}

impl Pipeline {
    /// Fits the full pipeline on a dataset: IRs, VAE, then matcher on the
    /// dataset's training pairs.
    ///
    /// # Errors
    /// Propagates representation/matcher training failures.
    pub fn fit(dataset: &Dataset, config: &PipelineConfig) -> Result<Self, CoreError> {
        Self::fit_inner(dataset, config, None, &RunBudget::from_env())
    }

    /// [`fit`](Self::fit) under an explicit [`RunBudget`]: representation
    /// and matcher training probe the budget at every epoch (including
    /// divergence-guard retries), and the table-encoding stages probe at
    /// their boundaries, so a deadline or cancellation surfaces as a typed
    /// error instead of a hang. The plain [`fit`](Self::fit) reads
    /// `VAER_DEADLINE_MS` from the environment for the same effect.
    ///
    /// # Errors
    /// Same as [`fit`](Self::fit), plus [`CoreError::Cancelled`] /
    /// [`CoreError::DeadlineExceeded`] when the budget trips.
    pub fn fit_budgeted(
        dataset: &Dataset,
        config: &PipelineConfig,
        budget: &RunBudget,
    ) -> Result<Self, CoreError> {
        Self::fit_inner(dataset, config, None, budget)
    }

    /// Fits with a *transferred* representation model (paper §III-D):
    /// representation training is skipped and `repr_secs` is 0. The
    /// dataset must already be arity-adapted (see
    /// [`crate::transfer::adapt_dataset_arity`]) and the transferred
    /// model's `ir_dim` must equal `config.ir_dim`.
    pub fn fit_transferred(
        dataset: &Dataset,
        config: &PipelineConfig,
        repr: ReprModel,
    ) -> Result<Self, CoreError> {
        if repr.config().ir_dim != config.ir_dim {
            return Err(CoreError::BadInput(format!(
                "transferred model expects ir_dim {}, config has {}",
                repr.config().ir_dim,
                config.ir_dim
            )));
        }
        Self::fit_inner(dataset, config, Some(repr), &RunBudget::from_env())
    }

    fn fit_inner(
        dataset: &Dataset,
        config: &PipelineConfig,
        transferred: Option<ReprModel>,
        budget: &RunBudget,
    ) -> Result<Self, CoreError> {
        let arity = dataset.table_a.schema.arity();
        if arity != dataset.table_b.schema.arity() {
            return Err(CoreError::BadInput("tables must share arity".into()));
        }
        let _span = vaer_obs::span("pipeline.fit");
        // Stage 1: IRs.
        let stage = vaer_obs::span("pipeline.stage.ir");
        // vaer-lint: allow(det-wallclock) -- feeds the reported per-stage Timings, not the model
        let t0 = Instant::now();
        let sentences = dataset.all_sentences();
        let ir_model = fit_ir_model(
            config.ir_kind,
            &sentences,
            &dataset.tables_raw(),
            config.ir_dim,
            config.seed,
        );
        let a_sentences: Vec<String> = dataset.table_a.sentences().map(str::to_owned).collect();
        let b_sentences: Vec<String> = dataset.table_b.sentences().map(str::to_owned).collect();
        let irs_a = IrTable::new(arity, ir_model.encode_batch(&a_sentences));
        let irs_b = IrTable::new(arity, ir_model.encode_batch(&b_sentences));
        let ir_secs = t0.elapsed().as_secs_f64();
        drop(stage);

        // Stage 2: representation learning (or transfer).
        let stage = vaer_obs::span("pipeline.stage.repr");
        // vaer-lint: allow(det-wallclock) -- feeds the reported per-stage Timings, not the model
        let t1 = Instant::now();
        let mut repr_config = config.repr.clone();
        repr_config.ir_dim = config.ir_dim;
        repr_config.seed = config.seed ^ 0xE301;
        let (repr, repr_stats, repr_secs) = match transferred {
            Some(model) => (model, ReprTrainStats::default(), 0.0),
            None => {
                let all_irs = irs_a.irs.vconcat(&irs_b.irs);
                let (model, stats) = match &config.checkpoint_dir {
                    Some(dir) => {
                        let snapshots = crate::checkpoint::CheckpointStore::open(dir, "vae")?;
                        ReprModel::train_checkpointed_budgeted(
                            &all_irs,
                            &repr_config,
                            &snapshots,
                            config.checkpoint_every,
                            budget,
                        )?
                    }
                    None => ReprModel::train_budgeted(&all_irs, &repr_config, budget)?,
                };
                (model, stats, t1.elapsed().as_secs_f64())
            }
        };
        // The representation model is frozen from here on: encode each
        // table once into a latent cache via the executor's Encode stage;
        // entity representations, matcher features, and resolution all
        // read from it.
        let mut executor = exec::Executor::new();
        executor.set_budget(budget.clone());
        let lat_a = executor.run(
            &mut exec::EncodeTableStage {
                repr: &repr,
                table: &irs_a,
            },
            (),
            config.seed,
        )?;
        let lat_b = executor.run(
            &mut exec::EncodeTableStage {
                repr: &repr,
                table: &irs_b,
            },
            (),
            config.seed ^ 1,
        )?;
        let reprs_a = lat_a.entities();
        let reprs_b = lat_b.entities();
        drop(stage);

        // Stage 3: supervised matching, with Algorithm-1-style auto-labelled
        // random negatives mixed into the labelled pairs (see
        // [`PipelineConfig::auto_negative_ratio`]).
        let stage = vaer_obs::span("pipeline.stage.match");
        // vaer-lint: allow(det-wallclock) -- feeds the reported per-stage Timings, not the model
        let t2 = Instant::now();
        let mut matcher_config = config.matcher.clone();
        matcher_config.seed = config.seed ^ 0x3A7C;
        let mut train_pairs = dataset.train_pairs.clone();
        let n_auto = (config.auto_negative_ratio * train_pairs.pairs.len() as f32).round() as usize;
        if n_auto > 0 && !dataset.table_a.is_empty() && !dataset.table_b.is_empty() {
            let positives: BTreeSet<(usize, usize)> = train_pairs
                .pairs
                .iter()
                .filter(|p| p.is_match)
                .map(|p| (p.left, p.right))
                .collect();
            train_pairs.pairs.extend(sample_auto_negatives(
                n_auto,
                dataset.table_a.len(),
                dataset.table_b.len(),
                &positives,
                config.seed ^ 0xA06E,
            ));
        }
        let (matcher, quantized) =
            if SiameseMatcher::frozen_for(&matcher_config, train_pairs.pairs.len()) {
                let pairs: Vec<(usize, usize)> = train_pairs
                    .pairs
                    .iter()
                    .map(|p| (p.left, p.right))
                    .collect();
                let labels: Vec<f32> = train_pairs
                    .pairs
                    .iter()
                    .map(|p| if p.is_match { 1.0 } else { 0.0 })
                    .collect();
                let features =
                    latent::distance_features(matcher_config.distance, &lat_a, &lat_b, &pairs);
                let matcher = SiameseMatcher::train_cached_budgeted(
                    &repr,
                    &features,
                    &labels,
                    &matcher_config,
                    budget,
                )?;
                // The training features double as the int8 calibration set:
                // deterministic, already materialised, and drawn from the
                // same distance-feature distribution resolution will score.
                let quantized = Some(matcher.quantized(&features)?);
                (matcher, quantized)
            } else {
                let examples = PairExamples::build(&irs_a, &irs_b, &train_pairs);
                // Fine-tuning invalidates the latent caches the quantized
                // lane reads from, so no int8 twin is built (Int8 requests
                // fall back to f32 at resolution time).
                (
                    SiameseMatcher::train_budgeted(&repr, &examples, &matcher_config, budget)?,
                    None,
                )
            };
        let match_secs = t2.elapsed().as_secs_f64();
        drop(stage);
        vaer_obs::event(
            "pipeline.fit",
            &[
                ("ir_secs", ir_secs.into()),
                ("repr_secs", repr_secs.into()),
                ("match_secs", match_secs.into()),
                ("rows_a", dataset.table_a.len().into()),
                ("rows_b", dataset.table_b.len().into()),
                ("train_pairs", train_pairs.pairs.len().into()),
            ],
        );

        Ok(Self {
            ir_model,
            repr,
            matcher,
            quantized,
            irs_a,
            irs_b,
            lat_a,
            lat_b,
            reprs_a,
            reprs_b,
            timings: Timings {
                ir_secs,
                repr_secs,
                match_secs,
            },
            repr_stats,
            config: config.clone(),
            artifacts: PlanArtifacts::default(),
        })
    }

    /// Duplicate probabilities for labelled pairs, via the executor's
    /// Encode → Score stages. While the matcher's encoder is frozen (the
    /// common case) the features come from the latent caches rather than
    /// re-running the encoder per call.
    ///
    /// # Panics
    /// Panics when a `vaer-fault` failpoint injects an error into the
    /// Encode/Score stages — outside fault-injection tests the stage
    /// computations are infallible.
    pub fn predict(&self, pairs: &PairSet) -> Vec<f32> {
        let idx: Vec<(usize, usize)> = pairs.pairs.iter().map(|p| (p.left, p.right)).collect();
        let executor = exec::Executor::new();
        let scored = executor
            .run(
                &mut exec::EncodeStage { pipeline: self },
                idx,
                self.config.seed,
            )
            .and_then(|features| {
                executor.run(
                    &mut exec::ScoreStage { pipeline: self },
                    features,
                    self.config.seed,
                )
            });
        match scored {
            Ok(probs) => probs,
            Err(e) => panic!("prediction stages failed: {e}"),
        }
    }

    /// P/R/F1 of the matcher on a labelled pair set.
    pub fn evaluate(&self, pairs: &PairSet) -> PrF1 {
        self.matcher
            .evaluate(&PairExamples::build(&self.irs_a, &self.irs_b, pairs))
    }

    /// Table IV right-hand columns: top-K retrieval quality of the VAE
    /// representations.
    pub fn representation_report(&self, pairs: &PairSet, k: usize) -> TopKReport {
        topk_eval_vae(&self.reprs_a, &self.reprs_b, pairs, k)
    }

    /// Table IV left-hand columns: top-K retrieval quality of the raw IRs.
    pub fn ir_report(&self, pairs: &PairSet, k: usize) -> TopKReport {
        topk_eval_irs(&self.irs_a, &self.irs_b, pairs, k)
    }

    /// Recall@K over the dataset's full duplicate ground truth (Fig. 4 /
    /// Table VII protocol).
    pub fn recall_at_k(&self, duplicates: &[(usize, usize)], k: usize) -> f32 {
        crate::evaluation::recall_at_k_vae(&self.reprs_a, &self.reprs_b, duplicates, k)
    }

    /// The plan-owned E2Lsh blocking index over table B's latent means,
    /// built on first use and shared by every later blocking or
    /// resolution call (the latents are frozen, so it never goes stale).
    pub fn blocking_index(&self) -> &E2Lsh {
        self.artifacts.index.get_or_init(|| {
            crate::obs::handles().exec_index_builds.incr();
            let b_keys: Vec<Vec<f32>> = self.reprs_b.iter().map(EntityRepr::flat_mu).collect();
            E2Lsh::build_calibrated(b_keys, self.config.seed ^ 0xB10C)
        })
    }

    /// [`blocking_index`](Self::blocking_index) under a [`RunBudget`]:
    /// when the index is not built yet, the build is probed cooperatively
    /// (per hash table and every few dozen insertions) so a deadline or
    /// cancellation interrupts it; an already built index is returned
    /// without probing.
    ///
    /// # Errors
    /// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] when the
    /// budget trips mid-build (nothing is cached in that case).
    pub fn blocking_index_budgeted(&self, budget: &RunBudget) -> Result<&E2Lsh, CoreError> {
        if let Some(index) = self.artifacts.index.get() {
            return Ok(index);
        }
        let b_keys: Vec<Vec<f32>> = self.reprs_b.iter().map(EntityRepr::flat_mu).collect();
        let mut stop = None;
        let mut probe = || match budget.probe("exec.block") {
            Ok(()) => false,
            Err(e) => {
                stop = Some(e);
                true
            }
        };
        match E2Lsh::build_calibrated_probed(b_keys, self.config.seed ^ 0xB10C, &mut probe) {
            Some(index) => {
                let mut built = false;
                let index = self.artifacts.index.get_or_init(|| {
                    built = true;
                    index
                });
                if built {
                    crate::obs::handles().exec_index_builds.incr();
                }
                Ok(index)
            }
            None => Err(stop
                .unwrap_or_else(|| CoreError::Cancelled("blocking index build abandoned".into()))),
        }
    }

    /// Table A's flattened latent means — the blocking query keys, built
    /// once alongside the index.
    pub(crate) fn query_keys(&self) -> &[Vec<f32>] {
        self.artifacts
            .keys_a
            .get_or_init(|| self.reprs_a.iter().map(EntityRepr::flat_mu).collect())
    }

    /// LSH blocking: candidate pairs from the latent means (§VI-B) — the
    /// filter an end-to-end deployment would run before matching.
    pub fn blocking_candidates(&self, k: usize) -> Vec<CandidatePair> {
        knn_join(self.query_keys(), self.blocking_index(), k)
    }

    /// A re-runnable resolution plan over this pipeline: the staged
    /// Block → Encode → Score → Link → Cluster dataflow with per-`k`
    /// artifact reuse, optional checkpointing, and typed errors. Use this
    /// instead of [`resolve`](Self::resolve) to sweep thresholds without
    /// re-blocking or to survive mid-resolution crashes.
    pub fn resolve_plan(&self) -> ResolvePlan<'_> {
        ResolvePlan::new(self)
    }

    /// [`resolve_plan`](Self::resolve_plan) under an explicit
    /// [`RunBudget`]: the blocking-index build (when this plan triggers
    /// it) and every stage of every run are probed against the budget.
    ///
    /// # Errors
    /// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] when the
    /// budget trips during the index build.
    pub fn resolve_plan_budgeted(&self, budget: RunBudget) -> Result<ResolvePlan<'_>, CoreError> {
        ResolvePlan::new_budgeted(self, budget)
    }

    /// Full ER resolution: LSH blocking with top-`k` candidates, then
    /// matcher scoring, keeping links with probability above `threshold`.
    /// Returns `(a_row, b_row, probability)` triples sorted by descending
    /// confidence — the deployment entry point sketched in §VI-B, run on
    /// the staged executor (see [`resolve_plan`](Self::resolve_plan) for
    /// the re-runnable form).
    ///
    /// Links are constrained to a (partial) one-to-one matching: each row
    /// participates in at most one link, resolved greedily by descending
    /// probability. Two deduplicated tables can share at most one record
    /// per entity, so many-to-many link sets are structurally wrong and
    /// were the main precision leak of an unconstrained threshold cut.
    /// Candidates scored NaN by a pathological matcher are dropped before
    /// the threshold cut, deterministically.
    ///
    /// # Panics
    /// Panics when a `vaer-fault` failpoint injects an error into a
    /// resolution stage — outside fault-injection tests the stage
    /// computations are infallible.
    pub fn resolve(&self, k: usize, threshold: f32) -> Vec<(usize, usize, f32)> {
        match self.resolve_plan().run(k, threshold) {
            Ok(resolution) => resolution.links,
            Err(e) => panic!("resolution stages failed: {e}"),
        }
    }

    /// The pre-refactor monolithic resolution path, kept verbatim as the
    /// oracle for the executor equivalence suite: it rebuilds the LSH
    /// index and re-scores from scratch on every call, exactly as
    /// `resolve` did before the staged executor existed. Its output must
    /// stay bit-identical to [`resolve`](Self::resolve) at the same
    /// `(k, threshold)`.
    pub fn resolve_reference(&self, k: usize, threshold: f32) -> Vec<(usize, usize, f32)> {
        let b_keys: Vec<Vec<f32>> = self.reprs_b.iter().map(EntityRepr::flat_mu).collect();
        let a_keys: Vec<Vec<f32>> = self.reprs_a.iter().map(EntityRepr::flat_mu).collect();
        let index = E2Lsh::build_calibrated(b_keys, self.config.seed ^ 0xB10C);
        let candidates = knn_join(&a_keys, &index, k);
        let pairs: PairSet = candidates
            .iter()
            .map(|c| LabeledPair {
                left: c.left,
                right: c.right,
                is_match: false,
            })
            .collect();
        let probs = if self.matcher.encoder_frozen() {
            let idx: Vec<(usize, usize)> = pairs.pairs.iter().map(|p| (p.left, p.right)).collect();
            let features = latent::distance_features(
                self.config.matcher.distance,
                &self.lat_a,
                &self.lat_b,
                &idx,
            );
            self.matcher.predict_features(&features)
        } else {
            self.matcher
                .predict(&PairExamples::build(&self.irs_a, &self.irs_b, &pairs))
        };
        let mut links: Vec<(usize, usize, f32)> = pairs
            .pairs
            .iter()
            .zip(&probs)
            .filter(|(_, &p)| p >= threshold)
            .map(|(pair, &p)| (pair.left, pair.right, p))
            .collect();
        links.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        let mut used_a = std::collections::BTreeSet::new();
        let mut used_b = std::collections::BTreeSet::new();
        links.retain(|&(a, b, _)| {
            if used_a.contains(&a) || used_b.contains(&b) {
                return false;
            }
            used_a.insert(a);
            used_b.insert(b);
            true
        });
        links
    }

    /// Per-stage wall-clock timings.
    pub fn timings(&self) -> Timings {
        self.timings
    }

    /// The fitted IR model.
    pub fn ir_model(&self) -> &dyn IrModel {
        self.ir_model.as_ref()
    }

    /// The trained representation model.
    pub fn repr(&self) -> &ReprModel {
        &self.repr
    }

    /// VAE training statistics.
    pub fn repr_stats(&self) -> &ReprTrainStats {
        &self.repr_stats
    }

    /// The trained matcher.
    pub fn matcher(&self) -> &SiameseMatcher {
        &self.matcher
    }

    /// The calibrated int8 scoring twin, present iff the encoder stayed
    /// frozen at fit time (see [`ScorePrecision`]).
    pub fn quantized_matcher(&self) -> Option<&crate::quant::QuantizedMatcher> {
        self.quantized.as_ref()
    }

    /// The IR tables (`(table_a, table_b)`).
    pub fn ir_tables(&self) -> (&IrTable, &IrTable) {
        (&self.irs_a, &self.irs_b)
    }

    /// The entity representations (`(table_a, table_b)`).
    pub fn entity_reprs(&self) -> (&[EntityRepr], &[EntityRepr]) {
        (&self.reprs_a, &self.reprs_b)
    }

    /// The cached latent encodings (`(table_a, table_b)`) — valid for
    /// [`repr`](Self::repr) until a transferred model replaces it.
    pub fn latents(&self) -> (&LatentTable, &LatentTable) {
        (&self.lat_a, &self.lat_b)
    }

    /// The configuration the pipeline was fitted with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

/// Uniform random `(a, b)` auto-negatives avoiding every labelled
/// positive. The paper's Algorithm-1 rationale — a random pair is a
/// negative with overwhelming probability — breaks exactly when the draw
/// *is* a labelled positive, which would feed the matcher contradictory
/// labels for the same pair; such draws are rejected and resampled.
/// Retries are bounded so dense-positive data (labelled matches covering
/// most of the cross product) degrades to fewer auto-negatives instead of
/// looping forever.
pub(crate) fn sample_auto_negatives(
    n: usize,
    len_a: usize,
    len_b: usize,
    positives: &BTreeSet<(usize, usize)>,
    seed: u64,
) -> Vec<LabeledPair> {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    const MAX_RETRIES: usize = 32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    // vaer-lint: allow(cancel-probe-coverage) -- rejection sampler outer loop, bounded by the requested n
    for _ in 0..n {
        // vaer-lint: allow(cancel-probe-coverage) -- rejection retries hard-capped at MAX_RETRIES draws
        for _ in 0..MAX_RETRIES {
            let left = rng.random_range(0..len_a);
            let right = rng.random_range(0..len_b);
            if positives.contains(&(left, right)) {
                continue;
            }
            out.push(LabeledPair {
                left,
                right,
                is_match: false,
            });
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaer_data::domains::{Domain, DomainSpec, Scale};

    fn fast_config(seed: u64) -> PipelineConfig {
        let mut c = PipelineConfig::fast();
        c.seed = seed;
        c
    }

    #[test]
    fn end_to_end_restaurants() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(7);
        let p = Pipeline::fit(&ds, &fast_config(7)).unwrap();
        let report = p.evaluate(&ds.test_pairs);
        assert!(report.f1 > 0.6, "F1 = {report}");
        // Timings populated.
        assert!(p.timings().repr_secs > 0.0);
        assert!(p.timings().match_secs > 0.0);
        assert!(p.timings().total() > 0.0);
    }

    #[test]
    fn vae_report_at_least_as_good_as_reasonable() {
        let ds = DomainSpec::new(Domain::Citations1, Scale::Tiny).generate(3);
        let p = Pipeline::fit(&ds, &fast_config(3)).unwrap();
        let vae = p.representation_report(&ds.test_pairs, 10);
        assert!(vae.recall > 0.5, "VAE recall {}", vae.recall);
        let ir = p.ir_report(&ds.test_pairs, 10);
        assert!(ir.recall > 0.0);
    }

    #[test]
    fn blocking_produces_candidates_covering_duplicates() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(5);
        let p = Pipeline::fit(&ds, &fast_config(5)).unwrap();
        let candidates = p.blocking_candidates(10);
        assert!(!candidates.is_empty());
        let cand_set: std::collections::HashSet<(usize, usize)> =
            candidates.iter().map(|c| (c.left, c.right)).collect();
        let covered = ds
            .duplicates
            .iter()
            .filter(|&&(a, b)| cand_set.contains(&(a, b)))
            .count();
        let coverage = covered as f32 / ds.duplicates.len() as f32;
        assert!(coverage > 0.5, "blocking coverage {coverage}");
    }

    #[test]
    fn resolve_returns_confident_sorted_links() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(6);
        let p = Pipeline::fit(&ds, &fast_config(6)).unwrap();
        let links = p.resolve(5, 0.5);
        assert!(!links.is_empty());
        for w in links.windows(2) {
            assert!(w[0].2 >= w[1].2, "links not sorted by confidence");
        }
        assert!(links.iter().all(|&(_, _, p)| p >= 0.5));
        // Most confident links should be true duplicates.
        let truth: std::collections::HashSet<(usize, usize)> =
            ds.duplicates.iter().copied().collect();
        let top_correct = links
            .iter()
            .take(5)
            .filter(|&&(a, b, _)| truth.contains(&(a, b)))
            .count();
        assert!(top_correct >= 3, "only {top_correct}/5 top links correct");
    }

    #[test]
    fn cached_prediction_matches_direct_matcher() {
        let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(8);
        let p = Pipeline::fit(&ds, &fast_config(8)).unwrap();
        assert!(p.matcher().encoder_frozen(), "tiny pairs must stay frozen");
        let cached = p.predict(&ds.test_pairs);
        let direct = p
            .matcher()
            .predict(&PairExamples::build(&p.irs_a, &p.irs_b, &ds.test_pairs));
        assert_eq!(cached, direct, "cached pipeline predictions diverged");
        let (lat_a, lat_b) = p.latents();
        assert!(!lat_a.is_stale(p.repr()) && !lat_b.is_stale(p.repr()));
    }

    #[test]
    fn transfer_skips_repr_training() {
        let src = DomainSpec::new(Domain::Citations1, Scale::Tiny).generate(1);
        let config = fast_config(1);
        let source = Pipeline::fit(&src, &config).unwrap();
        let tgt = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(2);
        let adapted = crate::transfer::adapt_dataset_arity(&tgt, 4);
        let transferred =
            Pipeline::fit_transferred(&adapted, &config, source.repr().clone()).unwrap();
        assert_eq!(transferred.timings().repr_secs, 0.0);
        let f1 = transferred.evaluate(&adapted.test_pairs).f1;
        assert!(f1 > 0.4, "transferred F1 {f1}");
    }

    #[test]
    fn checkpointed_fit_matches_plain_fit() {
        let ds = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(11);
        let plain = Pipeline::fit(&ds, &fast_config(11)).unwrap();
        let dir = std::env::temp_dir().join(format!("vaer-pipeline-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = fast_config(11);
        config.checkpoint_dir = Some(dir.clone());
        config.checkpoint_every = 3;
        let durable = Pipeline::fit(&ds, &config).unwrap();
        assert_eq!(
            plain.repr().to_bytes(),
            durable.repr().to_bytes(),
            "checkpointing changed the trained representation"
        );
        let snapshots = crate::checkpoint::CheckpointStore::open(&dir, "vae").unwrap();
        assert!(
            !snapshots.list().unwrap().is_empty(),
            "no VAE snapshots written"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_negatives_never_collide_with_positives() {
        // Dense positives: 8 of the 9 cells of a 3x3 cross product are
        // labelled matches, so naive uniform draws collide constantly.
        let mut positives = BTreeSet::new();
        for a in 0..3 {
            for b in 0..3 {
                if (a, b) != (2, 2) {
                    positives.insert((a, b));
                }
            }
        }
        let negatives = sample_auto_negatives(50, 3, 3, &positives, 0xA06E);
        assert!(!negatives.is_empty(), "one free cell, none found");
        for p in &negatives {
            assert!(
                !positives.contains(&(p.left, p.right)),
                "auto-negative ({}, {}) is a labelled positive",
                p.left,
                p.right
            );
            assert!(!p.is_match);
        }
    }

    #[test]
    fn auto_negatives_bound_retries_on_saturated_truth() {
        // Every cell is a labelled positive: rejection sampling cannot
        // succeed and must give up instead of spinning.
        let positives: BTreeSet<(usize, usize)> =
            (0..2).flat_map(|a| (0..2).map(move |b| (a, b))).collect();
        assert!(sample_auto_negatives(10, 2, 2, &positives, 7).is_empty());
    }

    #[test]
    fn auto_negatives_match_legacy_draws_when_collision_free() {
        // With no positives the rejection sampler consumes the rng in the
        // same order as the pre-fix loop — fitted models stay identical
        // on realistic (sparse-positive) data.
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let legacy: Vec<(usize, usize)> = (0..20)
            .map(|_| (rng.random_range(0..10), rng.random_range(0..7)))
            .collect();
        let sampled = sample_auto_negatives(20, 10, 7, &BTreeSet::new(), 99);
        let got: Vec<(usize, usize)> = sampled.iter().map(|p| (p.left, p.right)).collect();
        assert_eq!(got, legacy);
    }

    #[test]
    fn resolve_plan_reuses_artifacts_across_runs() {
        let ds = DomainSpec::new(Domain::Restaurants, Scale::Tiny).generate(6);
        let p = Pipeline::fit(&ds, &fast_config(6)).unwrap();
        let mut plan = p.resolve_plan();
        let first = plan.run(5, 0.5).unwrap();
        assert!(!first.reused);
        // Same k, new threshold: Block/Encode/Score are skipped, and the
        // link set matches a fresh resolve at that threshold exactly.
        let rerun = plan.run(5, 0.8).unwrap();
        assert!(rerun.reused, "threshold re-run recomputed the scores");
        assert_eq!(rerun.candidates, first.candidates);
        assert_eq!(rerun.links, p.resolve(5, 0.8));
        // New k: re-blocks (not reused) but still never rebuilds the
        // index (asserted via obs counters in tests/exec_resume.rs).
        let wider = plan.run(7, 0.5).unwrap();
        assert!(!wider.reused);
        assert_eq!(wider.links, p.resolve(7, 0.5));
        // Clustering through the plan matches clustering the links.
        let entities = plan.entities(5, 0.5, false).unwrap();
        let direct: Vec<(usize, usize)> = first.links.iter().map(|&(a, b, _)| (a, b)).collect();
        let expect =
            crate::cluster::cluster_links(&direct, ds.table_a.len(), ds.table_b.len(), false)
                .unwrap();
        assert_eq!(entities, expect);
    }

    #[test]
    fn transfer_rejects_dim_mismatch() {
        let src = DomainSpec::new(Domain::Beer, Scale::Tiny).generate(4);
        let p = Pipeline::fit(&src, &fast_config(4)).unwrap();
        let mut other = fast_config(4);
        other.ir_dim = 12;
        other.repr = crate::repr::ReprConfig::fast(12);
        assert!(matches!(
            Pipeline::fit_transferred(&src, &other, p.repr().clone()),
            Err(CoreError::BadInput(_))
        ));
    }
}
