//! VAER core: the paper's contribution.
//!
//! *Cost-effective Variational Active Entity Resolution* (Bogatu et al.,
//! ICDE 2021) decouples ER feature engineering from matching:
//!
//! 1. [`repr`] — an unsupervised VAE maps intermediate representations
//!    (IRs) of attribute values to diagonal-Gaussian latent distributions,
//!    with parameters shared across attributes (paper §III).
//! 2. [`matcher`] — a Siamese network initialised from the VAE encoder
//!    compares two tuples attribute-wise via squared 2-Wasserstein
//!    distance vectors and classifies with a 2-layer MLP, trained with the
//!    combined cross-entropy + contrastive loss of Eq. 4 (paper §IV).
//! 3. [`active`] — Algorithm 1 bootstraps initial labels from the latent
//!    space; Algorithm 2 iteratively samples balanced, informative,
//!    diverse pairs for the user to label (paper §V).
//! 4. [`transfer`] — a representation model trained on one domain is
//!    serialised and reused on another without retraining (paper §III-D).
//! 5. [`pipeline`] — glues everything into an end-to-end ER run on the
//!    staged [`exec`] dataflow (Block → Encode → Score → Link → Cluster),
//!    [`evaluation`] implements the paper's top-K representation metrics,
//!    and [`cluster`] consolidates pairwise links into resolved entities.
//!
//! Because the representation model is frozen after stage 1, its
//! encodings of a table never change during stages 2–3; [`latent`]
//! caches them once per table and the AL loop, matcher, and pipeline
//! all index into the cache instead of re-running the encoder.

pub mod active;
pub mod checkpoint;
pub mod cluster;
pub mod entity;
pub mod evaluation;
pub mod exec;
pub mod latent;
pub mod matcher;
mod obs;
pub mod pipeline;
pub mod quant;
pub mod repr;
pub mod resilience;
pub mod transfer;

/// Errors surfaced by the core pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// Training/encoding input had the wrong shape.
    BadInput(String),
    /// A model failed to (de)serialise.
    Model(vaer_nn::NnError),
    /// Labelled data was insufficient to train (e.g. one class missing).
    InsufficientData(String),
    /// A checkpoint/journal file operation failed at the filesystem level.
    Io(std::io::Error),
    /// A checkpoint or journal was corrupt, inconsistent with the run
    /// being resumed, or otherwise unusable.
    Checkpoint(String),
    /// Training diverged (non-finite loss or exploding gradients) and
    /// exhausted its rollback retries.
    Diverged(String),
    /// The run's [`resilience::RunBudget`] deadline passed before the
    /// work completed.
    DeadlineExceeded(String),
    /// The run's [`resilience::CancelToken`] was cancelled.
    Cancelled(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadInput(why) => write!(f, "bad input: {why}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::InsufficientData(why) => write!(f, "insufficient data: {why}"),
            CoreError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CoreError::Checkpoint(why) => write!(f, "checkpoint error: {why}"),
            CoreError::Diverged(why) => write!(f, "training diverged: {why}"),
            CoreError::DeadlineExceeded(why) => write!(f, "deadline exceeded: {why}"),
            CoreError::Cancelled(why) => write!(f, "cancelled: {why}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<vaer_nn::NnError> for CoreError {
    fn from(e: vaer_nn::NnError) -> Self {
        CoreError::Model(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}
