//! Staged resolution executor: the deployment dataflow of §VI-B as
//! composable stages.
//!
//! Resolution is a fixed five-stage dataflow:
//!
//! ```text
//! Block ──► Encode ──► Score ──► Link ──► Cluster
//! ```
//!
//! * **Block** — LSH top-`k` join over the frozen latent means, producing
//!   candidate pairs ([`vaer_index::JoinCache`] memoises per `k`).
//! * **Encode** — pair features: Distance-layer features from the latent
//!   caches while the matcher's encoder is frozen, raw IR pair examples
//!   otherwise.
//! * **Score** — matcher probabilities for the candidate features. While
//!   the encoder is frozen, resolution runs the *fused* form
//!   ([`FusedScoreStage`]): encode-lookup → distance features → scoring in
//!   one blocked pass per [`SCORE_BLOCK`] candidates, never materialising
//!   the full feature matrix, optionally through the int8 lane
//!   ([`ScorePrecision::Int8`]).
//! * **Link** — threshold cut + greedy one-to-one matching, dropping
//!   NaN-probability candidates deterministically.
//! * **Cluster** — union-find consolidation into resolved entities.
//!
//! Each stage is an object with typed inputs/outputs ([`Stage`]); the
//! [`Executor`] wraps every invocation with a `vaer-obs` span named after
//! the stage, run counters, a registered `vaer-fault` failpoint, and —
//! when a [`crate::checkpoint::CheckpointStore`] is mounted — load/save of
//! the stage's artifact, so a killed resolution resumes from the last
//! durable stage instead of re-blocking and re-scoring.
//!
//! [`ResolvePlan`] owns the cross-run artifacts (the blocking join memo
//! and per-`k` probabilities; the E2Lsh index itself lives on the fitted
//! [`Pipeline`]) and re-runs the tail of the dataflow when only the
//! threshold changes. `Pipeline::{fit, predict, resolve}` are all
//! implemented on top of these stages; `Pipeline::resolve_reference`
//! keeps the pre-refactor monolith alive as the equivalence oracle.

use crate::checkpoint::CheckpointStore;
use crate::cluster::{cluster_links, EntityCluster};
use crate::latent::{self, LatentTable};
use crate::matcher::PairExamples;
use crate::pipeline::{Pipeline, ScorePrecision};
use crate::repr::ReprModel;
use crate::resilience::{ResolutionHealth, RetryClass, RetryPolicy, RunBudget};
use crate::CoreError;
use std::cell::RefCell;
use std::collections::BTreeMap;
use vaer_index::{CandidatePair, JoinCache};
use vaer_linalg::Matrix;

/// Every executor stage, in dataflow order. Each name is simultaneously
/// the stage's obs span name and its registered failpoint; the
/// `stage-registry` lint rule holds this list against both registries.
pub const STAGES: &[&str] = &[
    "exec.block",
    "exec.encode",
    "exec.score",
    "exec.link",
    "exec.cluster",
];

/// Identity of a stage: names its span/failpoint and its checkpoint slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// LSH blocking join.
    Block,
    /// Pair-feature construction.
    Encode,
    /// Matcher scoring.
    Score,
    /// Threshold + one-to-one link selection.
    Link,
    /// Entity consolidation.
    Cluster,
}

impl StageKind {
    /// The registered span/failpoint name (an entry of [`STAGES`]).
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Block => "exec.block",
            StageKind::Encode => "exec.encode",
            StageKind::Score => "exec.score",
            StageKind::Link => "exec.link",
            StageKind::Cluster => "exec.cluster",
        }
    }

    /// Checkpoint sequence slot (dataflow position, 1-based).
    pub fn seq(self) -> u64 {
        match self {
            StageKind::Block => 1,
            StageKind::Encode => 2,
            StageKind::Score => 3,
            StageKind::Link => 4,
            StageKind::Cluster => 5,
        }
    }

    /// Fires this stage's failpoint. Names are spelled out literally so
    /// the failpoint registry lint sees one call site per entry.
    ///
    /// # Panics
    /// Panics when the stage's failpoint is armed with
    /// [`vaer_fault::Action::Panic`] — the injected-crash feature.
    fn trigger(self) -> Option<vaer_fault::Action> {
        match self {
            StageKind::Block => vaer_fault::trigger("exec.block"),
            StageKind::Encode => vaer_fault::trigger("exec.encode"),
            StageKind::Score => vaer_fault::trigger("exec.score"),
            StageKind::Link => vaer_fault::trigger("exec.link"),
            StageKind::Cluster => vaer_fault::trigger("exec.cluster"),
        }
    }

    /// Opens this stage's obs span. Literal names for the same reason as
    /// [`trigger`](Self::trigger).
    fn span(self) -> vaer_obs::SpanGuard {
        match self {
            StageKind::Block => vaer_obs::span("exec.block"),
            StageKind::Encode => vaer_obs::span("exec.encode"),
            StageKind::Score => vaer_obs::span("exec.score"),
            StageKind::Link => vaer_obs::span("exec.link"),
            StageKind::Cluster => vaer_obs::span("exec.cluster"),
        }
    }
}

/// One resolution stage: a typed `Input → Output` transform plus
/// optional checkpoint (de)serialisation of its artifact.
///
/// Implementations are cheap transient objects borrowing the fitted
/// pipeline's artifacts; all policy (spans, counters, failpoints,
/// durability) lives in [`Executor::run`], so a stage body is exactly the
/// computation.
pub trait Stage {
    /// What the stage consumes.
    type Input;
    /// What the stage produces.
    type Output;

    /// Which stage this is (names the span, failpoint, checkpoint slot).
    fn kind(&self) -> StageKind;

    /// The stage computation.
    ///
    /// # Errors
    /// Stage-specific input validation ([`CoreError::BadInput`]).
    fn run(&mut self, input: Self::Input) -> Result<Self::Output, CoreError>;

    /// Serialises the artifact for checkpointing; `None` (the default)
    /// means the stage's output is cheap to recompute and is never
    /// persisted.
    fn save(&self, _out: &Self::Output) -> Option<Vec<u8>> {
        None
    }

    /// Deserialises a checkpointed artifact; `None` on any mismatch, in
    /// which case the executor recomputes.
    fn load(&self, _bytes: &[u8]) -> Option<Self::Output> {
        None
    }
}

/// Runs stages with uniform telemetry, fault injection, durability, and
/// resilience policy (budget probes, retries, degradation accounting).
///
/// Checkpointed artifacts are stamped with the caller's `fingerprint`
/// (seed ⊕ model ⊕ plan parameters); a stored artifact whose stamp does
/// not match is ignored, not trusted. A stored artifact that *should*
/// match but cannot be read back (torn envelope, CRC failure, undecodable
/// body) degrades to a recompute and is recorded in the executor's
/// [`ResolutionHealth`] rather than silently swallowed.
#[derive(Default)]
pub struct Executor {
    store: Option<CheckpointStore>,
    budget: RunBudget,
    retry: RetryPolicy,
    health: RefCell<ResolutionHealth>,
}

impl Executor {
    /// An executor without durability: stages always recompute.
    pub fn new() -> Self {
        Self::default()
    }

    /// An executor that loads/saves checkpointable stage artifacts in
    /// `store`.
    pub fn with_checkpoints(store: CheckpointStore) -> Self {
        Self {
            store: Some(store),
            ..Self::default()
        }
    }

    /// Whether a checkpoint store is mounted.
    pub fn durable(&self) -> bool {
        self.store.is_some()
    }

    /// Installs the run budget probed at every stage boundary (and handed
    /// to stages with long inner loops).
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// The installed run budget (defaults to unlimited).
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Installs the retry policy [`run_retrying`](Self::run_retrying)
    /// applies to transient stage failures (defaults to
    /// [`RetryPolicy::none`]).
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Records a degradation into this executor's health accumulator
    /// (also fires the matching obs event and counter).
    pub fn note_degrade(&self, name: &'static str, detail: impl Into<String>) {
        self.health.borrow_mut().degrade(name, detail);
    }

    /// Clears accumulated health (call at the start of a logical run).
    pub fn reset_health(&self) {
        *self.health.borrow_mut() = ResolutionHealth::default();
    }

    /// Takes the accumulated health, leaving a clean slate behind.
    pub fn take_health(&self) -> ResolutionHealth {
        std::mem::take(&mut *self.health.borrow_mut())
    }

    /// Runs one stage: budget probe + span + counters + failpoint,
    /// resuming from a fingerprint-matching checkpoint when possible and
    /// persisting the artifact afterwards when the stage opts in via
    /// [`Stage::save`].
    ///
    /// # Errors
    /// The stage's own validation errors, [`CoreError::Io`] when the
    /// stage's failpoint injects one or a checkpoint write fails,
    /// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] when the
    /// installed budget trips at the stage boundary.
    ///
    /// # Panics
    /// Panics when the stage's failpoint is armed with
    /// [`vaer_fault::Action::Panic`] (injected crash).
    pub fn run<S: Stage>(
        &self,
        stage: &mut S,
        input: S::Input,
        fingerprint: u64,
    ) -> Result<S::Output, CoreError> {
        let kind = stage.kind();
        self.budget.probe(kind.name())?;
        let _span = kind.span();
        crate::obs::handles().exec_stage_runs.incr();
        if let Some(vaer_fault::Action::Err) = kind.trigger() {
            return Err(CoreError::Io(std::io::Error::other(format!(
                "injected failure at stage {}",
                kind.name()
            ))));
        }
        if let Some(store) = &self.store {
            match try_resume(store, stage, fingerprint) {
                Resume::Hit(out) => {
                    crate::obs::handles().exec_stage_resumed.incr();
                    return Ok(out);
                }
                Resume::Corrupt(why) => self.note_degrade(
                    "degrade.stage.recompute",
                    format!("{} checkpoint unusable ({why}); recomputing", kind.name()),
                ),
                Resume::Miss => {}
            }
        }
        let out = stage.run(input)?;
        if let Some(store) = &self.store {
            if let Some(body) = stage.save(&out) {
                let mut payload = fingerprint.to_le_bytes().to_vec();
                payload.extend_from_slice(&body);
                let retries = store.write_budgeted(kind.seq(), &payload, &self.budget)?;
                if retries > 0 {
                    self.health.borrow_mut().add_retries(retries);
                }
            }
        }
        Ok(out)
    }

    /// [`run`](Self::run) wrapped in the installed [`RetryPolicy`]: a
    /// retryable stage failure (per [`RetryClass`]) is re-attempted with
    /// backoff, within the budget. With the default `RetryPolicy::none`
    /// this is exactly `run` — fault-injection contracts on plans that
    /// never opted in stay exact.
    ///
    /// # Errors
    /// Same as [`run`](Self::run); the last attempt's error when retries
    /// are exhausted.
    ///
    /// # Panics
    /// Same as [`run`](Self::run).
    pub fn run_retrying<S: Stage>(
        &self,
        stage: &mut S,
        input: S::Input,
        fingerprint: u64,
    ) -> Result<S::Output, CoreError>
    where
        S::Input: Clone,
    {
        if !self.retry.retries() {
            return self.run(stage, input, fingerprint);
        }
        let mut retries = 0u32;
        let out = self.retry.run(
            &self.budget,
            |_| self.run(stage, input.clone(), fingerprint),
            |_, _| {
                retries += 1;
                crate::obs::handles().exec_stage_retries.add(1);
            },
        );
        if retries > 0 {
            self.health.borrow_mut().add_retries(retries);
        }
        out
    }
}

/// Outcome of a checkpoint-resume attempt.
enum Resume<T> {
    /// A fingerprint-matching artifact was loaded.
    Hit(T),
    /// No usable artifact for this run (absent, or stamped by a run with
    /// different parameters) — the expected cold-start case.
    Miss,
    /// An artifact that should have served this run exists but cannot be
    /// trusted (torn/CRC-failed envelope, undecodable body). The executor
    /// degrades to recompute and records why.
    Corrupt(String),
}

/// Loads a stage's checkpointed artifact when present, uncorrupted, and
/// stamped with the expected fingerprint.
fn try_resume<S: Stage>(store: &CheckpointStore, stage: &S, fingerprint: u64) -> Resume<S::Output> {
    let payload = match store.read(stage.kind().seq()) {
        Ok(p) => p,
        // Every stored generation failed validation — corruption, not a
        // cold start (an empty slot reads as a clean NotFound Io error).
        Err(CoreError::Checkpoint(why)) => return Resume::Corrupt(why),
        Err(_) => return Resume::Miss,
    };
    let stamp = match payload.get(..8).and_then(|b| <[u8; 8]>::try_from(b).ok()) {
        Some(b) => u64::from_le_bytes(b),
        None => return Resume::Corrupt("fingerprint stamp truncated".into()),
    };
    if stamp != fingerprint {
        // A different run's artifact: stale, not corrupt.
        return Resume::Miss;
    }
    match stage.load(&payload[8..]) {
        Some(out) => Resume::Hit(out),
        None => Resume::Corrupt("artifact body failed to decode".into()),
    }
}

// ---------------------------------------------------------------------
// Concrete stages
// ---------------------------------------------------------------------

/// Block: top-`k` LSH join of table A's latent means against the
/// plan-owned index over table B's.
pub struct BlockStage<'c, 'p> {
    /// Per-`k` join memo owned by the plan.
    pub cache: &'c mut JoinCache<'p>,
    /// Run budget probed once per query row inside the join (a memoised
    /// `k` is served without probing).
    pub budget: RunBudget,
}

impl Stage for BlockStage<'_, '_> {
    type Input = usize;
    type Output = Vec<CandidatePair>;

    fn kind(&self) -> StageKind {
        StageKind::Block
    }

    fn run(&mut self, k: usize) -> Result<Self::Output, CoreError> {
        let budget = &self.budget;
        let mut stop = None;
        let mut probe = || match budget.probe("exec.block") {
            Ok(()) => false,
            Err(e) => {
                stop = Some(e);
                true
            }
        };
        match self.cache.candidates_probed(k, &mut probe) {
            Some(c) => Ok(c.to_vec()),
            None => {
                Err(stop.unwrap_or_else(|| CoreError::Cancelled("blocking join abandoned".into())))
            }
        }
    }

    fn save(&self, out: &Self::Output) -> Option<Vec<u8>> {
        Some(save_candidates(out))
    }

    fn load(&self, bytes: &[u8]) -> Option<Self::Output> {
        load_candidates(bytes)
    }
}

/// Bit-exact candidate-list serialisation (u64 count, then
/// `(left, right, distance-bits)` records).
fn save_candidates(out: &[CandidatePair]) -> Vec<u8> {
    let mut bytes = (out.len() as u64).to_le_bytes().to_vec();
    for c in out {
        bytes.extend_from_slice(&(c.left as u64).to_le_bytes());
        bytes.extend_from_slice(&(c.right as u64).to_le_bytes());
        bytes.extend_from_slice(&c.distance.to_bits().to_le_bytes());
    }
    bytes
}

fn load_candidates(bytes: &[u8]) -> Option<Vec<CandidatePair>> {
    let n = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
    let body = bytes.get(8..)?;
    if body.len() != n * 20 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for rec in body.chunks_exact(20) {
        out.push(CandidatePair {
            left: u64::from_le_bytes(rec[..8].try_into().ok()?) as usize,
            right: u64::from_le_bytes(rec[8..16].try_into().ok()?) as usize,
            distance: f32::from_bits(u32::from_le_bytes(rec[16..].try_into().ok()?)),
        });
    }
    Some(out)
}

/// Pair features handed from Encode to Score.
pub enum PairFeatures {
    /// Distance-layer features from the frozen-encoder latent caches.
    Cached(Matrix),
    /// Raw IR pair examples for a fine-tuned encoder.
    Raw(PairExamples),
}

impl PairFeatures {
    /// Number of pairs the features cover.
    pub fn len(&self) -> usize {
        match self {
            PairFeatures::Cached(m) => m.rows(),
            PairFeatures::Raw(ex) => ex.len(),
        }
    }

    /// Whether the feature set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Encode: pair features for candidate `(a_row, b_row)` pairs — from the
/// latent caches while the matcher's encoder is frozen (the common case),
/// from raw IRs otherwise.
pub struct EncodeStage<'p> {
    /// The fitted pipeline whose caches/IRs feed the features.
    pub pipeline: &'p Pipeline,
}

impl Stage for EncodeStage<'_> {
    type Input = Vec<(usize, usize)>;
    type Output = PairFeatures;

    fn kind(&self) -> StageKind {
        StageKind::Encode
    }

    fn run(&mut self, pairs: Self::Input) -> Result<Self::Output, CoreError> {
        let p = self.pipeline;
        if p.matcher.encoder_frozen() {
            Ok(PairFeatures::Cached(latent::distance_features(
                p.config.matcher.distance,
                &p.lat_a,
                &p.lat_b,
                &pairs,
            )))
        } else {
            Ok(PairFeatures::Raw(PairExamples::build_unlabeled(
                &p.irs_a, &p.irs_b, &pairs,
            )))
        }
    }
}

/// Encode (fit-time variant): one table's IRs into a frozen latent cache.
/// Same stage identity as [`EncodeStage`] — it is the same dataflow node,
/// reached from `fit` instead of `resolve`.
pub struct EncodeTableStage<'a> {
    /// The frozen representation model.
    pub repr: &'a ReprModel,
    /// The IR table to encode.
    pub table: &'a crate::entity::IrTable,
}

impl Stage for EncodeTableStage<'_> {
    type Input = ();
    type Output = LatentTable;

    fn kind(&self) -> StageKind {
        StageKind::Encode
    }

    fn run(&mut self, (): ()) -> Result<Self::Output, CoreError> {
        Ok(LatentTable::encode(self.repr, self.table))
    }
}

/// Score: matcher probabilities for encoded candidate pairs.
pub struct ScoreStage<'p> {
    /// The fitted pipeline whose matcher scores the features.
    pub pipeline: &'p Pipeline,
}

impl Stage for ScoreStage<'_> {
    type Input = PairFeatures;
    type Output = Vec<f32>;

    fn kind(&self) -> StageKind {
        StageKind::Score
    }

    fn run(&mut self, features: PairFeatures) -> Result<Self::Output, CoreError> {
        Ok(match features {
            PairFeatures::Cached(m) => self.pipeline.matcher.predict_features(&m),
            PairFeatures::Raw(ex) => self.pipeline.matcher.predict(&ex),
        })
    }

    fn save(&self, out: &Self::Output) -> Option<Vec<u8>> {
        Some(save_probs(out))
    }

    fn load(&self, bytes: &[u8]) -> Option<Self::Output> {
        load_probs(bytes)
    }
}

/// Bit-exact probability serialisation (u64 count, then f32 bit
/// patterns) — NaNs survive the round trip unchanged.
fn save_probs(out: &[f32]) -> Vec<u8> {
    let mut bytes = (out.len() as u64).to_le_bytes().to_vec();
    for p in out {
        bytes.extend_from_slice(&p.to_bits().to_le_bytes());
    }
    bytes
}

fn load_probs(bytes: &[u8]) -> Option<Vec<f32>> {
    let n = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
    let body = bytes.get(8..)?;
    if body.len() != n * 4 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for rec in body.chunks_exact(4) {
        out.push(f32::from_bits(u32::from_le_bytes(rec.try_into().ok()?)));
    }
    Some(out)
}

/// Candidate pairs scored per fused block: bounds the transient feature
/// matrix at `SCORE_BLOCK x (arity·latent)` however many candidates
/// blocking produced. Scoring is row-independent, so the chunked result
/// is bit-identical to a single full-matrix pass.
pub const SCORE_BLOCK: usize = 512;

/// Score (fused fast lane): for a frozen-encoder matcher, encode-lookup →
/// distance features → scoring run as one blocked pass over the candidate
/// pairs, without materialising the full feature matrix the separate
/// Encode stage would build. Same stage identity (span, failpoint,
/// checkpoint slot) as [`ScoreStage`] — it is the same dataflow node with
/// a fused body; `exec.encode` simply never fires during a fused
/// resolution.
pub struct FusedScoreStage<'p> {
    /// The fitted pipeline whose latent caches and matcher score pairs.
    pub pipeline: &'p Pipeline,
    /// Which scoring lane to run. `Int8` requires the pipeline to carry a
    /// calibrated [`crate::quant::QuantizedMatcher`].
    pub precision: ScorePrecision,
    /// Run budget probed once per [`SCORE_BLOCK`] chunk, so cancellation
    /// and deadlines surface mid-Score instead of only at stage
    /// boundaries.
    pub budget: RunBudget,
}

impl Stage for FusedScoreStage<'_> {
    type Input = Vec<(usize, usize)>;
    type Output = Vec<f32>;

    fn kind(&self) -> StageKind {
        StageKind::Score
    }

    fn run(&mut self, pairs: Self::Input) -> Result<Self::Output, CoreError> {
        let p = self.pipeline;
        if !p.matcher.encoder_frozen() {
            return Err(CoreError::BadInput(
                "fused scoring requires a frozen encoder (latent caches are stale after \
                 fine-tuning)"
                    .into(),
            ));
        }
        let quantized = match self.precision {
            ScorePrecision::F32 => None,
            ScorePrecision::Int8 => Some(p.quantized_matcher().ok_or_else(|| {
                CoreError::BadInput(
                    "int8 scoring requested but the pipeline has no quantized matcher".into(),
                )
            })?),
        };
        let width = p.matcher.arity() * p.matcher.latent_dim();
        let mut probs = Vec::with_capacity(pairs.len());
        let mut buf = Matrix::zeros(SCORE_BLOCK.min(pairs.len().max(1)), width);
        for chunk in pairs.chunks(SCORE_BLOCK) {
            self.budget.probe("exec.score")?;
            if buf.rows() != chunk.len() {
                buf = Matrix::zeros(chunk.len(), width);
            }
            latent::distance_features_into(
                p.config.matcher.distance,
                &p.lat_a,
                &p.lat_b,
                chunk,
                &mut buf,
            );
            probs.extend(match quantized {
                Some(q) => q.predict_features(&buf),
                None => p.matcher.predict_features(&buf),
            });
        }
        Ok(probs)
    }

    fn save(&self, out: &Self::Output) -> Option<Vec<u8>> {
        Some(save_probs(out))
    }

    fn load(&self, bytes: &[u8]) -> Option<Self::Output> {
        load_probs(bytes)
    }
}

/// Link: threshold cut plus greedy one-to-one matching by descending
/// probability. Candidates whose probability is NaN (an upstream model
/// pathology) are dropped before the cut, deterministically — they can
/// neither link nor perturb the sort.
pub struct LinkStage {
    /// Minimum probability for a candidate to become a link.
    pub threshold: f32,
}

impl Stage for LinkStage {
    type Input = (Vec<CandidatePair>, Vec<f32>);
    type Output = Vec<(usize, usize, f32)>;

    fn kind(&self) -> StageKind {
        StageKind::Link
    }

    fn run(&mut self, (candidates, probs): Self::Input) -> Result<Self::Output, CoreError> {
        if candidates.len() != probs.len() {
            return Err(CoreError::BadInput(format!(
                "{} candidates scored with {} probabilities",
                candidates.len(),
                probs.len()
            )));
        }
        let mut links: Vec<(usize, usize, f32)> = candidates
            .iter()
            .zip(&probs)
            .filter(|(_, &p)| !p.is_nan() && p >= self.threshold)
            .map(|(c, &p)| (c.left, c.right, p))
            .collect();
        // NaN-free by construction, so partial_cmp is total here; the
        // stable sort keeps candidate order among equal probabilities.
        links.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        let mut used_a = std::collections::BTreeSet::new();
        let mut used_b = std::collections::BTreeSet::new();
        links.retain(|&(a, b, _)| {
            if used_a.contains(&a) || used_b.contains(&b) {
                return false;
            }
            used_a.insert(a);
            used_b.insert(b);
            true
        });
        Ok(links)
    }
}

/// Cluster: union-find consolidation of links into resolved entities.
pub struct ClusterStage {
    /// Rows in table A.
    pub len_a: usize,
    /// Rows in table B.
    pub len_b: usize,
    /// Whether unlinked rows become singleton clusters.
    pub include_singletons: bool,
}

impl Stage for ClusterStage {
    type Input = Vec<(usize, usize)>;
    type Output = Vec<EntityCluster>;

    fn kind(&self) -> StageKind {
        StageKind::Cluster
    }

    fn run(&mut self, links: Self::Input) -> Result<Self::Output, CoreError> {
        cluster_links(&links, self.len_a, self.len_b, self.include_singletons)
    }
}

// ---------------------------------------------------------------------
// ResolvePlan
// ---------------------------------------------------------------------

/// The outcome of one [`ResolvePlan::run`].
#[derive(Debug, Clone)]
pub struct Resolution {
    /// `(a_row, b_row, probability)` links, descending probability,
    /// one-to-one.
    pub links: Vec<(usize, usize, f32)>,
    /// Candidate pairs the blocking stage produced for this `k`.
    pub candidates: usize,
    /// Whether Block/Encode/Score were skipped because this `k` was
    /// already scored at this precision by an earlier run (threshold-only
    /// re-run).
    pub reused: bool,
    /// The precision that actually scored this run. An `Int8` request
    /// falls back to `F32` when the pipeline carries no quantized matcher
    /// (fine-tuned encoder) or when the int8 lane degrades mid-run; every
    /// such downgrade is recorded in [`health`](Self::health).
    pub precision: ScorePrecision,
    /// Degradations and retries this run survived. A clean run reports
    /// [`ResolutionHealth::is_clean`]; anything else means the result is
    /// honest but was produced on a fallback path.
    pub health: ResolutionHealth,
}

/// A re-runnable resolution over one fitted pipeline.
///
/// The plan owns the cross-run artifacts: the per-`k` blocking join memo
/// and the per-`(k, precision)` candidate probabilities (the E2Lsh index
/// itself is owned by the [`Pipeline`] and shared by every plan).
/// Re-running with a new `threshold` at a known `(k, precision)` executes
/// only the Link stage; re-running with a new `k` re-blocks and re-scores
/// but never rebuilds the index; f32 and int8 score memos coexist and
/// never mix. Artifacts never invalidate mid-plan because the pipeline is
/// immutable once fitted; a newly fitted (or transferred) pipeline means
/// a new plan.
pub struct ResolvePlan<'p> {
    pipeline: &'p Pipeline,
    executor: Executor,
    blocks: JoinCache<'p>,
    scored: BTreeMap<(usize, ScorePrecision), Vec<f32>>,
    top_candidates: Option<usize>,
}

impl<'p> ResolvePlan<'p> {
    /// A plan over `pipeline`, building the blocking index now if no
    /// earlier plan/resolve call already has. The stage budget starts from
    /// [`RunBudget::from_env`], so `VAER_DEADLINE_MS` bounds resolutions
    /// out of the box; the eager index build here is not budgeted — use
    /// [`new_budgeted`](Self::new_budgeted) to bound that too.
    pub fn new(pipeline: &'p Pipeline) -> Self {
        let mut executor = Executor::new();
        executor.set_budget(RunBudget::from_env());
        Self {
            pipeline,
            executor,
            blocks: JoinCache::new(pipeline.query_keys(), pipeline.blocking_index()),
            scored: BTreeMap::new(),
            top_candidates: None,
        }
    }

    /// A plan over `pipeline` under an explicit [`RunBudget`]: the LSH
    /// index build (when this plan is the first to need it) is probed
    /// cooperatively, and every subsequent stage runs under the same
    /// budget.
    ///
    /// # Errors
    /// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] when the
    /// budget trips during the index build.
    pub fn new_budgeted(pipeline: &'p Pipeline, budget: RunBudget) -> Result<Self, CoreError> {
        let index = pipeline.blocking_index_budgeted(&budget)?;
        let mut executor = Executor::new();
        executor.set_budget(budget);
        Ok(Self {
            pipeline,
            executor,
            blocks: JoinCache::new(pipeline.query_keys(), index),
            scored: BTreeMap::new(),
            top_candidates: None,
        })
    }

    /// Mounts a checkpoint store: Block and Score artifacts become
    /// durable, and a plan opened on the same store after a crash resumes
    /// from them instead of recomputing.
    pub fn with_checkpoints(mut self, store: CheckpointStore) -> Self {
        let budget = self.executor.budget().clone();
        self.executor = Executor::with_checkpoints(store);
        self.executor.set_budget(budget);
        self
    }

    /// Replaces the stage budget (deadline/cancellation) probed at stage
    /// boundaries and inside long stage loops. The blocking index is
    /// already built by the time a plan exists; use
    /// [`new_budgeted`](Self::new_budgeted) to bound that too.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.executor.set_budget(budget);
        self
    }

    /// Installs a retry policy: transient stage failures (injected IO
    /// faults, torn checkpoint reads) are re-attempted with backoff
    /// instead of failing the run. Defaults to [`RetryPolicy::none`].
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.executor.set_retry(retry);
        self
    }

    /// Caps each left row at its `m` highest-probability candidates
    /// before Link (batched top-candidate selection). With `m >= k` this
    /// is a no-op (blocking already yields at most `k` candidates per
    /// row); a smaller `m` trades link recall for Link-stage work on
    /// dense candidate sets. Selection is deterministic: ties keep the
    /// earlier candidate, NaN probabilities rank below everything.
    pub fn with_top_candidates(mut self, m: usize) -> Self {
        self.top_candidates = Some(m);
        self
    }

    /// The precision that will actually score, given a request: `Int8`
    /// downgrades to `F32` when no quantized matcher was calibrated at
    /// fit time (fine-tuned encoder).
    fn effective_precision(&self, requested: ScorePrecision) -> ScorePrecision {
        match requested {
            ScorePrecision::Int8 if self.pipeline.quantized_matcher().is_none() => {
                ScorePrecision::F32
            }
            p => p,
        }
    }

    /// Stamp for checkpointed artifacts: run parameters that change the
    /// artifact's content (model + seed + `k` + scoring precision — an
    /// int8 probability checkpoint must never resume an f32 run, and vice
    /// versa; `F32` keeps the historical stamp so old checkpoints stay
    /// valid).
    fn fingerprint(&self, k: usize, precision: ScorePrecision) -> u64 {
        let salt = match precision {
            ScorePrecision::F32 => 0,
            ScorePrecision::Int8 => 0x18A7_C0DE_0000_0001,
        };
        self.pipeline.config.seed
            ^ self.pipeline.repr.fingerprint().rotate_left(17)
            ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ salt
    }

    /// Runs Block → Score (fused) → Link for this `(k, threshold)` at the
    /// pipeline's configured
    /// [`score_precision`](crate::pipeline::PipelineConfig::score_precision),
    /// reusing every artifact an earlier run of this plan produced. A
    /// fine-tuned (unfrozen) encoder takes the staged
    /// Block → Encode → Score → Link path instead.
    ///
    /// # Errors
    /// Stage validation errors, or [`CoreError::Io`] from injected
    /// failpoints / checkpoint writes.
    pub fn run(&mut self, k: usize, threshold: f32) -> Result<Resolution, CoreError> {
        self.run_with_precision(k, threshold, self.pipeline.config.score_precision)
    }

    /// [`run`](Self::run) with an explicit scoring precision, overriding
    /// the pipeline configuration for this invocation only.
    ///
    /// # Errors
    /// Same as [`run`](Self::run).
    pub fn run_with_precision(
        &mut self,
        k: usize,
        threshold: f32,
        precision: ScorePrecision,
    ) -> Result<Resolution, CoreError> {
        crate::obs::handles().exec_plan_runs.incr();
        self.executor.reset_health();
        let requested = precision;
        let mut precision = self.effective_precision(precision);
        if requested == ScorePrecision::Int8 && precision == ScorePrecision::F32 {
            self.executor.note_degrade(
                "degrade.score.f32_fallback",
                "int8 requested but no quantized matcher is calibrated; scoring f32",
            );
        }
        let mut fingerprint = self.fingerprint(k, precision);
        let mut reused = self.blocks.contains(k) && self.scored.contains_key(&(k, precision));
        if reused {
            // Memo-poisoning ladder: a score memo whose length disagrees
            // with its candidate list can only produce garbage links —
            // rebuild this k cold instead of trusting it.
            let n_probs = self.scored[&(k, precision)].len();
            let n_cands = self.blocks.candidates(k).len();
            if n_probs != n_cands {
                self.executor.note_degrade(
                    "degrade.plan.rebuild",
                    format!(
                        "poisoned memo for k={k}: {n_probs} probabilities for {n_cands} \
                         candidates; rebuilding cold"
                    ),
                );
                self.scored.remove(&(k, precision));
                self.blocks.invalidate(k);
                reused = false;
            }
        }
        let (candidates, probs) = if reused {
            crate::obs::handles().exec_plan_cache_hits.incr();
            (
                self.blocks.candidates(k).to_vec(),
                self.scored[&(k, precision)].clone(),
            )
        } else {
            let candidates = self.executor.run_retrying(
                &mut BlockStage {
                    cache: &mut self.blocks,
                    budget: self.executor.budget().clone(),
                },
                k,
                fingerprint,
            )?;
            // A checkpoint-resumed Block bypasses the join memo; seed it
            // so threshold re-runs stay pure cache hits.
            if !self.blocks.contains(k) {
                self.blocks.insert(k, candidates.clone());
            }
            let pairs: Vec<(usize, usize)> = candidates.iter().map(|c| (c.left, c.right)).collect();
            let probs = if self.pipeline.matcher.encoder_frozen() {
                let scored = self.executor.run_retrying(
                    &mut FusedScoreStage {
                        pipeline: self.pipeline,
                        precision,
                        budget: self.executor.budget().clone(),
                    },
                    pairs.clone(),
                    fingerprint,
                );
                match scored {
                    Ok(p) => p,
                    // Int8-lane ladder: a transiently failing quantized
                    // Score retries (above) and then degrades to the f32
                    // lane rather than failing the resolution. Fatal
                    // errors (bad input, cancellation, deadline) are not
                    // masked.
                    Err(e) if precision == ScorePrecision::Int8 && e.retryable() => {
                        self.executor.note_degrade(
                            "degrade.score.f32_fallback",
                            format!("int8 score lane failed ({e}); retrying on the f32 lane"),
                        );
                        precision = ScorePrecision::F32;
                        fingerprint = self.fingerprint(k, precision);
                        self.executor.run_retrying(
                            &mut FusedScoreStage {
                                pipeline: self.pipeline,
                                precision,
                                budget: self.executor.budget().clone(),
                            },
                            pairs,
                            fingerprint,
                        )?
                    }
                    Err(e) => return Err(e),
                }
            } else {
                let features = self.executor.run_retrying(
                    &mut EncodeStage {
                        pipeline: self.pipeline,
                    },
                    pairs,
                    fingerprint,
                )?;
                // PairFeatures is not Clone; Score on the staged path is
                // pure compute over it, so a retry could not help anyway.
                self.executor.run(
                    &mut ScoreStage {
                        pipeline: self.pipeline,
                    },
                    features,
                    fingerprint,
                )?
            };
            self.scored.insert((k, precision), probs.clone());
            (candidates, probs)
        };
        let n_candidates = candidates.len();
        let (candidates, probs) = match self.top_candidates {
            Some(m) => select_top_per_row(candidates, probs, m),
            None => (candidates, probs),
        };
        let links = self.executor.run_retrying(
            &mut LinkStage { threshold },
            (candidates, probs),
            fingerprint,
        )?;
        Ok(Resolution {
            links,
            candidates: n_candidates,
            reused,
            precision,
            health: self.executor.take_health(),
        })
    }

    /// Seeds (or, in tests, deliberately poisons) the score memo for
    /// `(k, precision)`. A seeded entry whose length disagrees with the
    /// blocking memo is detected on the next run and rebuilt cold via the
    /// `degrade.plan.rebuild` ladder.
    pub fn seed_scores(&mut self, k: usize, precision: ScorePrecision, probs: Vec<f32>) {
        self.scored.insert((k, precision), probs);
    }

    /// Runs the full dataflow through Cluster: resolved entity clusters
    /// at this `(k, threshold)`.
    ///
    /// # Errors
    /// Same as [`run`](Self::run).
    pub fn entities(
        &mut self,
        k: usize,
        threshold: f32,
        include_singletons: bool,
    ) -> Result<Vec<EntityCluster>, CoreError> {
        let resolution = self.run(k, threshold)?;
        let fingerprint = self.fingerprint(k, resolution.precision);
        let links: Vec<(usize, usize)> = resolution.links.iter().map(|&(a, b, _)| (a, b)).collect();
        self.executor.run(
            &mut ClusterStage {
                len_a: self.pipeline.reprs_a.len(),
                len_b: self.pipeline.reprs_b.len(),
                include_singletons,
            },
            links,
            fingerprint,
        )
    }

    /// The pipeline this plan resolves over.
    pub fn pipeline(&self) -> &'p Pipeline {
        self.pipeline
    }
}

/// Batched per-row top-`m` selection: keeps, for every left row, its `m`
/// highest-probability candidates, preserving the original candidate
/// order among survivors. Ties keep the earlier candidate; NaN
/// probabilities rank below every real number (they would be dropped by
/// Link anyway). Candidate lists and probabilities must be parallel.
fn select_top_per_row(
    candidates: Vec<CandidatePair>,
    probs: Vec<f32>,
    m: usize,
) -> (Vec<CandidatePair>, Vec<f32>) {
    debug_assert_eq!(candidates.len(), probs.len());
    if m == 0 {
        return (Vec::new(), Vec::new());
    }
    // Group candidate indices by left row (blocking emits them grouped,
    // but the selection does not rely on that).
    let mut by_row: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, c) in candidates.iter().enumerate() {
        by_row.entry(c.left).or_default().push(i);
    }
    let sort_key = |i: usize| {
        let p = probs[i];
        if p.is_nan() {
            f32::NEG_INFINITY
        } else {
            p
        }
    };
    let mut keep = vec![true; candidates.len()];
    // vaer-lint: allow(cancel-probe-coverage) -- per-row top-m truncation bounded by candidate count; runs inside a probed stage
    for indices in by_row.values_mut() {
        if indices.len() <= m {
            continue;
        }
        // Descending probability, earlier candidate wins ties; everything
        // past rank m is cut.
        indices.sort_by(|&a, &b| {
            sort_key(b)
                .partial_cmp(&sort_key(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &i in &indices[m..] {
            keep[i] = false;
        }
    }
    let mut kept_candidates = Vec::with_capacity(candidates.len());
    let mut kept_probs = Vec::with_capacity(probs.len());
    for (i, (c, p)) in candidates.into_iter().zip(probs).enumerate() {
        if keep[i] {
            kept_candidates.push(c);
            kept_probs.push(p);
        }
    }
    (kept_candidates, kept_probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_match_registries() {
        // Defense in depth alongside the `stage-registry` lint rule: the
        // executor's stage list is a subset of both closed registries.
        for name in STAGES {
            assert!(
                vaer_fault::FAILPOINTS.contains(name),
                "stage {name} missing from FAILPOINTS"
            );
            assert!(
                vaer_obs::registry::is_registered(name),
                "stage {name} outside registered obs namespaces"
            );
        }
        let kinds = [
            StageKind::Block,
            StageKind::Encode,
            StageKind::Score,
            StageKind::Link,
            StageKind::Cluster,
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names, STAGES, "StageKind::name drifted from STAGES");
        let mut seqs: Vec<u64> = kinds.iter().map(|k| k.seq()).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), kinds.len(), "checkpoint slots collide");
    }

    #[test]
    fn link_stage_is_one_to_one_sorted_and_validates() {
        let cand = |l: usize, r: usize| CandidatePair {
            left: l,
            right: r,
            distance: 0.0,
        };
        let candidates = vec![cand(0, 0), cand(0, 1), cand(1, 1), cand(2, 2)];
        let probs = vec![0.7, 0.9, 0.8, 0.2];
        let mut stage = LinkStage { threshold: 0.5 };
        let links = stage.run((candidates.clone(), probs)).unwrap();
        // (0,1) wins row 0 at 0.9; (1,1) then loses column 1; (0,0) loses
        // row 0; (2,2) is under threshold.
        assert_eq!(links, vec![(0, 1, 0.9)]);
        let err = stage.run((candidates, vec![0.5])).unwrap_err();
        assert!(matches!(err, CoreError::BadInput(_)), "{err}");
    }

    #[test]
    fn link_stage_drops_nan_probabilities_deterministically() {
        let cand = |l: usize, r: usize| CandidatePair {
            left: l,
            right: r,
            distance: 0.0,
        };
        let candidates = vec![cand(0, 0), cand(1, 1), cand(2, 2)];
        let probs = vec![0.9, f32::NAN, 0.8];
        let mut stage = LinkStage { threshold: 0.5 };
        let first = stage.run((candidates.clone(), probs.clone())).unwrap();
        assert_eq!(first, vec![(0, 0, 0.9), (2, 2, 0.8)]);
        for _ in 0..10 {
            assert_eq!(
                stage.run((candidates.clone(), probs.clone())).unwrap(),
                first,
                "NaN handling was not deterministic"
            );
        }
    }

    #[test]
    fn block_and_score_artifacts_roundtrip() {
        let out = vec![
            CandidatePair {
                left: 3,
                right: 9,
                distance: 1.25,
            },
            CandidatePair {
                left: 0,
                right: 2,
                distance: f32::MIN_POSITIVE,
            },
        ];
        let bytes = save_candidates(&out);
        assert_eq!(load_candidates(&bytes).unwrap(), out);
        assert!(load_candidates(&bytes[..bytes.len() - 1]).is_none(), "torn");
        // Score probs round-trip bit-exactly, including weird floats.
        let probs = vec![0.25_f32, f32::NAN, -0.0, 1.0];
        let bytes = save_probs(&probs);
        let back = load_probs(&bytes).unwrap();
        assert_eq!(probs.len(), back.len());
        for (a, b) in probs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "prob bits changed");
        }
        assert!(load_probs(&bytes[..bytes.len() - 2]).is_none(), "torn");
    }

    #[test]
    fn top_per_row_selection_keeps_best_candidates_in_order() {
        let cand = |l: usize, r: usize| CandidatePair {
            left: l,
            right: r,
            distance: 0.0,
        };
        let candidates = vec![cand(0, 0), cand(0, 1), cand(0, 2), cand(1, 0), cand(1, 1)];
        let probs = vec![0.2, 0.9, 0.5, 0.3, 0.1];
        let (kept, kept_probs) = select_top_per_row(candidates.clone(), probs.clone(), 2);
        // Row 0 keeps its two best (0,1)@0.9 and (0,2)@0.5 in original
        // order; row 1 has only two candidates, both survive.
        let pairs: Vec<(usize, usize)> = kept.iter().map(|c| (c.left, c.right)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 0), (1, 1)]);
        assert_eq!(kept_probs, vec![0.9, 0.5, 0.3, 0.1]);
        // m >= per-row candidate count is a no-op.
        let (all, all_probs) = select_top_per_row(candidates.clone(), probs.clone(), 3);
        assert_eq!(all.len(), candidates.len());
        assert_eq!(all_probs, probs);
        // m = 0 drops everything.
        let (none, none_probs) = select_top_per_row(candidates, probs, 0);
        assert!(none.is_empty() && none_probs.is_empty());
    }

    #[test]
    fn top_per_row_selection_ranks_nan_last_and_breaks_ties_by_position() {
        let cand = |l: usize, r: usize| CandidatePair {
            left: l,
            right: r,
            distance: 0.0,
        };
        let candidates = vec![cand(0, 0), cand(0, 1), cand(0, 2), cand(0, 3)];
        let probs = vec![f32::NAN, 0.4, 0.4, 0.4];
        let (kept, kept_probs) = select_top_per_row(candidates, probs, 2);
        // NaN ranks below every real probability; the 0.4 tie keeps the
        // two earliest candidates.
        let pairs: Vec<(usize, usize)> = kept.iter().map(|c| (c.left, c.right)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2)]);
        assert_eq!(kept_probs, vec![0.4, 0.4]);
    }
}
