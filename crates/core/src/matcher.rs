//! Supervised matching in the latent space — the Siamese network of
//! paper §IV.
//!
//! Two encoder heads *share* the VAE encoder's parameters (bound twice on
//! the same tape, so gradients from both heads accumulate — §IV-A's
//! "parameter updating is mirrored"), initialised from the trained
//! representation model. The Distance layer computes attribute-wise
//! squared-2-Wasserstein vectors `d⃗ = (μˢ-μᵗ)² + (σˢ-σᵗ)²`, concatenates
//! them, and a two-layer MLP classifies. Training minimises Eq. 4:
//! binary cross-entropy plus an attribute-averaged contrastive term with
//! margin `M`.

use crate::entity::IrTable;
use crate::repr::ReprModel;
use crate::CoreError;
use vaer_data::PairSet;
use vaer_linalg::Matrix;
use vaer_nn::schedule::minibatches;
use vaer_nn::{
    sharded_step, Adam, Graph, Mlp, MlpConfig, NnRng, Optimizer, ParamStore, SeedableRng,
};
use vaer_stats::metrics::PrF1;

/// Which components of the latent Gaussians feed the Distance layer —
/// the ablation axis for the paper's §IV-A design choice of comparing
/// full distributions rather than points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceKind {
    /// Full squared 2-Wasserstein: `(μˢ-μᵗ)² + (σˢ-σᵗ)²` (the paper).
    #[default]
    W2,
    /// Means only (ignores uncertainty; a plain point-embedding Siamese).
    MuOnly,
    /// Standard deviations only (sanity-check lower bound).
    SigmaOnly,
    /// Variance-normalised mean distance, the symmetrised Mahalanobis
    /// alternative the paper mentions in §IV-A:
    /// `(μˢ-μᵗ)² / (½(σˢ² + σᵗ²) + ε)`.
    Mahalanobis,
}

/// Matcher hyper-parameters (paper Table III: margin `M = 0.5`, Adam at
/// `0.001`).
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Contrastive margin `M`.
    pub margin: f32,
    /// Weight of the contrastive term relative to cross-entropy.
    pub contrastive_weight: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Decoupled (AdamW-style) weight decay applied to the trained
    /// parameters. Small labelled sets (tens of pairs) drive the MLP to
    /// saturated, over-confident logits without it; decay keeps the
    /// decision surface smooth enough to generalise to the hard
    /// near-duplicate negatives produced by blocking.
    pub weight_decay: f32,
    /// Hidden width of the classification MLP.
    pub mlp_hidden: usize,
    /// Whether encoder weights are fine-tuned (true) or frozen at their
    /// transferred values (ablation knob; the paper fine-tunes).
    pub fine_tune_encoder: bool,
    /// Minimum number of labelled pairs before fine-tuning kicks in.
    /// Fine-tuning the encoder on a handful of pairs memorises them (the
    /// train/test gap observed on small noisy domains); below this
    /// threshold the encoder stays frozen even when `fine_tune_encoder`
    /// is set.
    pub fine_tune_min_pairs: usize,
    /// Which Gaussian components the Distance layer compares.
    pub distance: DistanceKind,
    /// RNG seed (shuffling + MLP init).
    pub seed: u64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            margin: 0.5,
            contrastive_weight: 1.0,
            epochs: 40,
            batch_size: 32,
            learning_rate: 8e-3,
            weight_decay: 1e-3,
            mlp_hidden: 32,
            fine_tune_encoder: true,
            fine_tune_min_pairs: 400,
            distance: DistanceKind::W2,
            seed: 0x3A7C,
        }
    }
}

impl MatcherConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            epochs: 40,
            mlp_hidden: 16,
            learning_rate: 1e-2,
            ..Self::default()
        }
    }
}

/// Training examples for the matcher: row-aligned IR slices of both sides.
#[derive(Debug, Clone)]
pub struct PairExamples {
    /// Per-attribute IR matrices of the left tuples (`arity` matrices of
    /// `n x ir_dim`).
    pub left: Vec<Matrix>,
    /// Per-attribute IR matrices of the right tuples.
    pub right: Vec<Matrix>,
    /// Labels (1.0 = duplicate).
    pub labels: Vec<f32>,
}

impl PairExamples {
    /// Assembles examples from two IR tables and labelled pairs.
    pub fn build(a: &IrTable, b: &IrTable, pairs: &PairSet) -> Self {
        assert_eq!(a.arity, b.arity, "tables must share arity");
        let lefts: Vec<usize> = pairs.pairs.iter().map(|p| p.left).collect();
        let rights: Vec<usize> = pairs.pairs.iter().map(|p| p.right).collect();
        let left = (0..a.arity).map(|attr| a.attr_rows(&lefts, attr)).collect();
        let right = (0..b.arity)
            .map(|attr| b.attr_rows(&rights, attr))
            .collect();
        let labels = pairs
            .pairs
            .iter()
            .map(|p| if p.is_match { 1.0 } else { 0.0 })
            .collect();
        Self {
            left,
            right,
            labels,
        }
    }

    /// From explicit index pairs (used by the AL loop on unlabeled pools).
    pub fn build_unlabeled(a: &IrTable, b: &IrTable, pairs: &[(usize, usize)]) -> Self {
        assert_eq!(a.arity, b.arity, "tables must share arity");
        let lefts: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
        let rights: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
        let left = (0..a.arity).map(|attr| a.attr_rows(&lefts, attr)).collect();
        let right = (0..b.arity)
            .map(|attr| b.attr_rows(&rights, attr))
            .collect();
        let labels = vec![0.0; pairs.len()];
        Self {
            left,
            right,
            labels,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether there are no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Arity of the examples.
    pub fn arity(&self) -> usize {
        self.left.len()
    }

    fn select(&self, rows: &[usize]) -> PairExamples {
        PairExamples {
            left: self.left.iter().map(|m| m.select_rows(rows)).collect(),
            right: self.right.iter().map(|m| m.select_rows(rows)).collect(),
            labels: rows.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// A contiguous row slice (used by the sharded training/scoring paths).
    fn slice(&self, start: usize, end: usize) -> PairExamples {
        PairExamples {
            left: self.left.iter().map(|m| m.slice_rows(start, end)).collect(),
            right: self
                .right
                .iter()
                .map(|m| m.slice_rows(start, end))
                .collect(),
            labels: self.labels[start..end].to_vec(),
        }
    }
}

/// The trained Siamese matching model (the `γ` of the paper).
#[derive(Debug, Clone)]
pub struct SiameseMatcher {
    store: ParamStore,
    mlp: Mlp,
    arity: usize,
    latent_dim: usize,
    config: MatcherConfig,
}

const MLP_NAME: &str = "matcher.mlp";

impl SiameseMatcher {
    /// Trains the matcher from a representation model and labelled pairs.
    ///
    /// The encoder parameters are *copied* from `repr` (the representation
    /// model itself stays frozen, as in Fig. 1's decoupling) and then
    /// fine-tuned together with the fresh MLP.
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] when `examples` is empty or
    /// single-class.
    pub fn train(
        repr: &ReprModel,
        examples: &PairExamples,
        config: &MatcherConfig,
    ) -> Result<Self, CoreError> {
        if examples.is_empty() {
            return Err(CoreError::InsufficientData("no training pairs".into()));
        }
        let has_pos = examples.labels.iter().any(|&l| l > 0.5);
        let has_neg = examples.labels.iter().any(|&l| l < 0.5);
        if !has_pos || !has_neg {
            return Err(CoreError::InsufficientData(
                "training pairs must contain both classes".into(),
            ));
        }
        let arity = examples.arity();
        let latent_dim = repr.config().latent_dim;
        let mut store = repr.store().clone();
        let mut rng = NnRng::seed_from_u64(config.seed);
        let mlp = Mlp::new(
            &mut store,
            MLP_NAME,
            &MlpConfig::relu(vec![arity * latent_dim, config.mlp_hidden, 1]),
            &mut rng,
        );
        let mut matcher = Self {
            store,
            mlp,
            arity,
            latent_dim,
            config: config.clone(),
        };
        matcher.fit(examples, &mut rng)?;
        Ok(matcher)
    }

    fn fit(&mut self, examples: &PairExamples, rng: &mut NnRng) -> Result<(), CoreError> {
        let mut adam =
            Adam::with_rate(self.config.learning_rate).with_weight_decay(self.config.weight_decay);
        let frozen_encoder =
            !self.config.fine_tune_encoder || examples.len() < self.config.fine_tune_min_pairs;
        let mut encoder_params: Vec<vaer_nn::ParamId> = Vec::new();
        if frozen_encoder {
            for name in [
                crate::repr::ENC_HIDDEN,
                crate::repr::ENC_MU,
                crate::repr::ENC_LOGVAR,
            ] {
                for suffix in ["w", "b"] {
                    if let Some(id) = self.store.find(&format!("{name}.{suffix}")) {
                        encoder_params.push(id);
                    }
                }
            }
        }
        // Small labelled sets (tiny scaled domains, early AL iterations)
        // would otherwise see only a handful of gradient steps; guarantee
        // a minimum optimisation budget regardless of dataset size.
        let batches_per_epoch = examples.len().div_ceil(self.config.batch_size).max(1);
        let min_steps = 600usize;
        let epochs = self
            .config
            .epochs
            .max(min_steps.div_ceil(batches_per_epoch));
        if frozen_encoder {
            // The encoder is fixed, so the Distance-layer features are
            // constants: compute them once and train only the MLP. This is
            // exactly the cost profile Fig. 1's decoupling promises — the
            // supervised stage optimises a small classifier over a frozen
            // representation space.
            let features = self.distance_features(examples);
            let labels = Matrix::from_vec(examples.len(), 1, examples.labels.clone());
            for _epoch in 0..epochs {
                for batch in minibatches(examples.len(), self.config.batch_size, rng) {
                    let x = features.select_rows(&batch);
                    let y = labels.select_rows(&batch);
                    let step = sharded_step(batch.len(), |g, rows| {
                        let xt = g.input(x.slice_rows(rows.start, rows.end));
                        let yt = y.slice_rows(rows.start, rows.end);
                        let logits = self.mlp.forward(g, &self.store, xt);
                        g.bce_with_logits(logits, yt)
                    });
                    adam.step(&mut self.store, &step.grads);
                }
            }
            return Ok(());
        }
        for _epoch in 0..epochs {
            for batch in minibatches(examples.len(), self.config.batch_size, rng) {
                let sub = examples.select(&batch);
                let step = sharded_step(sub.len(), |g, rows| {
                    let shard = sub.slice(rows.start, rows.end);
                    let (loss, _logits) = self.loss_graph(g, &shard);
                    loss
                });
                let mut grads = step.grads;
                grads.retain(|(id, _)| !encoder_params.contains(id));
                adam.step(&mut self.store, &grads);
            }
        }
        Ok(())
    }

    /// Concatenated Distance-layer features for a batch, computed outside
    /// any gradient tape (used when the encoder is frozen).
    fn distance_features(&self, examples: &PairExamples) -> Matrix {
        let mut g = Graph::new();
        let mut parts = Vec::with_capacity(self.arity);
        for attr in 0..self.arity {
            let xs = g.input(examples.left[attr].clone());
            let xt = g.input(examples.right[attr].clone());
            let d = self.distance_vector(&mut g, xs, xt);
            parts.push(d);
        }
        let cat = g.concat_cols(&parts);
        g.value(cat).clone()
    }

    /// The Distance layer (§IV-A): per-attribute latent distance vector
    /// according to the configured [`DistanceKind`].
    fn distance_vector(
        &self,
        g: &mut Graph,
        xs: vaer_nn::Tensor,
        xt: vaer_nn::Tensor,
    ) -> vaer_nn::Tensor {
        let (mu_s, sig_s) = ReprModel::encoder_forward(g, &self.store, xs);
        let (mu_t, sig_t) = ReprModel::encoder_forward(g, &self.store, xt);
        let mu_diff = g.sub(mu_s, mu_t);
        let mu_sq = g.square(mu_diff);
        let sig_diff = g.sub(sig_s, sig_t);
        let sig_sq = g.square(sig_diff);
        match self.config.distance {
            DistanceKind::W2 => g.add(mu_sq, sig_sq),
            DistanceKind::MuOnly => mu_sq,
            DistanceKind::SigmaOnly => sig_sq,
            DistanceKind::Mahalanobis => {
                let var_s = g.square(sig_s);
                let var_t = g.square(sig_t);
                let var_sum = g.add(var_s, var_t);
                let var = g.scale(var_sum, 0.5);
                let var = g.add_scalar(var, 1e-4);
                g.div(mu_sq, var)
            }
        }
    }

    /// Builds the Eq. 4 loss for a batch on a fresh tape; returns the loss
    /// and the raw logits tensor.
    fn loss_graph(
        &self,
        g: &mut Graph,
        batch: &PairExamples,
    ) -> (vaer_nn::Tensor, vaer_nn::Tensor) {
        let n = batch.len();
        let labels = Matrix::from_vec(n, 1, batch.labels.clone());
        let x = g.input(labels.clone());
        let ones = g.input(Matrix::filled(n, 1, 1.0));
        let one_minus_x = g.sub(ones, x);
        let mut dist_parts = Vec::with_capacity(self.arity);
        let mut contrastive_terms = Vec::with_capacity(self.arity);
        for attr in 0..self.arity {
            let xs = g.input(batch.left[attr].clone());
            let xt = g.input(batch.right[attr].clone());
            let d_vec = self.distance_vector(g, xs, xt);
            dist_parts.push(d_vec);
            // Contrastive term on the scalar W₂² of this attribute.
            let w2 = g.row_sum(d_vec); // n x 1
            let pos = g.mul(x, w2);
            let neg_margin = g.scale(w2, -1.0);
            let neg_margin = g.add_scalar(neg_margin, self.config.margin);
            let hinge = g.relu(neg_margin);
            let neg = g.mul(one_minus_x, hinge);
            let term = g.add(pos, neg);
            contrastive_terms.push(g.mean_all(term));
        }
        let dist = g.concat_cols(&dist_parts); // n x (m·k)
        let logits = self.mlp.forward(g, &self.store, dist);
        let bce = g.bce_with_logits(logits, labels);
        let mut contrastive = contrastive_terms[0];
        for &t in &contrastive_terms[1..] {
            contrastive = g.add(contrastive, t);
        }
        let contrastive = g.scale(
            contrastive,
            self.config.contrastive_weight / self.arity as f32,
        );
        let loss = g.add(bce, contrastive);
        (loss, logits)
    }

    /// Predicted duplicate probabilities for a batch of pairs.
    ///
    /// Pairs are scored independently, so large batches (blocking
    /// candidates, AL pools) are split into contiguous shards on the
    /// [`vaer_linalg::runtime`] worker pool; each pair's probability is
    /// bit-identical at any thread count.
    pub fn predict(&self, examples: &PairExamples) -> Vec<f32> {
        if examples.is_empty() {
            return Vec::new();
        }
        const MIN_PAIRS_PER_SHARD: usize = 64;
        let shards =
            vaer_linalg::runtime::map_shards(examples.len(), MIN_PAIRS_PER_SHARD, |rows| {
                let shard = examples.slice(rows.start, rows.end);
                let mut g = Graph::new();
                let mut dist_parts = Vec::with_capacity(self.arity);
                for attr in 0..self.arity {
                    let xs = g.input(shard.left[attr].clone());
                    let xt = g.input(shard.right[attr].clone());
                    let d_vec = self.distance_vector(&mut g, xs, xt);
                    dist_parts.push(d_vec);
                }
                let dist = g.concat_cols(&dist_parts);
                let logits = self.mlp.forward(&mut g, &self.store, dist);
                let probs = g.sigmoid(logits);
                g.value(probs).as_slice().to_vec()
            });
        shards.into_iter().flatten().collect()
    }

    /// Evaluates P/R/F1 at threshold 0.5 against the examples' labels.
    pub fn evaluate(&self, examples: &PairExamples) -> PrF1 {
        let probs = self.predict(examples);
        let predicted: Vec<bool> = probs.iter().map(|&p| p > 0.5).collect();
        let actual: Vec<bool> = examples.labels.iter().map(|&l| l > 0.5).collect();
        PrF1::from_labels(&predicted, &actual)
    }

    /// Picks the decision threshold maximising F1 on a labelled validation
    /// set (sweeping the midpoints between consecutive predicted
    /// probabilities). Returns `(threshold, f1_at_threshold)`; `(0.5, 0)`
    /// for an empty or single-class validation set.
    pub fn calibrate_threshold(&self, validation: &PairExamples) -> (f32, f32) {
        let probs = self.predict(validation);
        if probs.is_empty() {
            return (0.5, 0.0);
        }
        let mut scored: Vec<(f32, bool)> = probs
            .iter()
            .zip(validation.labels.iter())
            .map(|(&p, &l)| (p, l > 0.5))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let total_pos = scored.iter().filter(|&&(_, l)| l).count();
        if total_pos == 0 || total_pos == scored.len() {
            return (0.5, 0.0);
        }
        let mut best = (0.5f32, 0.0f32);
        // Threshold candidates: below everything, then each midpoint.
        let mut candidates = vec![scored[0].0 - 1e-3];
        for w in scored.windows(2) {
            candidates.push(0.5 * (w[0].0 + w[1].0));
        }
        for t in candidates {
            let mut tp = 0;
            let mut fp = 0;
            for &(p, l) in &scored {
                if p > t {
                    if l {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                }
            }
            let fn_ = total_pos - tp;
            let m = PrF1::from_counts(tp, fp, fn_, 0);
            if m.f1 > best.1 {
                best = (t, m.f1);
            }
        }
        best
    }

    /// Mean absolute first-layer MLP weight per attribute block — a cheap
    /// interpretability probe of which attributes the matcher relies on
    /// (the "attribute-level weighted matching schemes" §III-A anticipates
    /// fall out of the learned classifier for free).
    ///
    /// Returns one non-negative score per attribute, normalised to sum
    /// to 1 (uniform if the first layer is all zeros).
    pub fn attribute_importance(&self) -> Vec<f32> {
        let first = self
            .mlp
            .param_ids()
            .first()
            .copied()
            .expect("MLP has at least one layer");
        let w = self.store.get(first); // (arity·latent) x hidden
        let mut scores = vec![0.0f32; self.arity];
        for (i, score) in scores.iter_mut().enumerate() {
            let lo = i * self.latent_dim;
            let hi = lo + self.latent_dim;
            for row in lo..hi {
                *score += w.row(row).iter().map(|v| v.abs()).sum::<f32>();
            }
        }
        let total: f32 = scores.iter().sum();
        if total > f32::EPSILON {
            for s in &mut scores {
                *s /= total;
            }
        } else {
            scores.fill(1.0 / self.arity as f32);
        }
        scores
    }

    /// The fine-tuned parameter store (encoder + MLP).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Latent dimensionality per attribute.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Arity the matcher was trained for.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::ReprConfig;
    use vaer_data::LabeledPair;
    use vaer_linalg::XorShiftRng;

    /// Builds a toy world: tuples are 2-attribute entities whose IRs are
    /// cluster points; duplicates share a cluster.
    fn toy_world(seed: u64) -> (ReprModel, IrTable, IrTable, PairSet, PairSet) {
        let ir_dim = 8;
        let n_entities = 24;
        let mut rng = XorShiftRng::new(seed);
        let mut centers = Vec::new();
        for _ in 0..n_entities {
            let c: Vec<f32> = (0..ir_dim).map(|_| rng.gaussian()).collect();
            centers.push(c);
        }
        let jitter = |c: &[f32], rng: &mut XorShiftRng| -> Vec<f32> {
            c.iter().map(|&x| x + 0.05 * rng.gaussian()).collect()
        };
        // Each entity: 2 attributes with distinct cluster centres (offset).
        let mut a_rows = Vec::new();
        let mut b_rows = Vec::new();
        for c in &centers {
            let attr2: Vec<f32> = c.iter().map(|&x| -x).collect();
            a_rows.push(jitter(c, &mut rng));
            a_rows.push(jitter(&attr2, &mut rng));
            b_rows.push(jitter(c, &mut rng));
            b_rows.push(jitter(&attr2, &mut rng));
        }
        let flat = |rows: &Vec<Vec<f32>>| {
            Matrix::from_vec(rows.len(), ir_dim, rows.iter().flatten().copied().collect())
        };
        let a = IrTable::new(2, flat(&a_rows));
        let b = IrTable::new(2, flat(&b_rows));
        // Train the repr model on all IRs.
        let all = a.irs.vconcat(&b.irs);
        let (repr, _) = ReprModel::train(&all, &ReprConfig::fast(ir_dim)).unwrap();
        // Pairs: (i, i) duplicates, (i, i+1) negatives.
        let mut train = PairSet::new();
        let mut test = PairSet::new();
        for i in 0..n_entities {
            let pos = LabeledPair {
                left: i,
                right: i,
                is_match: true,
            };
            let neg = LabeledPair {
                left: i,
                right: (i + 1) % n_entities,
                is_match: false,
            };
            if i % 4 == 0 {
                test.pairs.push(pos);
                test.pairs.push(neg);
            } else {
                train.pairs.push(pos);
                train.pairs.push(neg);
            }
        }
        (repr, a, b, train, test)
    }

    #[test]
    fn matcher_learns_toy_duplicates() {
        let (repr, a, b, train, test) = toy_world(1);
        let examples = PairExamples::build(&a, &b, &train);
        let matcher = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast()).unwrap();
        let report = matcher.evaluate(&PairExamples::build(&a, &b, &test));
        assert!(report.f1 > 0.8, "F1 = {}", report.f1);
    }

    #[test]
    fn predictions_are_probabilities() {
        let (repr, a, b, train, _) = toy_world(2);
        let examples = PairExamples::build(&a, &b, &train);
        let matcher = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast()).unwrap();
        let probs = matcher.predict(&examples);
        assert_eq!(probs.len(), examples.len());
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(matcher
            .predict(&PairExamples::build_unlabeled(&a, &b, &[]))
            .is_empty());
    }

    #[test]
    fn rejects_degenerate_training_sets() {
        let (repr, a, b, mut train, _) = toy_world(3);
        // Empty.
        let empty = PairExamples::build(&a, &b, &PairSet::new());
        assert!(matches!(
            SiameseMatcher::train(&repr, &empty, &MatcherConfig::fast()),
            Err(CoreError::InsufficientData(_))
        ));
        // Single class.
        train.pairs.retain(|p| p.is_match);
        let one_class = PairExamples::build(&a, &b, &train);
        assert!(SiameseMatcher::train(&repr, &one_class, &MatcherConfig::fast()).is_err());
    }

    #[test]
    fn frozen_encoder_keeps_weights() {
        let (repr, a, b, train, _) = toy_world(4);
        let examples = PairExamples::build(&a, &b, &train);
        let cfg = MatcherConfig {
            fine_tune_encoder: false,
            epochs: 4,
            ..MatcherConfig::fast()
        };
        let matcher = SiameseMatcher::train(&repr, &examples, &cfg).unwrap();
        let orig = repr.store();
        let tuned = matcher.store();
        let name = format!("{}.w", crate::repr::ENC_HIDDEN);
        let a_id = orig.find(&name).unwrap();
        let b_id = tuned.find(&name).unwrap();
        assert_eq!(orig.get(a_id), tuned.get(b_id), "frozen encoder changed");
        // And fine-tuning does change them.
        let cfg2 = MatcherConfig {
            fine_tune_encoder: true,
            fine_tune_min_pairs: 0,
            epochs: 4,
            ..MatcherConfig::fast()
        };
        let tuned2 = SiameseMatcher::train(&repr, &examples, &cfg2).unwrap();
        let c_id = tuned2.store().find(&name).unwrap();
        assert_ne!(
            orig.get(a_id),
            tuned2.store().get(c_id),
            "fine-tuned encoder unchanged"
        );
    }

    #[test]
    fn mahalanobis_distance_also_learns() {
        let (repr, a, b, train, test) = toy_world(6);
        let examples = PairExamples::build(&a, &b, &train);
        let cfg = MatcherConfig {
            distance: DistanceKind::Mahalanobis,
            ..MatcherConfig::fast()
        };
        let matcher = SiameseMatcher::train(&repr, &examples, &cfg).unwrap();
        let report = matcher.evaluate(&PairExamples::build(&a, &b, &test));
        assert!(report.f1 > 0.7, "Mahalanobis F1 = {}", report.f1);
    }

    #[test]
    fn threshold_calibration_improves_or_matches_default() {
        let (repr, a, b, train, test) = toy_world(8);
        let examples = PairExamples::build(&a, &b, &train);
        let matcher = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast()).unwrap();
        let test_examples = PairExamples::build(&a, &b, &test);
        let (t, f1_at_t) = matcher.calibrate_threshold(&examples);
        assert!((0.0..=1.0).contains(&t) || t < 0.0, "threshold {t}");
        // Calibrated F1 on the calibration set beats or matches the 0.5 cut.
        let default_f1 = matcher.evaluate(&examples).f1;
        assert!(f1_at_t + 1e-5 >= default_f1, "{f1_at_t} < {default_f1}");
        // And the degenerate cases do not panic.
        let empty = PairExamples::build_unlabeled(&a, &b, &[]);
        assert_eq!(matcher.calibrate_threshold(&empty), (0.5, 0.0));
        let _ = test_examples;
    }

    #[test]
    fn attribute_importance_is_a_distribution() {
        let (repr, a, b, train, _) = toy_world(7);
        let examples = PairExamples::build(&a, &b, &train);
        let matcher = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast()).unwrap();
        let imp = matcher.attribute_importance();
        assert_eq!(imp.len(), 2);
        assert!(imp.iter().all(|&x| x >= 0.0));
        assert!((imp.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn fine_tuning_helps_on_misaligned_representations() {
        // Train the repr model on one distribution, then give the matcher
        // pairs whose similarity signal is weak in the unsupervised space;
        // fine-tuning should not be worse than the frozen encoder.
        let (repr, a, b, train, test) = toy_world(5);
        let examples = PairExamples::build(&a, &b, &train);
        let test_examples = PairExamples::build(&a, &b, &test);
        let frozen = SiameseMatcher::train(
            &repr,
            &examples,
            &MatcherConfig {
                fine_tune_encoder: false,
                ..MatcherConfig::fast()
            },
        )
        .unwrap()
        .evaluate(&test_examples);
        let tuned = SiameseMatcher::train(
            &repr,
            &examples,
            &MatcherConfig {
                fine_tune_min_pairs: 0,
                ..MatcherConfig::fast()
            },
        )
        .unwrap()
        .evaluate(&test_examples);
        assert!(
            tuned.f1 + 0.1 >= frozen.f1,
            "tuned {} vs frozen {}",
            tuned.f1,
            frozen.f1
        );
    }
}
