//! Supervised matching in the latent space — the Siamese network of
//! paper §IV.
//!
//! Two encoder heads *share* the VAE encoder's parameters (bound twice on
//! the same tape, so gradients from both heads accumulate — §IV-A's
//! "parameter updating is mirrored"), initialised from the trained
//! representation model. The Distance layer computes attribute-wise
//! squared-2-Wasserstein vectors `d⃗ = (μˢ-μᵗ)² + (σˢ-σᵗ)²`, concatenates
//! them, and a two-layer MLP classifies. Training minimises Eq. 4:
//! binary cross-entropy plus an attribute-averaged contrastive term with
//! margin `M`.

use crate::entity::IrTable;
use crate::repr::ReprModel;
use crate::resilience::RunBudget;
use crate::CoreError;
use vaer_data::PairSet;
use vaer_linalg::Matrix;
use vaer_nn::schedule::minibatches;
use vaer_nn::{
    sharded_step_pooled, Adam, Graph, GraphPool, Mlp, MlpConfig, NnRng, Optimizer, ParamStore,
    SeedableRng,
};
use vaer_stats::metrics::PrF1;

/// Which components of the latent Gaussians feed the Distance layer —
/// the ablation axis for the paper's §IV-A design choice of comparing
/// full distributions rather than points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceKind {
    /// Full squared 2-Wasserstein: `(μˢ-μᵗ)² + (σˢ-σᵗ)²` (the paper).
    #[default]
    W2,
    /// Means only (ignores uncertainty; a plain point-embedding Siamese).
    MuOnly,
    /// Standard deviations only (sanity-check lower bound).
    SigmaOnly,
    /// Variance-normalised mean distance, the symmetrised Mahalanobis
    /// alternative the paper mentions in §IV-A:
    /// `(μˢ-μᵗ)² / (½(σˢ² + σᵗ²) + ε)`.
    Mahalanobis,
}

/// Matcher hyper-parameters (paper Table III: margin `M = 0.5`, Adam at
/// `0.001`).
#[derive(Debug, Clone)]
pub struct MatcherConfig {
    /// Contrastive margin `M`.
    pub margin: f32,
    /// Weight of the contrastive term relative to cross-entropy.
    pub contrastive_weight: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Decoupled (AdamW-style) weight decay applied to the trained
    /// parameters. Small labelled sets (tens of pairs) drive the MLP to
    /// saturated, over-confident logits without it; decay keeps the
    /// decision surface smooth enough to generalise to the hard
    /// near-duplicate negatives produced by blocking.
    pub weight_decay: f32,
    /// Hidden width of the classification MLP.
    pub mlp_hidden: usize,
    /// Whether encoder weights are fine-tuned (true) or frozen at their
    /// transferred values (ablation knob; the paper fine-tunes).
    pub fine_tune_encoder: bool,
    /// Minimum number of labelled pairs before fine-tuning kicks in.
    /// Fine-tuning the encoder on a handful of pairs memorises them (the
    /// train/test gap observed on small noisy domains); below this
    /// threshold the encoder stays frozen even when `fine_tune_encoder`
    /// is set.
    pub fine_tune_min_pairs: usize,
    /// Which Gaussian components the Distance layer compares.
    pub distance: DistanceKind,
    /// RNG seed (shuffling + MLP init).
    pub seed: u64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            margin: 0.5,
            contrastive_weight: 1.0,
            epochs: 40,
            batch_size: 32,
            learning_rate: 8e-3,
            weight_decay: 1e-3,
            mlp_hidden: 32,
            fine_tune_encoder: true,
            fine_tune_min_pairs: 400,
            distance: DistanceKind::W2,
            seed: 0x3A7C,
        }
    }
}

impl MatcherConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        Self {
            epochs: 40,
            mlp_hidden: 16,
            learning_rate: 1e-2,
            ..Self::default()
        }
    }
}

/// Training examples for the matcher: row-aligned IR slices of both sides.
#[derive(Debug, Clone)]
pub struct PairExamples {
    /// Per-attribute IR matrices of the left tuples (`arity` matrices of
    /// `n x ir_dim`).
    pub left: Vec<Matrix>,
    /// Per-attribute IR matrices of the right tuples.
    pub right: Vec<Matrix>,
    /// Labels (1.0 = duplicate).
    pub labels: Vec<f32>,
}

impl PairExamples {
    /// Assembles examples from two IR tables and labelled pairs.
    ///
    /// # Panics
    /// Panics when the tables disagree on arity or a pair indexes past
    /// either table — callers own the pair set, so both are programming
    /// errors, not recoverable input conditions.
    pub fn build(a: &IrTable, b: &IrTable, pairs: &PairSet) -> Self {
        assert_eq!(a.arity, b.arity, "tables must share arity");
        let lefts: Vec<usize> = pairs.pairs.iter().map(|p| p.left).collect();
        let rights: Vec<usize> = pairs.pairs.iter().map(|p| p.right).collect();
        let left = (0..a.arity).map(|attr| a.attr_rows(&lefts, attr)).collect();
        let right = (0..b.arity)
            .map(|attr| b.attr_rows(&rights, attr))
            .collect();
        let labels = pairs
            .pairs
            .iter()
            .map(|p| if p.is_match { 1.0 } else { 0.0 })
            .collect();
        Self {
            left,
            right,
            labels,
        }
    }

    /// From explicit index pairs (used by the AL loop on unlabeled pools).
    ///
    /// # Panics
    /// Same contract as [`build`](Self::build): arity mismatch or
    /// out-of-range pairs panic.
    pub fn build_unlabeled(a: &IrTable, b: &IrTable, pairs: &[(usize, usize)]) -> Self {
        assert_eq!(a.arity, b.arity, "tables must share arity");
        let lefts: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
        let rights: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
        let left = (0..a.arity).map(|attr| a.attr_rows(&lefts, attr)).collect();
        let right = (0..b.arity)
            .map(|attr| b.attr_rows(&rights, attr))
            .collect();
        let labels = vec![0.0; pairs.len()];
        Self {
            left,
            right,
            labels,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether there are no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Arity of the examples.
    pub fn arity(&self) -> usize {
        self.left.len()
    }

    fn select(&self, rows: &[usize]) -> PairExamples {
        PairExamples {
            left: self.left.iter().map(|m| m.select_rows(rows)).collect(),
            right: self.right.iter().map(|m| m.select_rows(rows)).collect(),
            labels: rows.iter().map(|&i| self.labels[i]).collect(),
        }
    }
}

/// The trained Siamese matching model (the `γ` of the paper).
#[derive(Debug, Clone)]
pub struct SiameseMatcher {
    store: ParamStore,
    mlp: Mlp,
    arity: usize,
    latent_dim: usize,
    config: MatcherConfig,
    /// Whether training left the encoder at its transferred values (in
    /// which case latent-cache-derived features stay valid for scoring).
    frozen_encoder: bool,
}

const MLP_NAME: &str = "matcher.mlp";

/// Replaces non-finite feature values with 0.0 at the scoring boundary,
/// borrowing (allocation-free) on the all-finite fast path. Shared by
/// the f32 and int8 `predict_features` twins so both sanitize
/// identically — Link drops NaN candidates, but predict-only callers
/// must never see NaN probabilities either.
pub(crate) fn sanitize_features(features: &Matrix) -> std::borrow::Cow<'_, Matrix> {
    if features.as_slice().iter().all(|v| v.is_finite()) {
        std::borrow::Cow::Borrowed(features)
    } else {
        std::borrow::Cow::Owned(features.map(|v| if v.is_finite() { v } else { 0.0 }))
    }
}

/// Divergence rollbacks a matcher fit absorbs (each with halved learning
/// rate) before giving up with [`CoreError::Diverged`].
const MAX_MATCHER_ROLLBACKS: u32 = 5;

/// Epoch-start snapshot for the matcher's divergence guard: restoring it
/// rewinds parameters, optimizer moments, and the shuffling RNG, so the
/// retried epoch replays the same batches at the halved learning rate.
struct MatcherGuard {
    store: ParamStore,
    adam: Adam,
    rng: NnRng,
}

/// Checks one batch's loss/gradients for the matcher trainers; applies
/// the `matcher.grads` NaN failpoint. Returns the reason when the epoch
/// must be rolled back.
fn batch_divergence(
    epoch: usize,
    loss: f32,
    grads: &[(vaer_nn::ParamId, Matrix)],
) -> Option<String> {
    let mut loss = loss;
    if matches!(
        vaer_fault::check("matcher.grads"),
        Some(vaer_fault::Action::Nan)
    ) {
        loss = f32::NAN;
    }
    let mut grad_sq = 0.0f64;
    for (_, grad) in grads {
        for &v in grad.as_slice() {
            grad_sq += f64::from(v) * f64::from(v);
        }
    }
    if !loss.is_finite() || !grad_sq.is_finite() {
        Some(format!("non-finite loss/gradient in matcher epoch {epoch}"))
    } else {
        None
    }
}

/// Applies one rollback: restores the guard snapshot, halves the restored
/// optimizer's learning rate, and reports. Errors out past the retry
/// budget.
fn roll_back(
    store: &mut ParamStore,
    adam: &mut Adam,
    rng: &mut NnRng,
    guard: MatcherGuard,
    epoch: usize,
    rollbacks: u32,
    why: &str,
) -> Result<(), CoreError> {
    *store = guard.store;
    *adam = guard.adam;
    *rng = guard.rng;
    let lr = adam.learning_rate() * 0.5;
    adam.set_learning_rate(lr);
    crate::obs::handles().matcher_rollbacks.add(1);
    vaer_obs::event(
        "matcher.rollback",
        &[
            ("epoch", epoch.into()),
            ("reason", why.into()),
            ("lr", f64::from(lr).into()),
            ("rollbacks", rollbacks.into()),
        ],
    );
    if rollbacks > MAX_MATCHER_ROLLBACKS {
        return Err(CoreError::Diverged(format!(
            "{why}; gave up after {MAX_MATCHER_ROLLBACKS} rollbacks"
        )));
    }
    Ok(())
}

impl SiameseMatcher {
    /// Trains the matcher from a representation model and labelled pairs.
    ///
    /// The encoder parameters are *copied* from `repr` (the representation
    /// model itself stays frozen, as in Fig. 1's decoupling) and then
    /// fine-tuned together with the fresh MLP.
    ///
    /// # Errors
    /// [`CoreError::InsufficientData`] when `examples` is empty or
    /// single-class.
    pub fn train(
        repr: &ReprModel,
        examples: &PairExamples,
        config: &MatcherConfig,
    ) -> Result<Self, CoreError> {
        Self::train_budgeted(repr, examples, config, &RunBudget::unlimited())
    }

    /// [`train`](Self::train) under a [`RunBudget`]: the budget is probed
    /// at the top of every epoch, including epochs retried by the
    /// divergence guard, so a flapping trainer consumes its deadline
    /// instead of looping past it.
    ///
    /// # Errors
    /// Same as [`train`](Self::train), plus [`CoreError::Cancelled`] /
    /// [`CoreError::DeadlineExceeded`] when the budget trips.
    pub fn train_budgeted(
        repr: &ReprModel,
        examples: &PairExamples,
        config: &MatcherConfig,
        budget: &RunBudget,
    ) -> Result<Self, CoreError> {
        check_labels(&examples.labels)?;
        let arity = examples.arity();
        let (mut matcher, mut rng) = Self::init(repr, arity, examples.len(), config);
        matcher.fit(examples, &mut rng, budget)?;
        Ok(matcher)
    }

    /// Trains the matcher from a latent cache instead of raw IRs — valid
    /// exactly when [`frozen_for`](Self::frozen_for) holds, because then
    /// the encoder never moves and the cached Distance-layer `features`
    /// (from [`crate::latent::distance_features`]) are the constants the
    /// frozen training path would compute anyway. Produces a matcher
    /// bit-identical to [`train`](Self::train) on the same pairs.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] when the configuration would fine-tune the
    /// encoder (use [`train`](Self::train) with IR examples instead) or
    /// the feature width is not a multiple of the latent dimensionality;
    /// [`CoreError::InsufficientData`] on empty/single-class labels.
    pub fn train_cached(
        repr: &ReprModel,
        features: &Matrix,
        labels: &[f32],
        config: &MatcherConfig,
    ) -> Result<Self, CoreError> {
        Self::train_cached_budgeted(repr, features, labels, config, &RunBudget::unlimited())
    }

    /// [`train_cached`](Self::train_cached) under a [`RunBudget`] (see
    /// [`train_budgeted`](Self::train_budgeted)).
    ///
    /// # Errors
    /// Same as [`train_cached`](Self::train_cached), plus
    /// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] when the
    /// budget trips.
    pub fn train_cached_budgeted(
        repr: &ReprModel,
        features: &Matrix,
        labels: &[f32],
        config: &MatcherConfig,
        budget: &RunBudget,
    ) -> Result<Self, CoreError> {
        if !Self::frozen_for(config, labels.len()) {
            return Err(CoreError::BadInput(
                "cached training requires a frozen encoder".into(),
            ));
        }
        check_labels(labels)?;
        let _span = vaer_obs::span("matcher.fit");
        let latent_dim = repr.config().latent_dim;
        if !features.cols().is_multiple_of(latent_dim) {
            return Err(CoreError::BadInput(format!(
                "feature width {} is not a multiple of latent dim {latent_dim}",
                features.cols()
            )));
        }
        let arity = features.cols() / latent_dim;
        let (mut matcher, mut rng) = Self::init(repr, arity, labels.len(), config);
        matcher.fit_mlp_on_features(features, labels, &mut rng, budget)?;
        Ok(matcher)
    }

    /// Whether a matcher trained with `config` on `n_pairs` labelled
    /// pairs keeps the encoder frozen — the predicate that gates every
    /// latent-cache fast path.
    pub fn frozen_for(config: &MatcherConfig, n_pairs: usize) -> bool {
        !config.fine_tune_encoder || n_pairs < config.fine_tune_min_pairs
    }

    /// Whether this matcher's encoder is still the representation
    /// model's (so latent-cache features remain valid for it).
    pub fn encoder_frozen(&self) -> bool {
        self.frozen_encoder
    }

    fn init(
        repr: &ReprModel,
        arity: usize,
        n_pairs: usize,
        config: &MatcherConfig,
    ) -> (Self, NnRng) {
        let latent_dim = repr.config().latent_dim;
        let mut store = repr.store().clone();
        let mut rng = NnRng::seed_from_u64(config.seed);
        let mlp = Mlp::new(
            &mut store,
            MLP_NAME,
            &MlpConfig::relu(vec![arity * latent_dim, config.mlp_hidden, 1]),
            &mut rng,
        );
        let matcher = Self {
            store,
            mlp,
            arity,
            latent_dim,
            config: config.clone(),
            frozen_encoder: Self::frozen_for(config, n_pairs),
        };
        (matcher, rng)
    }

    /// Minimum optimisation budget: small labelled sets (tiny scaled
    /// domains, early AL iterations) would otherwise see only a handful
    /// of gradient steps.
    fn training_epochs(&self, n_examples: usize) -> usize {
        let batches_per_epoch = n_examples.div_ceil(self.config.batch_size).max(1);
        let min_steps = 600usize;
        self.config
            .epochs
            .max(min_steps.div_ceil(batches_per_epoch))
    }

    fn fit(
        &mut self,
        examples: &PairExamples,
        rng: &mut NnRng,
        budget: &RunBudget,
    ) -> Result<(), CoreError> {
        let _span = vaer_obs::span("matcher.fit");
        if self.frozen_encoder {
            // The encoder is fixed, so the Distance-layer features are
            // constants: compute them once and train only the MLP. This is
            // exactly the cost profile Fig. 1's decoupling promises — the
            // supervised stage optimises a small classifier over a frozen
            // representation space.
            let features = self.distance_features(examples);
            return self.fit_mlp_on_features(&features, &examples.labels, rng, budget);
        }
        let mut adam =
            Adam::with_rate(self.config.learning_rate).with_weight_decay(self.config.weight_decay);
        let epochs = self.training_epochs(examples.len());
        let stride = epoch_event_stride(epochs);
        let mut tapes = GraphPool::new();
        let mut epoch = 0usize;
        let mut rollbacks = 0u32;
        while epoch < epochs {
            // Probed every epoch, including divergence-guard retries
            // (`continue` re-enters here): a flapping trainer consumes its
            // run budget instead of looping past it.
            budget.probe("matcher.fit")?;
            let guard = MatcherGuard {
                store: self.store.clone(),
                adam: adam.clone(),
                rng: rng.clone(),
            };
            let mut epoch_loss = 0.0f32;
            let mut epoch_bce = 0.0f32;
            let mut epoch_con = 0.0f32;
            let mut batches = 0usize;
            let mut diverged: Option<String> = None;
            for batch in minibatches(examples.len(), self.config.batch_size, rng) {
                let sub = examples.select(&batch);
                let batch_len = sub.len();
                // Eq. 4 decomposition, merged with the same shard-size
                // weights sharded_step applies to the loss. Only read off
                // the tape when telemetry is on.
                let parts = std::sync::Mutex::new((0.0f64, 0.0f64));
                let step = sharded_step_pooled(&mut tapes, batch_len, |g, rows| {
                    let (loss, bce, contrastive) = self.loss_graph(g, &sub, rows.start, rows.end);
                    if vaer_obs::enabled() {
                        let w = f64::from(rows.len() as f32 / batch_len.max(1) as f32);
                        let mut p = parts.lock().expect("loss parts poisoned"); // vaer-lint: allow(panic) -- poisoning implies a worker already panicked; that panic propagates at join
                        p.0 += w * f64::from(g.value(bce).get(0, 0));
                        p.1 += w * f64::from(g.value(contrastive).get(0, 0));
                    }
                    loss
                });
                let (bce_part, con_part) = parts.into_inner().expect("loss parts poisoned"); // vaer-lint: allow(panic) -- poisoning implies a worker already panicked; that panic propagates at join
                if let Some(why) = batch_divergence(epoch, step.loss, &step.grads) {
                    diverged = Some(why);
                    break;
                }
                epoch_loss += step.loss;
                epoch_bce += bce_part as f32;
                epoch_con += con_part as f32;
                batches += 1;
                adam.step(&mut self.store, &step.grads);
            }
            if let Some(why) = diverged {
                rollbacks += 1;
                roll_back(
                    &mut self.store,
                    &mut adam,
                    rng,
                    guard,
                    epoch,
                    rollbacks,
                    &why,
                )?;
                continue;
            }
            if vaer_obs::enabled() && (epoch.is_multiple_of(stride) || epoch + 1 == epochs) {
                let denom = batches.max(1) as f32;
                vaer_obs::event(
                    "matcher.epoch",
                    &[
                        ("epoch", epoch.into()),
                        ("loss", (epoch_loss / denom).into()),
                        ("bce", (epoch_bce / denom).into()),
                        ("contrastive", (epoch_con / denom).into()),
                        ("fine_tune", true.into()),
                    ],
                );
            }
            epoch += 1;
        }
        Ok(())
    }

    /// The frozen-encoder training loop: minibatch BCE on the small MLP
    /// over precomputed Distance-layer features. Shared by [`fit`] (which
    /// computes the features from IRs) and [`Self::train_cached`] (which
    /// receives them from the latent cache) so both produce bit-identical
    /// matchers.
    fn fit_mlp_on_features(
        &mut self,
        features: &Matrix,
        labels: &[f32],
        rng: &mut NnRng,
        budget: &RunBudget,
    ) -> Result<(), CoreError> {
        let mut adam =
            Adam::with_rate(self.config.learning_rate).with_weight_decay(self.config.weight_decay);
        let epochs = self.training_epochs(labels.len());
        let stride = epoch_event_stride(epochs);
        let labels = Matrix::from_vec(labels.len(), 1, labels.to_vec());
        let mut tapes = GraphPool::new();
        let mut epoch = 0usize;
        let mut rollbacks = 0u32;
        while epoch < epochs {
            // Same probe contract as [`fit`]: every epoch, including
            // divergence-guard retries.
            budget.probe("matcher.fit")?;
            let guard = MatcherGuard {
                store: self.store.clone(),
                adam: adam.clone(),
                rng: rng.clone(),
            };
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            let mut diverged: Option<String> = None;
            for batch in minibatches(labels.rows(), self.config.batch_size, rng) {
                let x = features.select_rows(&batch);
                let y = labels.select_rows(&batch);
                let step = sharded_step_pooled(&mut tapes, batch.len(), |g, rows| {
                    let xt = g.input_rows(&x, rows.start, rows.end);
                    let logits = self.mlp.forward(g, &self.store, xt);
                    g.bce_with_logits_rows(logits, &y, rows.start, rows.end)
                });
                if let Some(why) = batch_divergence(epoch, step.loss, &step.grads) {
                    diverged = Some(why);
                    break;
                }
                epoch_loss += step.loss;
                batches += 1;
                adam.step(&mut self.store, &step.grads);
            }
            if let Some(why) = diverged {
                rollbacks += 1;
                roll_back(
                    &mut self.store,
                    &mut adam,
                    rng,
                    guard,
                    epoch,
                    rollbacks,
                    &why,
                )?;
                continue;
            }
            if vaer_obs::enabled() && (epoch.is_multiple_of(stride) || epoch + 1 == epochs) {
                // Frozen path: the whole loss is cross-entropy (the
                // contrastive term has no trainable inputs here).
                let mean = epoch_loss / batches.max(1) as f32;
                vaer_obs::event(
                    "matcher.epoch",
                    &[
                        ("epoch", epoch.into()),
                        ("loss", mean.into()),
                        ("bce", mean.into()),
                        ("contrastive", 0.0f32.into()),
                        ("fine_tune", false.into()),
                    ],
                );
            }
            epoch += 1;
        }
        Ok(())
    }

    /// Concatenated Distance-layer features for a batch, computed outside
    /// any gradient tape (used when the encoder is frozen).
    fn distance_features(&self, examples: &PairExamples) -> Matrix {
        let mut g = Graph::new();
        let mut parts = Vec::with_capacity(self.arity);
        for attr in 0..self.arity {
            let xs = g.input_ref(&examples.left[attr]);
            let xt = g.input_ref(&examples.right[attr]);
            let d = self.distance_vector(&mut g, xs, xt);
            parts.push(d);
        }
        let cat = g.concat_cols(&parts);
        g.value(cat).clone()
    }

    /// The Distance layer (§IV-A): per-attribute latent distance vector
    /// according to the configured [`DistanceKind`].
    fn distance_vector(
        &self,
        g: &mut Graph,
        xs: vaer_nn::Tensor,
        xt: vaer_nn::Tensor,
    ) -> vaer_nn::Tensor {
        let (mu_s, sig_s) = ReprModel::encoder_forward(g, &self.store, xs);
        let (mu_t, sig_t) = ReprModel::encoder_forward(g, &self.store, xt);
        let mu_diff = g.sub(mu_s, mu_t);
        let mu_sq = g.square(mu_diff);
        let sig_diff = g.sub(sig_s, sig_t);
        let sig_sq = g.square(sig_diff);
        match self.config.distance {
            DistanceKind::W2 => g.add(mu_sq, sig_sq),
            DistanceKind::MuOnly => mu_sq,
            DistanceKind::SigmaOnly => sig_sq,
            DistanceKind::Mahalanobis => {
                let var_s = g.square(sig_s);
                let var_t = g.square(sig_t);
                let var_sum = g.add(var_s, var_t);
                let var = g.scale(var_sum, 0.5);
                let var = g.add_scalar(var, 1e-4);
                g.div(mu_sq, var)
            }
        }
    }

    /// Builds the Eq. 4 loss for rows `start..end` of `batch` on a tape;
    /// returns `(loss, bce, contrastive)` so trainers can report the
    /// decomposition (forward values are eager, so the components are
    /// free to read once built).
    fn loss_graph(
        &self,
        g: &mut Graph,
        batch: &PairExamples,
        start: usize,
        end: usize,
    ) -> (vaer_nn::Tensor, vaer_nn::Tensor, vaer_nn::Tensor) {
        let n = end - start;
        let labels = Matrix::from_vec(n, 1, batch.labels[start..end].to_vec());
        let x = g.input_ref(&labels);
        let ones = g.input_filled(n, 1, 1.0);
        let one_minus_x = g.sub(ones, x);
        let mut dist_parts = Vec::with_capacity(self.arity);
        let mut contrastive_terms = Vec::with_capacity(self.arity);
        for attr in 0..self.arity {
            let xs = g.input_rows(&batch.left[attr], start, end);
            let xt = g.input_rows(&batch.right[attr], start, end);
            let d_vec = self.distance_vector(g, xs, xt);
            dist_parts.push(d_vec);
            // Contrastive term on the scalar W₂² of this attribute.
            let w2 = g.row_sum(d_vec); // n x 1
            let pos = g.mul(x, w2);
            let neg_margin = g.scale(w2, -1.0);
            let neg_margin = g.add_scalar(neg_margin, self.config.margin);
            let hinge = g.relu(neg_margin);
            let neg = g.mul(one_minus_x, hinge);
            let term = g.add(pos, neg);
            contrastive_terms.push(g.mean_all(term));
        }
        let dist = g.concat_cols(&dist_parts); // n x (m·k)
        let logits = self.mlp.forward(g, &self.store, dist);
        let bce = g.bce_with_logits_rows(logits, &labels, 0, n);
        let mut contrastive = contrastive_terms[0];
        for &t in &contrastive_terms[1..] {
            contrastive = g.add(contrastive, t);
        }
        let contrastive = g.scale(
            contrastive,
            self.config.contrastive_weight / self.arity as f32,
        );
        let loss = g.add(bce, contrastive);
        (loss, bce, contrastive)
    }

    /// Predicted duplicate probabilities for a batch of pairs.
    ///
    /// Pairs are scored independently, so large batches (blocking
    /// candidates, AL pools) are split into contiguous shards on the
    /// [`vaer_linalg::runtime`] worker pool; each pair's probability is
    /// bit-identical at any thread count.
    pub fn predict(&self, examples: &PairExamples) -> Vec<f32> {
        if examples.is_empty() {
            return Vec::new();
        }
        const MIN_PAIRS_PER_SHARD: usize = 64;
        let shards =
            vaer_linalg::runtime::map_shards(examples.len(), MIN_PAIRS_PER_SHARD, |rows| {
                let mut g = Graph::new();
                let mut dist_parts = Vec::with_capacity(self.arity);
                for attr in 0..self.arity {
                    let xs = g.input_rows(&examples.left[attr], rows.start, rows.end);
                    let xt = g.input_rows(&examples.right[attr], rows.start, rows.end);
                    let d_vec = self.distance_vector(&mut g, xs, xt);
                    dist_parts.push(d_vec);
                }
                let dist = g.concat_cols(&dist_parts);
                let logits = self.mlp.forward(&mut g, &self.store, dist);
                let probs = g.sigmoid(logits);
                g.value(probs).as_slice().to_vec()
            });
        shards.into_iter().flatten().collect()
    }

    /// Predicted duplicate probabilities from precomputed Distance-layer
    /// features (`n x (arity·latent)`, e.g. from
    /// [`crate::latent::distance_features`]) — the latent-cache scoring
    /// path, bit-identical to [`predict`](Self::predict) on the same
    /// pairs.
    ///
    /// # Panics
    /// Panics if the matcher fine-tuned its encoder (cached features are
    /// stale for it — use [`predict`](Self::predict)) or on a feature
    /// width mismatch.
    pub fn predict_features(&self, features: &Matrix) -> Vec<f32> {
        assert!(
            self.frozen_encoder,
            "cached features are invalid for a fine-tuned encoder"
        );
        assert_eq!(
            features.cols(),
            self.arity * self.latent_dim,
            "feature width mismatch"
        );
        if features.rows() == 0 {
            return Vec::new();
        }
        // Degenerate upstream rows (e.g. corrupted IRs) must not leak
        // NaN probabilities to predict-only callers; the scan is a
        // no-op on the finite fast path.
        let features = sanitize_features(features);
        let mut g = Graph::new();
        let xt = g.input_ref(features.as_ref());
        let logits = self.mlp.forward(&mut g, &self.store, xt);
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }

    /// Builds the int8 inference twin of this matcher
    /// ([`QuantizedMatcher`](crate::quant::QuantizedMatcher)) by
    /// quantizing the MLP weights per output channel and calibrating
    /// per-layer activation scales from an f32 forward pass over
    /// `calibration` (typically the matcher's own training features).
    ///
    /// Errors when the encoder was fine-tuned (the quantized twin scores
    /// cached distance features, which are stale for a fine-tuned
    /// encoder), on a feature width mismatch, or on an empty
    /// calibration set.
    pub fn quantized(
        &self,
        calibration: &Matrix,
    ) -> Result<crate::quant::QuantizedMatcher, CoreError> {
        if !self.frozen_encoder {
            return Err(CoreError::BadInput(
                "quantized scoring requires a frozen encoder: cached distance features are stale after fine-tuning".into(),
            ));
        }
        if calibration.cols() != self.arity * self.latent_dim {
            return Err(CoreError::BadInput(format!(
                "calibration width {} != arity*latent {}",
                calibration.cols(),
                self.arity * self.latent_dim
            )));
        }
        let ids = self.mlp.param_ids();
        let layers: Vec<(&Matrix, &Matrix)> = ids
            .chunks_exact(2)
            .map(|pair| (self.store.get(pair[0]), self.store.get(pair[1])))
            .collect();
        crate::quant::QuantizedMatcher::calibrate(&layers, calibration, self.arity, self.latent_dim)
    }

    /// Evaluates P/R/F1 at threshold 0.5 against the examples' labels.
    pub fn evaluate(&self, examples: &PairExamples) -> PrF1 {
        let probs = self.predict(examples);
        let predicted: Vec<bool> = probs.iter().map(|&p| p > 0.5).collect();
        let actual: Vec<bool> = examples.labels.iter().map(|&l| l > 0.5).collect();
        PrF1::from_labels(&predicted, &actual)
    }

    /// Picks the decision threshold maximising F1 on a labelled validation
    /// set (sweeping the midpoints between consecutive predicted
    /// probabilities). Returns `(threshold, f1_at_threshold)`; `(0.5, 0)`
    /// for an empty or single-class validation set.
    pub fn calibrate_threshold(&self, validation: &PairExamples) -> (f32, f32) {
        let probs = self.predict(validation);
        if probs.is_empty() {
            return (0.5, 0.0);
        }
        let mut scored: Vec<(f32, bool)> = probs
            .iter()
            .zip(validation.labels.iter())
            .map(|(&p, &l)| (p, l > 0.5))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let total_pos = scored.iter().filter(|&&(_, l)| l).count();
        if total_pos == 0 || total_pos == scored.len() {
            return (0.5, 0.0);
        }
        let mut best = (0.5f32, 0.0f32);
        // Threshold candidates: below everything, then each midpoint.
        let mut candidates = vec![scored[0].0 - 1e-3];
        for w in scored.windows(2) {
            candidates.push(0.5 * (w[0].0 + w[1].0));
        }
        for t in candidates {
            let mut tp = 0;
            let mut fp = 0;
            for &(p, l) in &scored {
                if p > t {
                    if l {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                }
            }
            let fn_ = total_pos - tp;
            let m = PrF1::from_counts(tp, fp, fn_, 0);
            if m.f1 > best.1 {
                best = (t, m.f1);
            }
        }
        best
    }

    /// Mean absolute first-layer MLP weight per attribute block — a cheap
    /// interpretability probe of which attributes the matcher relies on
    /// (the "attribute-level weighted matching schemes" §III-A anticipates
    /// fall out of the learned classifier for free).
    ///
    /// Returns one non-negative score per attribute, normalised to sum
    /// to 1 (uniform if the first layer is all zeros).
    pub fn attribute_importance(&self) -> Vec<f32> {
        let first = self
            .mlp
            .param_ids()
            .first()
            .copied()
            .expect("MLP has at least one layer"); // vaer-lint: allow(panic) -- the MLP constructor always registers at least one layer
        let w = self.store.get(first); // (arity·latent) x hidden
        let mut scores = vec![0.0f32; self.arity];
        for (i, score) in scores.iter_mut().enumerate() {
            let lo = i * self.latent_dim;
            let hi = lo + self.latent_dim;
            for row in lo..hi {
                *score += w.row(row).iter().map(|v| v.abs()).sum::<f32>();
            }
        }
        let total: f32 = scores.iter().sum();
        if total > f32::EPSILON {
            for s in &mut scores {
                *s /= total;
            }
        } else {
            scores.fill(1.0 / self.arity as f32);
        }
        scores
    }

    /// The fine-tuned parameter store (encoder + MLP).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Latent dimensionality per attribute.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Arity the matcher was trained for.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }
}

/// How often the matcher trainers emit a `matcher.epoch` event: at most
/// ~50 per fit (the implicit 600-step minimum budget can push tiny
/// labelled sets to hundreds of epochs, and the AL loop refits every
/// round).
fn epoch_event_stride(epochs: usize) -> usize {
    epochs.div_ceil(50).max(1)
}

/// Validates that a label vector is non-empty and two-class.
fn check_labels(labels: &[f32]) -> Result<(), CoreError> {
    if labels.is_empty() {
        return Err(CoreError::InsufficientData("no training pairs".into()));
    }
    let has_pos = labels.iter().any(|&l| l > 0.5);
    let has_neg = labels.iter().any(|&l| l < 0.5);
    if !has_pos || !has_neg {
        return Err(CoreError::InsufficientData(
            "training pairs must contain both classes".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::ReprConfig;
    use vaer_data::LabeledPair;
    use vaer_linalg::XorShiftRng;

    /// Builds a toy world: tuples are 2-attribute entities whose IRs are
    /// cluster points; duplicates share a cluster.
    fn toy_world(seed: u64) -> (ReprModel, IrTable, IrTable, PairSet, PairSet) {
        let ir_dim = 8;
        let n_entities = 24;
        let mut rng = XorShiftRng::new(seed);
        let mut centers = Vec::new();
        for _ in 0..n_entities {
            let c: Vec<f32> = (0..ir_dim).map(|_| rng.gaussian()).collect();
            centers.push(c);
        }
        let jitter = |c: &[f32], rng: &mut XorShiftRng| -> Vec<f32> {
            c.iter().map(|&x| x + 0.05 * rng.gaussian()).collect()
        };
        // Each entity: 2 attributes with distinct cluster centres (offset).
        let mut a_rows = Vec::new();
        let mut b_rows = Vec::new();
        for c in &centers {
            let attr2: Vec<f32> = c.iter().map(|&x| -x).collect();
            a_rows.push(jitter(c, &mut rng));
            a_rows.push(jitter(&attr2, &mut rng));
            b_rows.push(jitter(c, &mut rng));
            b_rows.push(jitter(&attr2, &mut rng));
        }
        let flat = |rows: &Vec<Vec<f32>>| {
            Matrix::from_vec(rows.len(), ir_dim, rows.iter().flatten().copied().collect())
        };
        let a = IrTable::new(2, flat(&a_rows));
        let b = IrTable::new(2, flat(&b_rows));
        // Train the repr model on all IRs.
        let all = a.irs.vconcat(&b.irs);
        let (repr, _) = ReprModel::train(&all, &ReprConfig::fast(ir_dim)).unwrap();
        // Pairs: (i, i) duplicates, (i, i+1) negatives.
        let mut train = PairSet::new();
        let mut test = PairSet::new();
        for i in 0..n_entities {
            let pos = LabeledPair {
                left: i,
                right: i,
                is_match: true,
            };
            let neg = LabeledPair {
                left: i,
                right: (i + 1) % n_entities,
                is_match: false,
            };
            if i % 4 == 0 {
                test.pairs.push(pos);
                test.pairs.push(neg);
            } else {
                train.pairs.push(pos);
                train.pairs.push(neg);
            }
        }
        (repr, a, b, train, test)
    }

    #[test]
    fn matcher_learns_toy_duplicates() {
        let (repr, a, b, train, test) = toy_world(1);
        let examples = PairExamples::build(&a, &b, &train);
        let matcher = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast()).unwrap();
        let report = matcher.evaluate(&PairExamples::build(&a, &b, &test));
        assert!(report.f1 > 0.8, "F1 = {}", report.f1);
    }

    #[test]
    fn predictions_are_probabilities() {
        let (repr, a, b, train, _) = toy_world(2);
        let examples = PairExamples::build(&a, &b, &train);
        let matcher = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast()).unwrap();
        let probs = matcher.predict(&examples);
        assert_eq!(probs.len(), examples.len());
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(matcher
            .predict(&PairExamples::build_unlabeled(&a, &b, &[]))
            .is_empty());
    }

    #[test]
    fn rejects_degenerate_training_sets() {
        let (repr, a, b, mut train, _) = toy_world(3);
        // Empty.
        let empty = PairExamples::build(&a, &b, &PairSet::new());
        assert!(matches!(
            SiameseMatcher::train(&repr, &empty, &MatcherConfig::fast()),
            Err(CoreError::InsufficientData(_))
        ));
        // Single class.
        train.pairs.retain(|p| p.is_match);
        let one_class = PairExamples::build(&a, &b, &train);
        assert!(SiameseMatcher::train(&repr, &one_class, &MatcherConfig::fast()).is_err());
    }

    #[test]
    fn frozen_encoder_keeps_weights() {
        let (repr, a, b, train, _) = toy_world(4);
        let examples = PairExamples::build(&a, &b, &train);
        let cfg = MatcherConfig {
            fine_tune_encoder: false,
            epochs: 4,
            ..MatcherConfig::fast()
        };
        let matcher = SiameseMatcher::train(&repr, &examples, &cfg).unwrap();
        let orig = repr.store();
        let tuned = matcher.store();
        let name = format!("{}.w", crate::repr::ENC_HIDDEN);
        let a_id = orig.find(&name).unwrap();
        let b_id = tuned.find(&name).unwrap();
        assert_eq!(orig.get(a_id), tuned.get(b_id), "frozen encoder changed");
        // And fine-tuning does change them.
        let cfg2 = MatcherConfig {
            fine_tune_encoder: true,
            fine_tune_min_pairs: 0,
            epochs: 4,
            ..MatcherConfig::fast()
        };
        let tuned2 = SiameseMatcher::train(&repr, &examples, &cfg2).unwrap();
        let c_id = tuned2.store().find(&name).unwrap();
        assert_ne!(
            orig.get(a_id),
            tuned2.store().get(c_id),
            "fine-tuned encoder unchanged"
        );
    }

    #[test]
    fn mahalanobis_distance_also_learns() {
        let (repr, a, b, train, test) = toy_world(6);
        let examples = PairExamples::build(&a, &b, &train);
        let cfg = MatcherConfig {
            distance: DistanceKind::Mahalanobis,
            ..MatcherConfig::fast()
        };
        let matcher = SiameseMatcher::train(&repr, &examples, &cfg).unwrap();
        let report = matcher.evaluate(&PairExamples::build(&a, &b, &test));
        assert!(report.f1 > 0.7, "Mahalanobis F1 = {}", report.f1);
    }

    #[test]
    fn threshold_calibration_improves_or_matches_default() {
        let (repr, a, b, train, test) = toy_world(8);
        let examples = PairExamples::build(&a, &b, &train);
        let matcher = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast()).unwrap();
        let test_examples = PairExamples::build(&a, &b, &test);
        let (t, f1_at_t) = matcher.calibrate_threshold(&examples);
        assert!((0.0..=1.0).contains(&t) || t < 0.0, "threshold {t}");
        // Calibrated F1 on the calibration set beats or matches the 0.5 cut.
        let default_f1 = matcher.evaluate(&examples).f1;
        assert!(f1_at_t + 1e-5 >= default_f1, "{f1_at_t} < {default_f1}");
        // And the degenerate cases do not panic.
        let empty = PairExamples::build_unlabeled(&a, &b, &[]);
        assert_eq!(matcher.calibrate_threshold(&empty), (0.5, 0.0));
        let _ = test_examples;
    }

    #[test]
    fn attribute_importance_is_a_distribution() {
        let (repr, a, b, train, _) = toy_world(7);
        let examples = PairExamples::build(&a, &b, &train);
        let matcher = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast()).unwrap();
        let imp = matcher.attribute_importance();
        assert_eq!(imp.len(), 2);
        assert!(imp.iter().all(|&x| x >= 0.0));
        assert!((imp.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn fine_tuning_helps_on_misaligned_representations() {
        // Train the repr model on one distribution, then give the matcher
        // pairs whose similarity signal is weak in the unsupervised space;
        // fine-tuning should not be worse than the frozen encoder.
        let (repr, a, b, train, test) = toy_world(5);
        let examples = PairExamples::build(&a, &b, &train);
        let test_examples = PairExamples::build(&a, &b, &test);
        let frozen = SiameseMatcher::train(
            &repr,
            &examples,
            &MatcherConfig {
                fine_tune_encoder: false,
                ..MatcherConfig::fast()
            },
        )
        .unwrap()
        .evaluate(&test_examples);
        let tuned = SiameseMatcher::train(
            &repr,
            &examples,
            &MatcherConfig {
                fine_tune_min_pairs: 0,
                ..MatcherConfig::fast()
            },
        )
        .unwrap()
        .evaluate(&test_examples);
        assert!(
            tuned.f1 + 0.1 >= frozen.f1,
            "tuned {} vs frozen {}",
            tuned.f1,
            frozen.f1
        );
    }

    #[test]
    fn divergence_guard_rolls_back_and_eventually_errors() {
        let (repr, a, b, train, _) = toy_world(9);
        let examples = PairExamples::build(&a, &b, &train);
        let _guard = vaer_fault::test_lock();
        // Persistent NaN: every epoch rolls back until the budget runs out.
        vaer_fault::configure("matcher.grads=nan").unwrap();
        let err = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast());
        vaer_fault::clear();
        assert!(
            matches!(err, Err(CoreError::Diverged(_))),
            "expected Diverged, got {:?}",
            err.map(|_| "ok")
        );
        // One poisoned batch is absorbed by a single rollback.
        vaer_fault::configure("matcher.grads=nan@1").unwrap();
        let recovered = SiameseMatcher::train(&repr, &examples, &MatcherConfig::fast());
        vaer_fault::clear();
        assert!(recovered.is_ok(), "one transient NaN must be survivable");
    }
}
