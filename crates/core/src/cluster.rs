//! Entity consolidation: from pairwise links to entity clusters.
//!
//! Matching produces pairwise duplicate links; a deployed ER system
//! (Fig. 1's "resolved entities" output) needs *clusters* — groups of
//! rows, possibly spanning both tables, that refer to one real-world
//! entity. This module provides the standard union-find consolidation
//! over the matcher's links, with cluster-level reporting.

use std::collections::BTreeMap;

/// A row identifier across the two input tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RowId {
    /// Row of table A.
    A(usize),
    /// Row of table B.
    B(usize),
}

/// Union-find (disjoint-set) structure with path halving and union by
/// size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// One resolved entity: the rows (from either table) it comprises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityCluster {
    /// Member rows, sorted (A rows before B rows).
    pub members: Vec<RowId>,
}

impl EntityCluster {
    /// Number of member rows.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty (never produced by [`cluster_links`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Rows from table A.
    pub fn a_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().filter_map(|m| match m {
            RowId::A(i) => Some(*i),
            RowId::B(_) => None,
        })
    }

    /// Rows from table B.
    pub fn b_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().filter_map(|m| match m {
            RowId::B(i) => Some(*i),
            RowId::A(_) => None,
        })
    }
}

/// Consolidates `(a_row, b_row)` links into entity clusters over tables of
/// `len_a` / `len_b` rows. Rows with no links become singleton clusters
/// only if `include_singletons` is set. Clusters are returned largest
/// first, ties broken by smallest member.
///
/// # Errors
/// [`crate::CoreError::BadInput`] when a link references a row outside
/// either table — links often come from external sources (files, other
/// matchers), so out-of-range rows are data, not a programming invariant.
pub fn cluster_links(
    links: &[(usize, usize)],
    len_a: usize,
    len_b: usize,
    include_singletons: bool,
) -> Result<Vec<EntityCluster>, crate::CoreError> {
    let total = len_a + len_b;
    let mut uf = UnionFind::new(total);
    // vaer-lint: allow(cancel-probe-coverage) -- union-find pass bounded by the link count handed in by the caller
    for &(a, b) in links {
        if a >= len_a || b >= len_b {
            return Err(crate::CoreError::BadInput(format!(
                "link ({a}, {b}) is out of range for tables of {len_a} x {len_b} rows"
            )));
        }
        uf.union(a, len_a + b);
    }
    let mut groups: BTreeMap<usize, Vec<RowId>> = BTreeMap::new();
    let mut linked = vec![false; total];
    for &(a, b) in links {
        linked[a] = true;
        linked[len_a + b] = true;
    }
    // vaer-lint: allow(cancel-probe-coverage) -- grouping pass bounded by total row count
    for (x, &is_linked) in linked.iter().enumerate() {
        if !include_singletons && !is_linked {
            continue;
        }
        let root = uf.find(x);
        let id = if x < len_a {
            RowId::A(x)
        } else {
            RowId::B(x - len_a)
        };
        groups.entry(root).or_default().push(id);
    }
    let mut clusters: Vec<EntityCluster> = groups
        .into_values()
        .map(|mut members| {
            members.sort();
            EntityCluster { members }
        })
        .collect();
    clusters.sort_by(|x, y| {
        y.len()
            .cmp(&x.len())
            .then_with(|| x.members.first().cmp(&y.members.first()))
    });
    Ok(clusters)
}

/// Pairwise cluster quality against ground-truth duplicate pairs: a pair
/// counts as predicted-positive when both rows land in one cluster.
///
/// # Errors
/// [`crate::CoreError::BadInput`] when a truth pair references a row
/// outside either table — same contract as [`cluster_links`]: ground
/// truth is data (files, generators), not a programming invariant.
pub fn pairwise_cluster_metrics(
    clusters: &[EntityCluster],
    truth: &[(usize, usize)],
    len_a: usize,
    len_b: usize,
) -> Result<vaer_stats::metrics::PrF1, crate::CoreError> {
    for &(a, b) in truth {
        if a >= len_a || b >= len_b {
            return Err(crate::CoreError::BadInput(format!(
                "truth pair ({a}, {b}) is out of range for tables of {len_a} x {len_b} rows"
            )));
        }
    }
    let mut cluster_of_a = vec![usize::MAX; len_a];
    let mut cluster_of_b = vec![usize::MAX; len_b];
    for (ci, c) in clusters.iter().enumerate() {
        for a in c.a_rows() {
            cluster_of_a[a] = ci;
        }
        for b in c.b_rows() {
            cluster_of_b[b] = ci;
        }
    }
    let truth_set: std::collections::BTreeSet<(usize, usize)> = truth.iter().copied().collect();
    let mut tp = 0;
    let mut fp = 0;
    // Predicted positives: every cross-table pair inside a cluster.
    for c in clusters {
        let a_rows: Vec<usize> = c.a_rows().collect();
        let b_rows: Vec<usize> = c.b_rows().collect();
        for &a in &a_rows {
            for &b in &b_rows {
                if truth_set.contains(&(a, b)) {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
    }
    let fn_ = truth
        .iter()
        .filter(|&&(a, b)| cluster_of_a[a] == usize::MAX || cluster_of_a[a] != cluster_of_b[b])
        .count();
    Ok(vaer_stats::metrics::PrF1::from_counts(tp, fp, fn_, 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn links_form_transitive_clusters() {
        // A0-B0, A1-B0 → {A0, A1, B0}; A2-B2 separate.
        let clusters = cluster_links(&[(0, 0), (1, 0), (2, 2)], 3, 3, false).unwrap();
        assert_eq!(clusters.len(), 2);
        assert_eq!(
            clusters[0].members,
            vec![RowId::A(0), RowId::A(1), RowId::B(0)]
        );
        assert_eq!(clusters[1].members, vec![RowId::A(2), RowId::B(2)]);
    }

    #[test]
    fn singletons_optional() {
        let with = cluster_links(&[(0, 0)], 2, 2, true).unwrap();
        assert_eq!(with.len(), 3); // {A0,B0}, {A1}, {B1}
        let without = cluster_links(&[(0, 0)], 2, 2, false).unwrap();
        assert_eq!(without.len(), 1);
    }

    #[test]
    fn ordering_largest_first() {
        let clusters = cluster_links(&[(0, 0), (0, 1), (2, 2)], 3, 3, false).unwrap();
        assert!(clusters[0].len() >= clusters[1].len());
    }

    #[test]
    fn cluster_row_accessors() {
        let clusters = cluster_links(&[(1, 2)], 3, 4, false).unwrap();
        let c = &clusters[0];
        assert_eq!(c.a_rows().collect::<Vec<_>>(), vec![1]);
        assert_eq!(c.b_rows().collect::<Vec<_>>(), vec![2]);
        assert!(!c.is_empty());
    }

    #[test]
    fn pairwise_metrics_perfect_and_imperfect() {
        let truth = vec![(0, 0), (1, 1)];
        let perfect = cluster_links(&[(0, 0), (1, 1)], 2, 2, false).unwrap();
        let m = pairwise_cluster_metrics(&perfect, &truth, 2, 2).unwrap();
        assert_eq!(m.f1, 1.0);
        // Over-merging costs precision: A0-B0 and A1-B0 in one cluster.
        let merged = cluster_links(&[(0, 0), (1, 0), (1, 1)], 2, 2, false).unwrap();
        let m2 = pairwise_cluster_metrics(&merged, &truth, 2, 2).unwrap();
        assert!(m2.precision < 1.0);
        assert_eq!(m2.recall, 1.0);
    }

    #[test]
    fn pairwise_metrics_reject_out_of_range_truth() {
        // Regression: this used to panic on `cluster_of_a[5]` instead of
        // reporting the bad truth pair like `cluster_links` does.
        let clusters = cluster_links(&[(0, 0)], 2, 2, false).unwrap();
        let err = pairwise_cluster_metrics(&clusters, &[(5, 0)], 2, 2).unwrap_err();
        assert!(
            matches!(err, crate::CoreError::BadInput(_)),
            "expected BadInput, got {err}"
        );
        assert!(err.to_string().contains("out of range"), "{err}");
        assert!(pairwise_cluster_metrics(&clusters, &[(0, 9)], 2, 2).is_err());
        // In-range truth on the same clusters still succeeds.
        assert!(pairwise_cluster_metrics(&clusters, &[(0, 0), (1, 1)], 2, 2).is_ok());
    }

    #[test]
    fn out_of_range_link_is_an_error() {
        let err = cluster_links(&[(5, 0)], 2, 2, false).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert!(cluster_links(&[(0, 9)], 2, 2, false).is_err());
    }
}
