//! Cached [`vaer_obs`] metric handles for the core crate's hot paths.
//!
//! Handles are registered once behind a `OnceLock`, so the per-call cost
//! with telemetry enabled is a couple of relaxed atomic adds — and a
//! single relaxed level load when `VAER_OBS=off`.

use std::sync::OnceLock;
use vaer_obs::Counter;

pub(crate) struct CoreObs {
    /// Full encoder passes ([`crate::repr::ReprModel::encode_matrices`]).
    pub encode_calls: Counter,
    /// IR rows pushed through the encoder across all passes.
    pub encode_rows: Counter,
    /// Latent caches built ([`crate::latent::LatentTable::encode`]).
    pub cache_builds: Counter,
    /// `refresh` calls that found the cache fresh (no encoder pass).
    pub cache_hits: Counter,
    /// `refresh` calls whose fingerprint check forced a re-encode.
    pub cache_invalidations: Counter,
    /// Cached-row gathers served without an encoder pass
    /// ([`crate::latent::LatentTable::attr_rows`]).
    pub cache_reads: Counter,
}

static CORE_OBS: OnceLock<CoreObs> = OnceLock::new();

pub(crate) fn handles() -> &'static CoreObs {
    CORE_OBS.get_or_init(|| CoreObs {
        encode_calls: vaer_obs::counter("repr.encode.calls"),
        encode_rows: vaer_obs::counter("repr.encode.rows"),
        cache_builds: vaer_obs::counter("latent.cache.builds"),
        cache_hits: vaer_obs::counter("latent.cache.hits"),
        cache_invalidations: vaer_obs::counter("latent.cache.invalidations"),
        cache_reads: vaer_obs::counter("latent.cache.reads"),
    })
}
