//! Cached [`vaer_obs`] metric handles for the core crate's hot paths.
//!
//! Handles are registered once behind a `OnceLock`, so the per-call cost
//! with telemetry enabled is a couple of relaxed atomic adds — and a
//! single relaxed level load when `VAER_OBS=off`.

use std::sync::OnceLock;
use vaer_obs::Counter;

pub(crate) struct CoreObs {
    /// Full encoder passes ([`crate::repr::ReprModel::encode_matrices`]).
    pub encode_calls: Counter,
    /// IR rows pushed through the encoder across all passes.
    pub encode_rows: Counter,
    /// Latent caches built ([`crate::latent::LatentTable::encode`]).
    pub cache_builds: Counter,
    /// `refresh` calls that found the cache fresh (no encoder pass).
    pub cache_hits: Counter,
    /// `refresh` calls whose fingerprint check forced a re-encode.
    pub cache_invalidations: Counter,
    /// Cached-row gathers served without an encoder pass
    /// ([`crate::latent::LatentTable::attr_rows`]).
    pub cache_reads: Counter,
    /// Checkpoint snapshots durably written.
    pub checkpoint_writes: Counter,
    /// Checkpoint write attempts that failed and were retried.
    pub checkpoint_write_retries: Counter,
    /// Corrupt/torn snapshot files skipped while loading (CRC or parse
    /// failure; the loader fell back to an older snapshot).
    pub checkpoint_corrupt_skipped: Counter,
    /// Label-journal entries appended (fsynced before use).
    pub journal_appends: Counter,
    /// Labels served from the journal on resume instead of re-querying
    /// the oracle.
    pub journal_replays: Counter,
    /// VAE epochs rolled back after divergence (non-finite loss/grads or
    /// a gradient-norm spike).
    pub vae_rollbacks: Counter,
    /// Matcher epochs rolled back after divergence.
    pub matcher_rollbacks: Counter,
    /// Executor stage invocations ([`crate::exec::Executor::run`]).
    pub exec_stage_runs: Counter,
    /// Stage invocations served from a checkpointed artifact instead of
    /// recomputing.
    pub exec_stage_resumed: Counter,
    /// E2Lsh blocking indexes built — exactly one per fitted pipeline,
    /// however many times `resolve` runs.
    pub exec_index_builds: Counter,
    /// `ResolvePlan::run` invocations.
    pub exec_plan_runs: Counter,
    /// Plan runs that reused memoised candidates/probabilities (threshold
    /// re-runs skip Block/Encode/Score entirely).
    pub exec_plan_cache_hits: Counter,
    /// Budget probes that surfaced `CoreError::Cancelled`.
    pub budget_cancels: Counter,
    /// Budget probes that surfaced `CoreError::DeadlineExceeded`.
    pub budget_deadlines: Counter,
    /// Stage-level retry sleeps burned by the executor's `RetryPolicy`
    /// (checkpoint-write retries count separately, above).
    pub exec_stage_retries: Counter,
    /// Degradations recorded in a `ResolutionHealth` report
    /// ([`crate::resilience::ResolutionHealth::degrade`]).
    pub degrade_fired: Counter,
}

static CORE_OBS: OnceLock<CoreObs> = OnceLock::new();

pub(crate) fn handles() -> &'static CoreObs {
    CORE_OBS.get_or_init(|| CoreObs {
        encode_calls: vaer_obs::counter("repr.encode.calls"),
        encode_rows: vaer_obs::counter("repr.encode.rows"),
        cache_builds: vaer_obs::counter("latent.cache.builds"),
        cache_hits: vaer_obs::counter("latent.cache.hits"),
        cache_invalidations: vaer_obs::counter("latent.cache.invalidations"),
        cache_reads: vaer_obs::counter("latent.cache.reads"),
        checkpoint_writes: vaer_obs::counter("checkpoint.writes"),
        checkpoint_write_retries: vaer_obs::counter("checkpoint.write.retries"),
        checkpoint_corrupt_skipped: vaer_obs::counter("checkpoint.corrupt.skipped"),
        journal_appends: vaer_obs::counter("journal.appends"),
        journal_replays: vaer_obs::counter("journal.replays"),
        vae_rollbacks: vaer_obs::counter("vae.rollbacks"),
        matcher_rollbacks: vaer_obs::counter("matcher.rollbacks"),
        exec_stage_runs: vaer_obs::counter("exec.stage.runs"),
        exec_stage_resumed: vaer_obs::counter("exec.stage.resumed"),
        exec_index_builds: vaer_obs::counter("exec.index.builds"),
        exec_plan_runs: vaer_obs::counter("exec.plan.runs"),
        exec_plan_cache_hits: vaer_obs::counter("exec.plan.cache.hits"),
        budget_cancels: vaer_obs::counter("exec.budget.cancelled"),
        budget_deadlines: vaer_obs::counter("exec.budget.deadline"),
        exec_stage_retries: vaer_obs::counter("exec.stage.retries"),
        degrade_fired: vaer_obs::counter("degrade.fired"),
    })
}
