//! Active learning in the latent space — paper §V.
//!
//! [`bootstrap`] is Algorithm 1: LSH nearest-neighbour candidates over the
//! latent means, with the W₂-closest pairs taken as initial positives and
//! the W₂-furthest as initial negatives. [`ActiveLearner`] is Algorithm 2:
//! each iteration trains the (cheap) Siamese matcher on the current
//! labelled pool and then asks the oracle to label four kinds of samples —
//! certain positives/negatives (low entropy, KDE-consistent distance) and
//! uncertain positives/negatives (high entropy, KDE-surprising distance) —
//! giving class-balanced, informative, diverse batches.
//!
//! The paper's Algorithm 1 is written over a single tuple collection `T`;
//! in the two-table ER setting used by every experiment we adapt it to
//! cross-table candidates (each left tuple is joined to its top-k right
//! neighbours), which is the pairing the matcher ultimately has to judge.

use crate::checkpoint::{put_rng_state, AlSession, Cur};
use crate::entity::{EntityRepr, IrTable};
use crate::latent::{self, LatentTable};
use crate::matcher::{MatcherConfig, PairExamples, SiameseMatcher};
use crate::repr::ReprModel;
use crate::CoreError;
use rand::SeedableRng;
use vaer_data::{LabeledPair, Oracle, PairSet};
use vaer_index::{knn_join, E2Lsh};
use vaer_stats::entropy::binary_entropy;
use vaer_stats::kde::Kde;
use vaer_stats::metrics::PrF1;

/// Algorithm 1 configuration.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Top-K neighbours per left tuple (paper Table III: 10).
    pub neighbours_k: usize,
    /// Seed positives/negatives taken from the distance extremes
    /// (the paper reports ~15 of each on average).
    pub seeds_per_class: usize,
    /// LSH seed.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            neighbours_k: 10,
            seeds_per_class: 15,
            seed: 0xA1B0,
        }
    }
}

/// Algorithm 1 output: automatically labelled seeds plus the unlabeled
/// candidate pool `U`.
#[derive(Debug, Clone)]
pub struct Bootstrap {
    /// W₂-closest candidate pairs (assumed duplicates). May contain false
    /// positives — the paper notes some domains needed manual cleanup.
    pub positives: Vec<(usize, usize)>,
    /// W₂-furthest candidate pairs (assumed non-duplicates).
    pub negatives: Vec<(usize, usize)>,
    /// Remaining unlabeled candidates, each with its W₂² distance.
    pub pool: Vec<(usize, usize)>,
}

/// Runs Algorithm 1 over the entity representations of the two tables.
pub fn bootstrap(
    reprs_a: &[EntityRepr],
    reprs_b: &[EntityRepr],
    config: &BootstrapConfig,
) -> Bootstrap {
    if reprs_a.is_empty() || reprs_b.is_empty() {
        return Bootstrap {
            positives: Vec::new(),
            negatives: Vec::new(),
            pool: Vec::new(),
        };
    }
    // LSH over table B's concatenated means (lines 3–4); W₂ ranking is
    // sound on Euclidean candidates because the two are positively
    // correlated (paper §V-A).
    let b_keys: Vec<Vec<f32>> = reprs_b.iter().map(EntityRepr::flat_mu).collect();
    let a_keys: Vec<Vec<f32>> = reprs_a.iter().map(EntityRepr::flat_mu).collect();
    let index = E2Lsh::build_calibrated(b_keys, config.seed);
    let candidates = knn_join(&a_keys, &index, config.neighbours_k);
    // Score every candidate with the full W₂² (lines 11–12).
    let mut scored: Vec<((usize, usize), f32)> = candidates
        .iter()
        .map(|c| {
            (
                (c.left, c.right),
                reprs_a[c.left].w2_squared(&reprs_b[c.right]),
            )
        })
        .collect();
    scored.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.dedup_by(|a, b| a.0 == b.0);
    let n = scored.len();
    let k = config.seeds_per_class.min(n / 3);
    let positives: Vec<(usize, usize)> = scored[..k].iter().map(|&(p, _)| p).collect();
    let negatives: Vec<(usize, usize)> = scored[n - k..].iter().map(|&(p, _)| p).collect();
    let pool: Vec<(usize, usize)> = scored[k..n - k].iter().map(|&(p, _)| p).collect();
    Bootstrap {
        positives,
        negatives,
        pool,
    }
}

/// Algorithm 2 configuration.
#[derive(Debug, Clone)]
pub struct ActiveConfig {
    /// Bootstrap (Algorithm 1) settings.
    pub bootstrap: BootstrapConfig,
    /// Oracle labels requested per iteration (paper Table III: 10),
    /// split across the four sample kinds.
    pub samples_per_iteration: usize,
    /// Maximum AL iterations.
    pub iterations: usize,
    /// Latent samples drawn per labelled positive pair when estimating
    /// the duplicate-distance density (Eq. 6; the paper uses ~1000 total).
    pub kde_samples_per_pair: usize,
    /// Whether bootstrap seeds are oracle-verified (the paper's "false
    /// positives had to be manually removed"). Verification is *not*
    /// billed against the AL label budget — the paper reports it
    /// separately with a † marker — but the number of corrected seeds is
    /// recorded in [`ActiveLearner::bootstrap_corrections`].
    pub verify_bootstrap: bool,
    /// Matcher training settings for each iteration.
    pub matcher: MatcherConfig,
    /// RNG seed (sampling).
    pub seed: u64,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        Self {
            bootstrap: BootstrapConfig::default(),
            samples_per_iteration: 10,
            iterations: 25,
            kde_samples_per_pair: 64,
            verify_bootstrap: true,
            matcher: MatcherConfig::default(),
            seed: 0xAC71,
        }
    }
}

/// One point of the AL learning curve.
#[derive(Debug, Clone, Copy)]
pub struct AlCheckpoint {
    /// Oracle queries billed so far.
    pub labels_used: usize,
    /// Labelled-pool sizes `(positives, negatives)`.
    pub pool_sizes: (usize, usize),
    /// Test F1 at this point (if a test set was supplied).
    pub test_f1: Option<f32>,
    /// How many samples the round's batch drew from each Algorithm 2
    /// quadrant: `[certain⁺, certain⁻, uncertain⁺, uncertain⁻]`
    /// (all zero for the bootstrap checkpoint, which selects nothing).
    pub sample_mix: [usize; 4],
    /// Wall-clock seconds spent retraining the matcher for this round.
    pub retrain_secs: f64,
}

/// The Algorithm 2 driver.
///
/// The representation model is frozen for the duration of the loop, so
/// the learner encodes each table **once** into a [`LatentTable`] at
/// construction; every later matcher-training and pool-scoring step
/// indexes into the cache instead of re-running the encoder.
pub struct ActiveLearner<'a> {
    repr: &'a ReprModel,
    irs_a: &'a IrTable,
    irs_b: &'a IrTable,
    lat_a: LatentTable,
    lat_b: LatentTable,
    reprs_a: Vec<EntityRepr>,
    reprs_b: Vec<EntityRepr>,
    pool: Vec<(usize, usize)>,
    labeled_pos: Vec<(usize, usize)>,
    labeled_neg: Vec<(usize, usize)>,
    config: ActiveConfig,
    rng: rand::rngs::StdRng,
    history: Vec<AlCheckpoint>,
    bootstrap_corrections: usize,
    /// Position in the durable label journal: the next oracle query's
    /// sequence number when running under an [`AlSession`].
    journal_seq: u64,
}

impl<'a> ActiveLearner<'a> {
    /// Bootstraps the learner (Algorithm 1) from a representation model
    /// and the IR tables of the two input tables. Each table is encoded
    /// exactly once; the resulting latent caches serve the whole loop.
    pub fn new(
        repr: &'a ReprModel,
        irs_a: &'a IrTable,
        irs_b: &'a IrTable,
        config: ActiveConfig,
    ) -> Self {
        let lat_a = LatentTable::encode(repr, irs_a);
        let lat_b = LatentTable::encode(repr, irs_b);
        Self::with_latents(repr, irs_a, irs_b, lat_a, lat_b, config)
    }

    /// Like [`new`](Self::new) but reuses latent caches built elsewhere
    /// (e.g. by the pipeline), avoiding even the initial encoder pass.
    ///
    /// # Panics
    /// If either cache was built from different weights than `repr`.
    pub fn with_latents(
        repr: &'a ReprModel,
        irs_a: &'a IrTable,
        irs_b: &'a IrTable,
        lat_a: LatentTable,
        lat_b: LatentTable,
        config: ActiveConfig,
    ) -> Self {
        assert!(
            !lat_a.is_stale(repr) && !lat_b.is_stale(repr),
            "latent caches must match the representation model"
        );
        let reprs_a = lat_a.entities();
        let reprs_b = lat_b.entities();
        let boot = bootstrap(&reprs_a, &reprs_b, &config.bootstrap);
        let rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        Self {
            repr,
            irs_a,
            irs_b,
            lat_a,
            lat_b,
            reprs_a,
            reprs_b,
            pool: boot.pool,
            labeled_pos: boot.positives,
            labeled_neg: boot.negatives,
            config,
            rng,
            history: Vec::new(),
            bootstrap_corrections: 0,
            journal_seq: 0,
        }
    }

    /// Rebuilds a learner from a snapshot produced by
    /// [`state_bytes`](Self::state_bytes), encoding fresh latent caches.
    ///
    /// # Errors
    /// [`CoreError::Checkpoint`] when `state` is corrupt, refers to
    /// out-of-range tuples, or was taken under different representation
    /// weights.
    pub fn resume(
        repr: &'a ReprModel,
        irs_a: &'a IrTable,
        irs_b: &'a IrTable,
        config: ActiveConfig,
        state: &[u8],
    ) -> Result<Self, CoreError> {
        let lat_a = LatentTable::encode(repr, irs_a);
        let lat_b = LatentTable::encode(repr, irs_b);
        Self::resume_with_latents(repr, irs_a, irs_b, lat_a, lat_b, config, state)
    }

    /// Like [`resume`](Self::resume) but reuses latent caches built
    /// elsewhere. Unlike [`with_latents`](Self::with_latents) a stale
    /// cache is not an error here: resuming is exactly the situation where
    /// caches from a previous process may no longer match the weights, so
    /// stale ones are auto-invalidated and re-encoded.
    ///
    /// # Errors
    /// [`CoreError::Checkpoint`] when `state` is corrupt, refers to
    /// out-of-range tuples, or was taken under different representation
    /// weights (a snapshot is only resumable onto the weights that
    /// produced it).
    pub fn resume_with_latents(
        repr: &'a ReprModel,
        irs_a: &'a IrTable,
        irs_b: &'a IrTable,
        lat_a: LatentTable,
        lat_b: LatentTable,
        config: ActiveConfig,
        state: &[u8],
    ) -> Result<Self, CoreError> {
        let lat_a = lat_a.refresh(repr, irs_a);
        let lat_b = lat_b.refresh(repr, irs_b);
        let st = AlState::from_bytes(state)?;
        if st.fingerprint != repr.fingerprint() {
            return Err(CoreError::Checkpoint(
                "snapshot was taken under different representation weights".into(),
            ));
        }
        let reprs_a = lat_a.entities();
        let reprs_b = lat_b.entities();
        for &(l, r) in st.pool.iter().chain(&st.labeled_pos).chain(&st.labeled_neg) {
            if l >= reprs_a.len() || r >= reprs_b.len() {
                return Err(CoreError::Checkpoint(format!(
                    "snapshot pair ({l}, {r}) is out of range for tables of {} x {} entities",
                    reprs_a.len(),
                    reprs_b.len()
                )));
            }
        }
        let rng = rand::rngs::StdRng::from_state(st.rng_state);
        Ok(Self {
            repr,
            irs_a,
            irs_b,
            lat_a,
            lat_b,
            reprs_a,
            reprs_b,
            pool: st.pool,
            labeled_pos: st.labeled_pos,
            labeled_neg: st.labeled_neg,
            config,
            rng,
            history: st.history,
            bootstrap_corrections: st.bootstrap_corrections,
            journal_seq: st.journal_seq,
        })
    }

    /// Serialises the learner's full mutable state — labelled sets, pool,
    /// RNG stream, learning-curve history, journal position, and the
    /// representation fingerprint it is valid for — as a snapshot payload
    /// for [`resume`](Self::resume).
    pub fn state_bytes(&self) -> Vec<u8> {
        AlState::to_bytes(self)
    }

    /// The latent caches backing this learner (left, right).
    pub fn latents(&self) -> (&LatentTable, &LatentTable) {
        (&self.lat_a, &self.lat_b)
    }

    /// Number of bootstrap seeds whose automatic label was wrong and had
    /// to be corrected during verification (the paper's † cases).
    pub fn bootstrap_corrections(&self) -> usize {
        self.bootstrap_corrections
    }

    /// The current labelled set as a [`PairSet`].
    pub fn labeled(&self) -> PairSet {
        self.labeled_pos
            .iter()
            .map(|&(l, r)| LabeledPair {
                left: l,
                right: r,
                is_match: true,
            })
            .chain(self.labeled_neg.iter().map(|&(l, r)| LabeledPair {
                left: l,
                right: r,
                is_match: false,
            }))
            .collect()
    }

    /// Remaining unlabeled pool size.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Learning-curve checkpoints recorded by [`run`](Self::run).
    pub fn history(&self) -> &[AlCheckpoint] {
        &self.history
    }

    /// Trains a matcher on the current labelled set.
    ///
    /// While the encoder stays frozen the Distance-layer features come
    /// straight from the latent caches (no encoder pass); once the
    /// labelled set is large enough to fine-tune, training falls back to
    /// the full Siamese path over the IR tables.
    ///
    /// # Errors
    /// Propagates [`CoreError::InsufficientData`] when a class is empty.
    pub fn train_matcher(&self) -> Result<SiameseMatcher, CoreError> {
        let n_labeled = self.labeled_pos.len() + self.labeled_neg.len();
        if SiameseMatcher::frozen_for(&self.config.matcher, n_labeled) {
            let pairs: Vec<(usize, usize)> = self
                .labeled_pos
                .iter()
                .chain(self.labeled_neg.iter())
                .copied()
                .collect();
            let labels: Vec<f32> = std::iter::repeat_n(1.0, self.labeled_pos.len())
                .chain(std::iter::repeat_n(0.0, self.labeled_neg.len()))
                .collect();
            let features = latent::distance_features(
                self.config.matcher.distance,
                &self.lat_a,
                &self.lat_b,
                &pairs,
            );
            SiameseMatcher::train_cached(self.repr, &features, &labels, &self.config.matcher)
        } else {
            let examples = PairExamples::build(self.irs_a, self.irs_b, &self.labeled());
            SiameseMatcher::train(self.repr, &examples, &self.config.matcher)
        }
    }

    /// Scores the unlabeled pool with `matcher`, reading cached latents
    /// when the matcher's encoder is frozen (the common case) and only
    /// re-encoding through the Siamese tape after fine-tuning.
    fn score_pool(&self, matcher: &SiameseMatcher) -> Vec<f32> {
        if matcher.encoder_frozen() {
            let features = latent::distance_features(
                self.config.matcher.distance,
                &self.lat_a,
                &self.lat_b,
                &self.pool,
            );
            matcher.predict_features(&features)
        } else {
            let examples = PairExamples::build_unlabeled(self.irs_a, self.irs_b, &self.pool);
            matcher.predict(&examples)
        }
    }

    /// Verifies bootstrap seeds against the oracle and moves misfiled
    /// seeds to the correct side. Not billed (see
    /// [`ActiveConfig::verify_bootstrap`]); corrections are counted.
    fn verify_bootstrap(&mut self, oracle: &Oracle) {
        let pos = std::mem::take(&mut self.labeled_pos);
        let neg = std::mem::take(&mut self.labeled_neg);
        // vaer-lint: allow(cancel-probe-coverage) -- one-shot audit over already-labeled pairs at setup; bounded by label count
        for (l, r) in pos {
            if oracle.peek(l, r) {
                self.labeled_pos.push((l, r));
            } else {
                self.bootstrap_corrections += 1;
                self.labeled_neg.push((l, r));
            }
        }
        // vaer-lint: allow(cancel-probe-coverage) -- same bounded audit as the positive half above
        for (l, r) in neg {
            if oracle.peek(l, r) {
                self.bootstrap_corrections += 1;
                self.labeled_pos.push((l, r));
            } else {
                self.labeled_neg.push((l, r));
            }
        }
    }

    /// Estimates `f̂⁺(d)`: the KDE of Euclidean distances between sampled
    /// latent encodings of labelled duplicates (Eq. 6).
    fn positive_distance_kde(&mut self) -> Option<Kde> {
        if self.labeled_pos.is_empty() {
            return None;
        }
        let mut distances =
            Vec::with_capacity(self.labeled_pos.len() * self.config.kde_samples_per_pair);
        for &(l, r) in &self.labeled_pos {
            for _ in 0..self.config.kde_samples_per_pair {
                let zs = self.reprs_a[l].sample_flat(&mut self.rng);
                let zt = self.reprs_b[r].sample_flat(&mut self.rng);
                distances.push(vaer_linalg::vector::euclidean(&zs, &zt));
            }
        }
        Kde::fit(&distances)
    }

    /// Runs up to `iterations` AL rounds against `oracle`, stopping early
    /// when `max_labels` is reached or the pool empties. When `test` is
    /// supplied, the matcher is evaluated after every round and recorded
    /// in [`history`](Self::history).
    ///
    /// # Errors
    /// Propagates matcher-training failures.
    pub fn run(
        &mut self,
        oracle: &Oracle,
        max_labels: usize,
        test: Option<&PairExamples>,
    ) -> Result<SiameseMatcher, CoreError> {
        self.run_inner(oracle, max_labels, test, None)
    }

    /// Like [`run`](Self::run), but durable: every oracle answer is
    /// journaled before use and the learner state is snapshotted after
    /// each round. A run killed at any point and resumed (via
    /// [`resume`](Self::resume) from `session`'s newest snapshot, then
    /// `run_checkpointed` again) completes with bit-identical labelled
    /// sets, history, and matcher — journaled labels from a crashed round
    /// are replayed instead of re-queried.
    ///
    /// # Errors
    /// Everything [`run`](Self::run) raises, plus [`CoreError::Io`] /
    /// [`CoreError::Checkpoint`] on journal/snapshot problems or when the
    /// session's journal disagrees with `oracle`.
    pub fn run_checkpointed(
        &mut self,
        oracle: &Oracle,
        max_labels: usize,
        test: Option<&PairExamples>,
        session: &mut AlSession,
    ) -> Result<SiameseMatcher, CoreError> {
        self.run_inner(oracle, max_labels, test, Some(session))
    }

    fn run_inner(
        &mut self,
        oracle: &Oracle,
        max_labels: usize,
        test: Option<&PairExamples>,
        mut session: Option<&mut AlSession>,
    ) -> Result<SiameseMatcher, CoreError> {
        let _span = vaer_obs::span("al.run");
        if let Some(s) = session.as_deref_mut() {
            // Warm the oracle with every journaled query so a resumed run
            // bills exactly the pairs the original asked (the oracle
            // charges once per unique pair) — and catch a journal that
            // belongs to different ground truth before it corrupts the
            // labelled sets.
            for e in s.labels() {
                if oracle.label(e.left, e.right) != e.is_match {
                    return Err(CoreError::Checkpoint(format!(
                        "journaled label for ({}, {}) disagrees with the oracle",
                        e.left, e.right
                    )));
                }
            }
        }
        let mut matcher = if self.history.is_empty() {
            if self.config.verify_bootstrap {
                self.verify_bootstrap(oracle);
            }
            // Guard: bootstrap can theoretically produce a single class
            // (e.g. all seeds verified negative); backfill from the pool
            // if so.
            self.ensure_both_classes(oracle, session.as_deref_mut())?;
            vaer_obs::event(
                "al.bootstrap",
                &[
                    ("positives", self.labeled_pos.len().into()),
                    ("negatives", self.labeled_neg.len().into()),
                    ("pool", self.pool.len().into()),
                    ("corrections", self.bootstrap_corrections.into()),
                ],
            );
            // vaer-lint: allow(det-wallclock) -- retrain_secs is a reported checkpoint field, not a model input
            let t0 = std::time::Instant::now();
            let matcher = self.train_matcher()?;
            self.checkpoint(oracle, &matcher, test, [0; 4], t0.elapsed().as_secs_f64());
            self.snapshot(session.as_deref_mut())?;
            matcher
        } else {
            // Resumed mid-run: the labelled sets are restored, so
            // retraining reproduces the matcher the crashed process held
            // (matcher training is deterministic given the labelled sets).
            self.train_matcher()?
        };
        while self.history.len().saturating_sub(1) < self.config.iterations {
            // Crash-test kill switch: `al.round=panic@N` aborts at the top
            // of the Nth executed round.
            vaer_fault::trigger("al.round");
            // The budget at the top of a round equals the last
            // checkpoint's `labels_used` (no queries happen in between);
            // reading it from history keeps resumed runs — whose oracle
            // was warmed with the crashed round's journaled queries —
            // deciding identically to uninterrupted ones.
            let labels_used = self.history.last().map_or(0, |c| c.labels_used);
            if self.pool.is_empty() || labels_used >= max_labels {
                break;
            }
            let (batch, sample_mix) = self.select_batch(&matcher);
            if batch.is_empty() {
                break;
            }
            for &(l, r) in &batch {
                if self.ask(oracle, session.as_deref_mut(), l, r)? {
                    self.labeled_pos.push((l, r));
                } else {
                    self.labeled_neg.push((l, r));
                }
            }
            // Crash-test kill switch between the durable journal append
            // and the snapshot: labels must survive via replay.
            vaer_fault::trigger("al.labels");
            self.pool.retain(|p| !batch.contains(p));
            // vaer-lint: allow(det-wallclock) -- retrain_secs is a reported checkpoint field, not a model input
            let t0 = std::time::Instant::now();
            matcher = self.train_matcher()?;
            self.checkpoint(
                oracle,
                &matcher,
                test,
                sample_mix,
                t0.elapsed().as_secs_f64(),
            );
            self.snapshot(session.as_deref_mut())?;
        }
        Ok(matcher)
    }

    /// One oracle query, journaled when running under a session (replayed
    /// for free on resume).
    fn ask(
        &mut self,
        oracle: &Oracle,
        session: Option<&mut AlSession>,
        l: usize,
        r: usize,
    ) -> Result<bool, CoreError> {
        match session {
            Some(s) => {
                let ans = s.label(oracle, self.journal_seq, l, r)?;
                self.journal_seq += 1;
                Ok(ans)
            }
            None => Ok(oracle.label(l, r)),
        }
    }

    /// Writes a durable snapshot of the learner state (sequence = number
    /// of completed checkpoints).
    fn snapshot(&self, session: Option<&mut AlSession>) -> Result<(), CoreError> {
        if let Some(s) = session {
            s.snapshot(self.history.len() as u64, &self.state_bytes())?;
        }
        Ok(())
    }

    fn checkpoint(
        &mut self,
        oracle: &Oracle,
        matcher: &SiameseMatcher,
        test: Option<&PairExamples>,
        sample_mix: [usize; 4],
        retrain_secs: f64,
    ) {
        let test_f1 = test.map(|t| matcher.evaluate(t).f1);
        let cp = AlCheckpoint {
            labels_used: oracle.queries_used(),
            pool_sizes: (self.labeled_pos.len(), self.labeled_neg.len()),
            test_f1,
            sample_mix,
            retrain_secs,
        };
        vaer_obs::event(
            "al.round",
            &[
                ("round", self.history.len().into()),
                ("labels_used", cp.labels_used.into()),
                ("labeled_pos", cp.pool_sizes.0.into()),
                ("labeled_neg", cp.pool_sizes.1.into()),
                ("pool_remaining", self.pool.len().into()),
                ("certain_pos", sample_mix[0].into()),
                ("certain_neg", sample_mix[1].into()),
                ("uncertain_pos", sample_mix[2].into()),
                ("uncertain_neg", sample_mix[3].into()),
                ("retrain_secs", retrain_secs.into()),
                // Serialised as JSON null when no test set was supplied.
                ("test_f1", f64::from(test_f1.unwrap_or(f32::NAN)).into()),
            ],
        );
        self.history.push(cp);
    }

    fn ensure_both_classes(
        &mut self,
        oracle: &Oracle,
        mut session: Option<&mut AlSession>,
    ) -> Result<(), CoreError> {
        // Pool is sorted by W₂ (bootstrap kept the middle); take from the
        // near end for positives, far end for negatives.
        while self.labeled_pos.is_empty() && !self.pool.is_empty() {
            let (l, r) = self.pool.remove(0);
            if self.ask(oracle, session.as_deref_mut(), l, r)? {
                self.labeled_pos.push((l, r));
            } else {
                self.labeled_neg.push((l, r));
            }
        }
        while self.labeled_neg.is_empty() {
            let Some((l, r)) = self.pool.pop() else { break };
            if self.ask(oracle, session.as_deref_mut(), l, r)? {
                self.labeled_pos.push((l, r));
            } else {
                self.labeled_neg.push((l, r));
            }
        }
        Ok(())
    }

    /// Selects one balanced, informative, diverse batch (Algorithm 2,
    /// lines 6–9): per quadrant, the best `samples_per_iteration / 4`
    /// pool pairs. Also returns how many pairs each quadrant contributed
    /// (`[certain⁺, certain⁻, uncertain⁺, uncertain⁻]`) — the round's
    /// sample mix reported in [`AlCheckpoint`].
    fn select_batch(&mut self, matcher: &SiameseMatcher) -> (Vec<(usize, usize)>, [usize; 4]) {
        let probs = self.score_pool(matcher);
        let kde = self.positive_distance_kde();
        const EPS: f32 = 1e-4;
        // Pre-compute per-candidate entropy and KDE likelihood.
        let feats: Vec<(usize, f32, f32, bool)> = self
            .pool
            .iter()
            .enumerate()
            .map(|(i, &(l, r))| {
                let p = probs[i];
                let h = binary_entropy(p);
                let d = self.reprs_a[l].mu_distance(&self.reprs_b[r]);
                let f = kde.as_ref().map_or(0.5, |k| k.relative_density(d));
                (i, h, f, p > 0.5)
            })
            .collect();
        let per_kind = (self.config.samples_per_iteration / 4).max(1);
        let mut chosen: Vec<usize> = Vec::with_capacity(per_kind * 4);
        let take =
            |score: Box<dyn Fn(f32, f32) -> f32>, positive: bool, chosen: &mut Vec<usize>| {
                let mut ranked: Vec<(usize, f32)> = feats
                    .iter()
                    .filter(|&&(i, _, _, pos)| pos == positive && !chosen.contains(&i))
                    .map(|&(i, h, f, _)| (i, score(h, f)))
                    .collect();
                ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                for &(i, _) in ranked.iter().take(per_kind) {
                    chosen.push(i);
                }
            };
        let mut mix = [0usize; 4];
        // Certain positives: min H · 1/f̂⁺ (low entropy, high likelihood).
        take(Box::new(|h, f| h * (1.0 / (f + EPS))), true, &mut chosen);
        mix[0] = chosen.len();
        // Certain negatives: min H · f̂⁺ (low entropy, low likelihood).
        take(Box::new(|h, f| h * f), false, &mut chosen);
        mix[1] = chosen.len() - mix[0];
        // Uncertain positives: min (1/H) · f̂⁺ (high entropy, low likelihood).
        take(Box::new(|h, f| (1.0 / (h + EPS)) * f), true, &mut chosen);
        mix[2] = chosen.len() - mix[0] - mix[1];
        // Uncertain negatives: min (1/H) · 1/f̂⁺ (high entropy, high likelihood).
        take(
            Box::new(|h, f| (1.0 / (h + EPS)) * (1.0 / (f + EPS))),
            false,
            &mut chosen,
        );
        mix[3] = chosen.len() - mix[0] - mix[1] - mix[2];
        chosen.sort_unstable();
        chosen.dedup();
        (chosen.into_iter().map(|i| self.pool[i]).collect(), mix)
    }

    /// Baseline sampler for the ablation study: the `n` highest-entropy
    /// pool pairs (classic uncertainty sampling, no balance/diversity).
    pub fn select_entropy_only(
        &mut self,
        matcher: &SiameseMatcher,
        n: usize,
    ) -> Vec<(usize, usize)> {
        let probs = self.score_pool(matcher);
        let mut ranked: Vec<(usize, f32)> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, binary_entropy(p)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let idx: Vec<usize> = ranked.into_iter().take(n).map(|(i, _)| i).collect();
        let batch: Vec<(usize, usize)> = idx.iter().map(|&i| self.pool[i]).collect();
        self.pool.retain(|p| !batch.contains(p));
        batch
    }

    /// Baseline sampler for the ablation study: `n` uniformly random pool
    /// pairs instead of the balanced/informative/diverse batch.
    pub fn select_random(&mut self, n: usize) -> Vec<(usize, usize)> {
        use rand::RngExt;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n.min(self.pool.len()) {
            let i = self.rng.random_range(0..self.pool.len());
            out.push(self.pool.swap_remove(i));
        }
        out
    }

    /// Applies externally selected labels (used by ablation baselines).
    pub fn absorb_labels(&mut self, oracle: &Oracle, batch: &[(usize, usize)]) {
        for &(l, r) in batch {
            if oracle.label(l, r) {
                self.labeled_pos.push((l, r));
            } else {
                self.labeled_neg.push((l, r));
            }
        }
        self.pool.retain(|p| !batch.contains(p));
    }
}

/// Snapshot form of an [`ActiveLearner`]'s mutable state (payload magic
/// `VAERALS1`; wrapped in a `VAERCKP1` envelope on disk by [`AlSession`]).
struct AlState {
    fingerprint: u64,
    journal_seq: u64,
    bootstrap_corrections: usize,
    rng_state: [u64; 4],
    pool: Vec<(usize, usize)>,
    labeled_pos: Vec<(usize, usize)>,
    labeled_neg: Vec<(usize, usize)>,
    history: Vec<AlCheckpoint>,
}

const AL_STATE_MAGIC: &[u8; 8] = b"VAERALS1";

impl AlState {
    fn to_bytes(learner: &ActiveLearner<'_>) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(AL_STATE_MAGIC);
        out.extend_from_slice(&learner.repr.fingerprint().to_le_bytes());
        out.extend_from_slice(&learner.journal_seq.to_le_bytes());
        out.extend_from_slice(&(learner.bootstrap_corrections as u64).to_le_bytes());
        put_rng_state(&mut out, learner.rng.state());
        for pairs in [&learner.pool, &learner.labeled_pos, &learner.labeled_neg] {
            out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
            for &(l, r) in pairs.iter() {
                out.extend_from_slice(&(l as u64).to_le_bytes());
                out.extend_from_slice(&(r as u64).to_le_bytes());
            }
        }
        out.extend_from_slice(&(learner.history.len() as u64).to_le_bytes());
        // vaer-lint: allow(cancel-probe-coverage) -- checkpoint codec: bounded by history length, no budget handle in the wire format
        for cp in &learner.history {
            out.extend_from_slice(&(cp.labels_used as u64).to_le_bytes());
            out.extend_from_slice(&(cp.pool_sizes.0 as u64).to_le_bytes());
            out.extend_from_slice(&(cp.pool_sizes.1 as u64).to_le_bytes());
            match cp.test_f1 {
                Some(f1) => {
                    out.push(1);
                    out.extend_from_slice(&f1.to_le_bytes());
                }
                None => out.push(0),
            }
            for n in cp.sample_mix {
                out.extend_from_slice(&(n as u64).to_le_bytes());
            }
            out.extend_from_slice(&cp.retrain_secs.to_bits().to_le_bytes());
        }
        out
    }

    /// Never panics, whatever the bytes are.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut cur = Cur::new(bytes);
        if cur.take(8)? != AL_STATE_MAGIC {
            return Err(CoreError::Checkpoint("missing VAERALS1 magic".into()));
        }
        let fingerprint = cur.u64()?;
        let journal_seq = cur.u64()?;
        let bootstrap_corrections = cur.u64()? as usize;
        let rng_state = cur.rng_state()?;
        let read_pairs = |cur: &mut Cur| -> Result<Vec<(usize, usize)>, CoreError> {
            let n = cur.u64()? as usize;
            // Bounds-check before allocating: 16 bytes per pair remaining.
            if n.checked_mul(16)
                .filter(|&b| b <= cur.bytes.len())
                .is_none()
            {
                return Err(CoreError::Checkpoint("pair list length overflow".into()));
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((cur.u64()? as usize, cur.u64()? as usize));
            }
            Ok(pairs)
        };
        let pool = read_pairs(&mut cur)?;
        let labeled_pos = read_pairs(&mut cur)?;
        let labeled_neg = read_pairs(&mut cur)?;
        let n_history = cur.u64()? as usize;
        if n_history
            .checked_mul(65)
            .filter(|&b| b <= cur.bytes.len())
            .is_none()
        {
            return Err(CoreError::Checkpoint("history length overflow".into()));
        }
        let mut history = Vec::with_capacity(n_history);
        // vaer-lint: allow(cancel-probe-coverage) -- checkpoint codec: bounded by the length-checked stored count
        for _ in 0..n_history {
            let labels_used = cur.u64()? as usize;
            let pool_sizes = (cur.u64()? as usize, cur.u64()? as usize);
            let test_f1 = match cur.take(1)?[0] {
                0 => None,
                1 => Some(f32::from_le_bytes(cur.take(4)?.try_into().unwrap())), // vaer-lint: allow(panic) -- take(4) yields exactly 4 bytes; infallible
                other => {
                    return Err(CoreError::Checkpoint(format!(
                        "bad test-F1 presence flag {other}"
                    )))
                }
            };
            let mut sample_mix = [0usize; 4];
            for slot in &mut sample_mix {
                *slot = cur.u64()? as usize;
            }
            let retrain_secs = f64::from_bits(cur.u64()?);
            history.push(AlCheckpoint {
                labels_used,
                pool_sizes,
                test_f1,
                sample_mix,
                retrain_secs,
            });
        }
        if cur.pos != cur.bytes.len() {
            return Err(CoreError::Checkpoint(
                "trailing bytes after AL state".into(),
            ));
        }
        Ok(Self {
            fingerprint,
            journal_seq,
            bootstrap_corrections,
            rng_state,
            pool,
            labeled_pos,
            labeled_neg,
            history,
        })
    }
}

/// Evaluates a matcher trained by the AL loop on a labelled test set,
/// returning standard P/R/F1.
pub fn evaluate_matcher(
    matcher: &SiameseMatcher,
    irs_a: &IrTable,
    irs_b: &IrTable,
    test: &PairSet,
) -> PrF1 {
    matcher.evaluate(&PairExamples::build(irs_a, irs_b, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repr::{ReprConfig, ReprModel};
    use vaer_linalg::{Matrix, XorShiftRng};

    /// A toy two-table world with `n` entities; B's rows 0..n are noisy
    /// duplicates of A's rows 0..n (identity alignment).
    struct World {
        repr: ReprModel,
        a: IrTable,
        b: IrTable,
        duplicates: Vec<(usize, usize)>,
    }

    fn world(n: usize, seed: u64) -> World {
        let ir_dim = 8;
        let mut rng = XorShiftRng::new(seed);
        let mut a_rows = Vec::new();
        let mut b_rows = Vec::new();
        for _ in 0..n {
            let center: Vec<f32> = (0..ir_dim).map(|_| rng.gaussian()).collect();
            let attr2: Vec<f32> = center.iter().map(|&x| x * -0.5 + 1.0).collect();
            let jitter = |c: &[f32], rng: &mut XorShiftRng| -> Vec<f32> {
                c.iter().map(|&x| x + 0.08 * rng.gaussian()).collect()
            };
            a_rows.push(jitter(&center, &mut rng));
            a_rows.push(jitter(&attr2, &mut rng));
            b_rows.push(jitter(&center, &mut rng));
            b_rows.push(jitter(&attr2, &mut rng));
        }
        let flat = |rows: &Vec<Vec<f32>>| {
            Matrix::from_vec(rows.len(), ir_dim, rows.iter().flatten().copied().collect())
        };
        let a = IrTable::new(2, flat(&a_rows));
        let b = IrTable::new(2, flat(&b_rows));
        let all = a.irs.vconcat(&b.irs);
        let (repr, _) = ReprModel::train(&all, &ReprConfig::fast(ir_dim)).unwrap();
        let duplicates = (0..n).map(|i| (i, i)).collect();
        World {
            repr,
            a,
            b,
            duplicates,
        }
    }

    #[test]
    fn bootstrap_seeds_are_mostly_correct() {
        let w = world(40, 1);
        let reprs_a = crate::entity::group_entities(w.repr.encode(&w.a.irs), 2);
        let reprs_b = crate::entity::group_entities(w.repr.encode(&w.b.irs), 2);
        let boot = bootstrap(&reprs_a, &reprs_b, &BootstrapConfig::default());
        assert!(!boot.positives.is_empty());
        assert!(!boot.negatives.is_empty());
        let dup: std::collections::HashSet<_> = w.duplicates.iter().copied().collect();
        let pos_correct = boot.positives.iter().filter(|p| dup.contains(p)).count() as f32
            / boot.positives.len() as f32;
        let neg_correct = boot.negatives.iter().filter(|p| !dup.contains(p)).count() as f32
            / boot.negatives.len() as f32;
        assert!(pos_correct > 0.6, "bootstrap positive purity {pos_correct}");
        assert!(neg_correct > 0.9, "bootstrap negative purity {neg_correct}");
    }

    #[test]
    fn bootstrap_empty_inputs() {
        let boot = bootstrap(&[], &[], &BootstrapConfig::default());
        assert!(boot.positives.is_empty() && boot.pool.is_empty());
    }

    #[test]
    fn al_improves_with_labels() {
        let w = world(40, 2);
        let oracle = Oracle::new(w.duplicates.iter().copied());
        let config = ActiveConfig {
            iterations: 4,
            matcher: MatcherConfig {
                epochs: 10,
                ..MatcherConfig::fast()
            },
            ..ActiveConfig::default()
        };
        let mut learner = ActiveLearner::new(&w.repr, &w.a, &w.b, config);
        // Build a small test set: duplicates + shifted negatives.
        let test: PairSet = (0..40)
            .map(|i| LabeledPair {
                left: i,
                right: i,
                is_match: true,
            })
            .chain((0..40).map(|i| LabeledPair {
                left: i,
                right: (i + 7) % 40,
                is_match: false,
            }))
            .collect();
        let test_examples = PairExamples::build(&w.a, &w.b, &test);
        let matcher = learner.run(&oracle, 80, Some(&test_examples)).unwrap();
        let history = learner.history();
        assert!(history.len() >= 2, "expected multiple checkpoints");
        let first = history.first().unwrap().test_f1.unwrap();
        let last = history.last().unwrap().test_f1.unwrap();
        assert!(last >= first - 0.05, "AL degraded: {first} -> {last}");
        let final_f1 = matcher.evaluate(&test_examples).f1;
        assert!(final_f1 > 0.7, "final F1 {final_f1}");
        // Label budget respected (bootstrap verification + iterations).
        assert!(oracle.queries_used() <= 90);
    }

    #[test]
    fn labeled_set_grows_each_iteration() {
        let w = world(30, 3);
        let oracle = Oracle::new(w.duplicates.iter().copied());
        let config = ActiveConfig {
            iterations: 2,
            matcher: MatcherConfig {
                epochs: 5,
                ..MatcherConfig::fast()
            },
            ..ActiveConfig::default()
        };
        let mut learner = ActiveLearner::new(&w.repr, &w.a, &w.b, config);
        let before = learner.labeled().len();
        learner.run(&oracle, 60, None).unwrap();
        let after = learner.labeled().len();
        assert!(
            after > before,
            "labelled pool did not grow: {before} -> {after}"
        );
        assert!(learner.pool_size() > 0);
    }

    #[test]
    fn cached_pool_scoring_matches_direct_prediction() {
        let w = world(25, 5);
        let learner = ActiveLearner::new(&w.repr, &w.a, &w.b, ActiveConfig::default());
        let matcher = learner.train_matcher().unwrap();
        assert!(matcher.encoder_frozen(), "small pool must stay frozen");
        let cached = learner.score_pool(&matcher);
        let direct = matcher.predict(&PairExamples::build_unlabeled(&w.a, &w.b, &learner.pool));
        assert_eq!(cached, direct, "cached probabilities diverged");

        // The cached trainer must be indistinguishable from the full one.
        let full = SiameseMatcher::train(
            &w.repr,
            &PairExamples::build(&w.a, &w.b, &learner.labeled()),
            &learner.config.matcher,
        )
        .unwrap();
        let via_full = full.predict(&PairExamples::build_unlabeled(&w.a, &w.b, &learner.pool));
        assert_eq!(cached, via_full, "cached training diverged");
    }

    #[test]
    fn with_latents_matches_new_and_rejects_stale_caches() {
        let w = world(20, 6);
        let lat_a = LatentTable::encode(&w.repr, &w.a);
        let lat_b = LatentTable::encode(&w.repr, &w.b);
        let from_caches = ActiveLearner::with_latents(
            &w.repr,
            &w.a,
            &w.b,
            lat_a.clone(),
            lat_b.clone(),
            ActiveConfig::default(),
        );
        let fresh = ActiveLearner::new(&w.repr, &w.a, &w.b, ActiveConfig::default());
        assert_eq!(from_caches.pool, fresh.pool);
        assert_eq!(from_caches.labeled_pos, fresh.labeled_pos);
        assert_eq!(from_caches.labeled_neg, fresh.labeled_neg);

        let other = world(20, 7);
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ActiveLearner::with_latents(
                &other.repr,
                &w.a,
                &w.b,
                lat_a,
                lat_b,
                ActiveConfig::default(),
            )
        }));
        assert!(stale.is_err(), "stale caches must be rejected");
    }

    #[test]
    fn state_round_trips_and_resume_rejects_bad_snapshots() {
        let w = world(25, 8);
        let oracle = Oracle::new(w.duplicates.iter().copied());
        let config = ActiveConfig {
            iterations: 1,
            matcher: MatcherConfig {
                epochs: 5,
                ..MatcherConfig::fast()
            },
            ..ActiveConfig::default()
        };
        let mut learner = ActiveLearner::new(&w.repr, &w.a, &w.b, config.clone());
        learner.run(&oracle, 30, None).unwrap();
        let state = learner.state_bytes();

        let resumed = ActiveLearner::resume(&w.repr, &w.a, &w.b, config.clone(), &state).unwrap();
        assert_eq!(resumed.pool, learner.pool);
        assert_eq!(resumed.labeled_pos, learner.labeled_pos);
        assert_eq!(resumed.labeled_neg, learner.labeled_neg);
        assert_eq!(resumed.journal_seq, learner.journal_seq);
        assert_eq!(resumed.history.len(), learner.history.len());
        assert_eq!(resumed.rng.state(), learner.rng.state());

        // A different representation model must be refused (fingerprint).
        let other = world(25, 9);
        assert!(matches!(
            ActiveLearner::resume(&other.repr, &w.a, &w.b, config.clone(), &state),
            Err(CoreError::Checkpoint(_))
        ));
        // Truncations and garbage never panic.
        for cut in [0, 7, 20, state.len() / 2, state.len() - 1] {
            assert!(
                ActiveLearner::resume(&w.repr, &w.a, &w.b, config.clone(), &state[..cut]).is_err()
            );
        }
    }

    #[test]
    fn resume_refreshes_stale_latent_caches() {
        let w = world(20, 10);
        let config = ActiveConfig {
            iterations: 1,
            matcher: MatcherConfig {
                epochs: 5,
                ..MatcherConfig::fast()
            },
            ..ActiveConfig::default()
        };
        let oracle = Oracle::new(w.duplicates.iter().copied());
        let mut learner = ActiveLearner::new(&w.repr, &w.a, &w.b, config.clone());
        learner.run(&oracle, 20, None).unwrap();
        let state = learner.state_bytes();

        // Caches built from *different* weights: resume must detect the
        // fingerprint mismatch and re-encode rather than panic (unlike
        // `with_latents`) or silently serve stale latents.
        let other = world(20, 11);
        let stale_a = LatentTable::encode(&other.repr, &w.a);
        let stale_b = LatentTable::encode(&other.repr, &w.b);
        assert!(stale_a.is_stale(&w.repr));
        let resumed = ActiveLearner::resume_with_latents(
            &w.repr, &w.a, &w.b, stale_a, stale_b, config, &state,
        )
        .unwrap();
        assert!(!resumed.lat_a.is_stale(&w.repr), "cache must be refreshed");
        assert!(!resumed.lat_b.is_stale(&w.repr), "cache must be refreshed");
        assert_eq!(resumed.labeled_pos, learner.labeled_pos);
    }

    #[test]
    fn random_sampler_consumes_pool() {
        let w = world(20, 4);
        let config = ActiveConfig::default();
        let mut learner = ActiveLearner::new(&w.repr, &w.a, &w.b, config);
        let pool_before = learner.pool_size();
        let batch = learner.select_random(5);
        assert_eq!(batch.len(), 5.min(pool_before));
        assert_eq!(learner.pool_size(), pool_before - batch.len());
        let oracle = Oracle::new(w.duplicates.iter().copied());
        learner.absorb_labels(&oracle, &batch);
        assert_eq!(oracle.queries_used(), batch.len());
    }
}
